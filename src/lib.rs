//! # HECATE — performance-aware scale optimization for an RNS-CKKS compiler
//!
//! This crate is the facade of a full reproduction of the CGO 2022 paper
//! *"HECATE: Performance-Aware Scale Optimization for Homomorphic Encryption
//! Compiler"* (Lee et al.). It re-exports the workspace crates:
//!
//! - [`math`] — number theory substrate (NTT, RNS, FFT, bigint, sampling);
//! - [`ckks`] — a from-scratch RNS-CKKS homomorphic encryption scheme;
//! - [`ir`] — the HECATE IR and its `(scale, level)` type system;
//! - [`compiler`] — EVA baseline, PARS, SMU analysis, SMSE, and the
//!   performance estimator;
//! - [`backend`] — plaintext, noise-simulating, and encrypted executors;
//! - [`apps`] — the paper's six evaluation benchmarks as IR builders;
//! - [`runtime`] — the multi-tenant serving layer: content-addressed plan
//!   cache, per-session key management, and a parallel encrypted
//!   executor;
//! - [`telemetry`] — zero-dependency tracing spans, metrics, and
//!   exporters (JSONL, Chrome trace, Prometheus text) wired through the
//!   compiler, backend, and runtime.
//!
//! # Quickstart
//!
//! Compile and run the paper's running example `(x² + y²)³` with the full
//! HECATE pipeline:
//!
//! ```
//! use hecate::compiler::{compile, CompileOptions, Scheme};
//! use hecate::ir::builder::FunctionBuilder;
//!
//! // Build (x² + y²)³ in the IR.
//! let mut b = FunctionBuilder::new("motivating", 4);
//! let x = b.input_cipher("x");
//! let y = b.input_cipher("y");
//! let x2 = b.square(x);
//! let y2 = b.square(y);
//! let z = b.add(x2, y2);
//! let z2 = b.mul(z, z);
//! let z3 = b.mul(z2, z);
//! b.output(z3);
//! let func = b.finish();
//!
//! // Compile with performance-aware scale management.
//! let opts = CompileOptions::with_waterline(20.0);
//! let compiled = compile(&func, Scheme::Hecate, &opts)?;
//! assert!(compiled.stats.estimated_latency_us > 0.0);
//! # Ok::<(), hecate::compiler::CompileError>(())
//! ```

pub use hecate_apps as apps;
pub use hecate_backend as backend;
pub use hecate_ckks as ckks;
pub use hecate_compiler as compiler;
pub use hecate_ir as ir;
pub use hecate_math as math;
pub use hecate_runtime as runtime;
pub use hecate_telemetry as telemetry;
