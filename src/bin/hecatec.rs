//! `hecatec` — the HECATE compiler driver.
//!
//! Compiles a textual IR file (see `hecate_ir::parse` for the syntax)
//! under a chosen scale-management scheme and prints the scale-managed
//! program, the selected RNS parameters, and the latency estimate.
//! Optionally executes the result under real encryption with seeded
//! random inputs.
//!
//! ```text
//! usage: hecatec <file.heir> [options]
//!   --scheme eva|pars|smse|hecate   (default hecate)
//!   --waterline BITS                (default 24)
//!   --sf BITS                       (default 60)
//!   --degree N                      fixed ring degree (default: security-selected)
//!   --run                           execute under encryption with random inputs
//!   --breakdown                     print the estimated latency per cost category
//!   --quiet                         suppress the compiled IR listing
//!   --strict                        fail on the first error; no fallback (default)
//!   --fallback                      degrade gracefully down the scheme ladder
//! ```
//!
//! Exit codes: 0 success; 2 usage error; 3 input unreadable/unparsable;
//! 4 compilation failed (in `--fallback` mode: every rung failed);
//! 5 encrypted execution failed.

use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::compiler::{compile, compile_with_fallback, CompileOptions, FallbackRung, Scheme};
use hecate::ir::parse::parse_function;
use hecate::ir::print::print_function;
use hecate::math::rng::Xoshiro256;
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    file: String,
    scheme: Scheme,
    waterline: f64,
    sf: f64,
    degree: Option<usize>,
    run: bool,
    breakdown: bool,
    quiet: bool,
    fallback: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        file: String::new(),
        scheme: Scheme::Hecate,
        waterline: 24.0,
        sf: 60.0,
        degree: None,
        run: false,
        breakdown: false,
        quiet: false,
        fallback: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scheme" => {
                out.scheme = match args.next().as_deref() {
                    Some("eva") => Scheme::Eva,
                    Some("pars") => Scheme::Pars,
                    Some("smse") => Scheme::Smse,
                    Some("hecate") => Scheme::Hecate,
                    other => return Err(format!("bad --scheme {other:?}")),
                }
            }
            "--waterline" => {
                out.waterline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --waterline")?
            }
            "--sf" => out.sf = args.next().and_then(|v| v.parse().ok()).ok_or("bad --sf")?,
            "--degree" => {
                out.degree = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --degree")?,
                )
            }
            "--run" => out.run = true,
            "--breakdown" => out.breakdown = true,
            "--quiet" => out.quiet = true,
            "--strict" => out.fallback = false,
            "--fallback" => out.fallback = true,
            f if !f.starts_with('-') && out.file.is_empty() => out.file = f.to_string(),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if out.file.is_empty() {
        return Err("no input file".into());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hecatec: {e}");
            eprintln!("usage: hecatec <file.heir> [--scheme S] [--waterline W] [--sf F] [--degree N] [--run] [--quiet] [--strict|--fallback]");
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(&args.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hecatec: cannot read {}: {e}", args.file);
            return ExitCode::from(3);
        }
    };
    let func = match parse_function(&src) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hecatec: {}: {e}", args.file);
            return ExitCode::from(3);
        }
    };

    let mut opts = CompileOptions::with_waterline(args.waterline);
    opts.rescale_bits = args.sf;
    opts.degree = args.degree;
    let result = if args.fallback {
        compile_with_fallback(&func, args.scheme, &opts)
    } else {
        compile(&func, args.scheme, &opts)
    };
    let prog = match result {
        Ok(p) => p,
        Err(e) => {
            if args.fallback {
                eprintln!("hecatec: compilation failed on every fallback rung: {e}");
            } else {
                eprintln!("hecatec: compilation failed: {e}");
            }
            return ExitCode::from(4);
        }
    };

    if !args.quiet {
        println!("{}", print_function(&prog.func, Some(&prog.types)));
    }
    println!(
        "scheme {} | waterline 2^{} | Sf 2^{}",
        prog.scheme, args.waterline, args.sf
    );
    match prog.stats.fallback {
        Some(FallbackRung::Primary) | None => {}
        Some(rung) => println!(
            "fallback: degraded to rung '{rung}' after {} failed attempt(s)",
            prog.stats.fallback_attempts
        ),
    }
    println!(
        "parameters: degree {} | chain {} primes (q0 {} bits + {}×{} bits) | max level {} | {}",
        prog.params.degree,
        prog.params.chain_len,
        prog.params.q0_bits,
        prog.params.chain_len - 1,
        prog.params.sf_bits,
        prog.params.max_level,
        if prog.params.secure {
            "128-bit secure"
        } else {
            "NOT 128-bit secure"
        }
    );
    println!(
        "stats: {} ops | estimated {:.1}ms | {} SMUs over {} uses | {} plans explored",
        prog.func.len(),
        prog.stats.estimated_latency_us / 1e3,
        prog.stats.smu_units,
        prog.stats.use_edges,
        prog.stats.plans_explored
    );

    if args.breakdown {
        let table = hecate::compiler::estimator::latency_breakdown(
            &prog.func,
            &prog.types,
            &opts.cost_model,
            prog.params.chain_len,
            prog.params.degree,
        );
        let total: f64 = table.values().sum();
        println!("\nestimated latency by category:");
        for (op, us) in &table {
            println!(
                "  {:<10} {:>10.0}µs {:>5.1}%",
                format!("{op:?}"),
                us,
                us / total * 100.0
            );
        }
    }

    if args.run {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut inputs: HashMap<String, Vec<f64>> = HashMap::new();
        for op in func.ops() {
            if let hecate::ir::Op::Input { name } = op {
                inputs.entry(name.clone()).or_insert_with(|| {
                    (0..func.vec_size)
                        .map(|_| rng.next_range_f64(-1.0, 1.0))
                        .collect()
                });
            }
        }
        let bopts = BackendOptions::default();
        match execute_encrypted(&prog, &inputs, &bopts) {
            Ok(run) => {
                println!(
                    "\nencrypted run: {:.1}ms over {} ops",
                    run.total_us / 1e3,
                    prog.func.len()
                );
                let reference =
                    hecate::ir::interp::interpret(&func, &inputs).expect("inputs bound");
                for (name, v) in &run.outputs {
                    let err = hecate::backend::rms_error(v, &reference[name]);
                    let head: Vec<String> = v.iter().take(4).map(|x| format!("{x:.5}")).collect();
                    println!(
                        "  output \"{name}\": [{} ...] rms error {err:.2e}",
                        head.join(", ")
                    );
                }
            }
            Err(e) => {
                eprintln!("hecatec: execution failed: {e}");
                return ExitCode::from(5);
            }
        }
    }
    ExitCode::SUCCESS
}
