//! `hecatec` — the HECATE compiler driver.
//!
//! Compiles a textual IR file (see `hecate_ir::parse` for the syntax)
//! under a chosen scale-management scheme and prints the scale-managed
//! program, the selected RNS parameters, and the latency estimate.
//! Optionally executes the result under real encryption with seeded
//! random inputs.
//!
//! ```text
//! usage: hecatec <file.heir>... [options]
//!   --scheme eva|pars|smse|hecate   (default hecate)
//!   --waterline BITS                (default 24)
//!   --sf BITS                       (default 60)
//!   --degree N                      fixed ring degree (default: security-selected)
//!   --run                           execute under encryption with random inputs
//!   --breakdown                     print the estimated latency per cost category
//!   --quiet                         suppress the compiled IR listing
//!   --strict                        fail on the first error; no fallback (default)
//!   --fallback                      degrade gracefully down the scheme ladder
//!   --save-plan PATH                write the compiled plan (HECATE-PLAN v1 text)
//!   --load-plan PATH                reuse a saved plan instead of compiling
//!                                   (re-verified against its parameters;
//!                                   warns if it names a different source)
//!   --serve                         serve mode: run all files through hecate-runtime
//!   --jobs N                        serve-mode worker threads (default 2)
//!   --repeat K                      serve mode: submit each file K times (default 2)
//! ```
//!
//! Serve mode compiles each file once through the content-addressed plan
//! cache, runs every submission under encryption in its own tenant
//! session, and prints per-request latency plus the runtime's stats JSON
//! — a batch-shaped stand-in for a long-running serving deployment.
//!
//! Exit codes: 0 success; 2 usage error; 3 input unreadable/unparsable;
//! 4 compilation failed (in `--fallback` mode: every rung failed);
//! 5 encrypted execution failed.

use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::compiler::{
    compile, compile_with_fallback, deserialize_plan, serialize_plan, CompileOptions,
    CompiledProgram, FallbackRung, Scheme,
};
use hecate::ir::hash::function_hash;
use hecate::ir::parse::parse_function;
use hecate::ir::print::print_function;
use hecate::ir::verify::verify_plan;
use hecate::ir::Function;
use hecate::math::rng::Xoshiro256;
use hecate::runtime::{Request, Runtime, RuntimeConfig, RuntimeError};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    files: Vec<String>,
    scheme: Scheme,
    waterline: f64,
    sf: f64,
    degree: Option<usize>,
    run: bool,
    breakdown: bool,
    quiet: bool,
    fallback: bool,
    save_plan: Option<String>,
    load_plan: Option<String>,
    serve: bool,
    jobs: usize,
    repeat: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        files: Vec::new(),
        scheme: Scheme::Hecate,
        waterline: 24.0,
        sf: 60.0,
        degree: None,
        run: false,
        breakdown: false,
        quiet: false,
        fallback: false,
        save_plan: None,
        load_plan: None,
        serve: false,
        jobs: 2,
        repeat: 2,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scheme" => {
                out.scheme = match args.next().as_deref() {
                    Some("eva") => Scheme::Eva,
                    Some("pars") => Scheme::Pars,
                    Some("smse") => Scheme::Smse,
                    Some("hecate") => Scheme::Hecate,
                    other => return Err(format!("bad --scheme {other:?}")),
                }
            }
            "--waterline" => {
                out.waterline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --waterline")?
            }
            "--sf" => out.sf = args.next().and_then(|v| v.parse().ok()).ok_or("bad --sf")?,
            "--degree" => {
                out.degree = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --degree")?,
                )
            }
            "--run" => out.run = true,
            "--breakdown" => out.breakdown = true,
            "--quiet" => out.quiet = true,
            "--strict" => out.fallback = false,
            "--fallback" => out.fallback = true,
            "--save-plan" => out.save_plan = Some(args.next().ok_or("bad --save-plan")?),
            "--load-plan" => out.load_plan = Some(args.next().ok_or("bad --load-plan")?),
            "--serve" => out.serve = true,
            "--jobs" => {
                out.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("bad --jobs")?
            }
            "--repeat" => {
                out.repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("bad --repeat")?
            }
            f if !f.starts_with('-') => out.files.push(f.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if out.files.is_empty() {
        return Err("no input file".into());
    }
    if !out.serve && out.files.len() > 1 {
        return Err("multiple input files require --serve".into());
    }
    Ok(out)
}

/// Deterministic random inputs for every `input` of a function.
fn synth_inputs(func: &Function, seed: u64) -> HashMap<String, Vec<f64>> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut inputs: HashMap<String, Vec<f64>> = HashMap::new();
    for op in func.ops() {
        if let hecate::ir::Op::Input { name } = op {
            inputs.entry(name.clone()).or_insert_with(|| {
                (0..func.vec_size)
                    .map(|_| rng.next_range_f64(-1.0, 1.0))
                    .collect()
            });
        }
    }
    inputs
}

fn load_functions(files: &[String]) -> Result<Vec<(String, Function)>, String> {
    files
        .iter()
        .map(|file| {
            let src =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let func = parse_function(&src).map_err(|e| format!("{file}: {e}"))?;
            Ok((file.clone(), func))
        })
        .collect()
}

/// Batch serving: every file becomes a tenant session; each program is
/// submitted `repeat` times, so all but the first submission of a given
/// program hit the plan cache.
fn serve(args: &Args, opts: &CompileOptions) -> ExitCode {
    let funcs = match load_functions(&args.files) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hecatec: {e}");
            return ExitCode::from(3);
        }
    };
    let rt = Runtime::new(RuntimeConfig {
        workers: args.jobs,
        ..RuntimeConfig::default()
    });
    let mut reqs = Vec::new();
    let mut labels = Vec::new();
    for (k, (file, func)) in funcs.iter().enumerate() {
        let session = rt.open_session();
        let inputs = synth_inputs(func, 1 + k as u64);
        for round in 0..args.repeat {
            labels.push(format!("{file}#{round}"));
            reqs.push(Request {
                session,
                func: func.clone(),
                scheme: args.scheme,
                options: opts.clone(),
                inputs: inputs.clone(),
            });
        }
    }
    println!(
        "serving {} request(s) over {} file(s) with {} worker(s)",
        reqs.len(),
        funcs.len(),
        args.jobs
    );
    let results = rt.run_batch(reqs);
    let mut code = ExitCode::SUCCESS;
    for (label, result) in labels.iter().zip(&results) {
        match result {
            Ok(resp) => println!(
                "  {label}: {} in {:.1}ms (exec {:.1}ms, plan {:016x})",
                if resp.cache_hit {
                    "cache hit "
                } else {
                    "compiled  "
                },
                resp.latency_us / 1e3,
                resp.run.total_us / 1e3,
                resp.plan_key
            ),
            Err(e) => {
                eprintln!("  {label}: FAILED: {e}");
                code = ExitCode::from(match e {
                    RuntimeError::Compile(_) => 4,
                    _ => 5,
                });
            }
        }
    }
    println!("stats: {}", rt.stats().to_json());
    rt.shutdown();
    code
}

fn obtain_plan(
    args: &Args,
    func: &Function,
    opts: &CompileOptions,
) -> Result<CompiledProgram, ExitCode> {
    if let Some(path) = &args.load_plan {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("hecatec: cannot read {path}: {e}");
            ExitCode::from(3)
        })?;
        let prog = deserialize_plan(&text).map_err(|e| {
            eprintln!("hecatec: {path}: {e}");
            ExitCode::from(3)
        })?;
        // A reloaded plan is untrusted input: re-run the full plan
        // verification against its own selected parameters so a stale or
        // hand-edited file cannot execute an inconsistent program.
        let types = verify_plan(&prog.func, &prog.bound_config(), "reload").map_err(|e| {
            eprintln!("hecatec: {path}: reloaded plan failed verification: {e}");
            ExitCode::from(3)
        })?;
        if types != prog.types {
            eprintln!("hecatec: {path}: reloaded plan's type table disagrees with inference");
            return Err(ExitCode::from(3));
        }
        if prog.source_hash != function_hash(func) {
            eprintln!(
                "hecatec: warning: {path} was compiled from a different source program \
                 (plan source hash {:016x}, input hash {:016x}); executing the plan as saved",
                prog.source_hash,
                function_hash(func)
            );
        }
        return Ok(prog);
    }
    let result = if args.fallback {
        compile_with_fallback(func, args.scheme, opts)
    } else {
        compile(func, args.scheme, opts)
    };
    result.map_err(|e| {
        if args.fallback {
            eprintln!("hecatec: compilation failed on every fallback rung: {e}");
        } else {
            eprintln!("hecatec: compilation failed: {e}");
        }
        ExitCode::from(4)
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hecatec: {e}");
            eprintln!("usage: hecatec <file.heir>... [--scheme S] [--waterline W] [--sf F] [--degree N] [--run] [--quiet] [--strict|--fallback] [--save-plan P] [--load-plan P] [--serve] [--jobs N] [--repeat K]");
            return ExitCode::from(2);
        }
    };
    let mut opts = CompileOptions::with_waterline(args.waterline);
    opts.rescale_bits = args.sf;
    opts.degree = args.degree;

    if args.serve {
        return serve(&args, &opts);
    }

    let funcs = match load_functions(&args.files) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hecatec: {e}");
            return ExitCode::from(3);
        }
    };
    let (_, func) = funcs.into_iter().next().expect("one file checked");

    let prog = match obtain_plan(&args, &func, &opts) {
        Ok(p) => p,
        Err(code) => return code,
    };

    if let Some(path) = &args.save_plan {
        if let Err(e) = std::fs::write(path, serialize_plan(&prog)) {
            eprintln!("hecatec: cannot write {path}: {e}");
            return ExitCode::from(3);
        }
        println!("plan saved to {path}");
    }

    if !args.quiet {
        println!("{}", print_function(&prog.func, Some(&prog.types)));
    }
    println!(
        "scheme {} | waterline 2^{} | Sf 2^{}",
        prog.scheme, args.waterline, args.sf
    );
    match prog.stats.fallback {
        Some(FallbackRung::Primary) | None => {}
        Some(rung) => println!(
            "fallback: degraded to rung '{rung}' after {} failed attempt(s)",
            prog.stats.fallback_attempts
        ),
    }
    println!(
        "parameters: degree {} | chain {} primes (q0 {} bits + {}×{} bits) | max level {} | {}",
        prog.params.degree,
        prog.params.chain_len,
        prog.params.q0_bits,
        prog.params.chain_len - 1,
        prog.params.sf_bits,
        prog.params.max_level,
        if prog.params.secure {
            "128-bit secure"
        } else {
            "NOT 128-bit secure"
        }
    );
    println!(
        "stats: {} ops | estimated {:.1}ms | {} SMUs over {} uses | {} plans explored",
        prog.func.len(),
        prog.stats.estimated_latency_us / 1e3,
        prog.stats.smu_units,
        prog.stats.use_edges,
        prog.stats.plans_explored
    );

    if args.breakdown {
        let table = hecate::compiler::estimator::latency_breakdown(
            &prog.func,
            &prog.types,
            &opts.cost_model,
            prog.params.chain_len,
            prog.params.degree,
        );
        let total: f64 = table.values().sum();
        println!("\nestimated latency by category:");
        for (op, us) in &table {
            println!(
                "  {:<10} {:>10.0}µs {:>5.1}%",
                format!("{op:?}"),
                us,
                us / total * 100.0
            );
        }
    }

    if args.run {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut inputs: HashMap<String, Vec<f64>> = HashMap::new();
        for op in func.ops() {
            if let hecate::ir::Op::Input { name } = op {
                inputs.entry(name.clone()).or_insert_with(|| {
                    (0..func.vec_size)
                        .map(|_| rng.next_range_f64(-1.0, 1.0))
                        .collect()
                });
            }
        }
        let bopts = BackendOptions::default();
        match execute_encrypted(&prog, &inputs, &bopts) {
            Ok(run) => {
                println!(
                    "\nencrypted run: {:.1}ms over {} ops",
                    run.total_us / 1e3,
                    prog.func.len()
                );
                let reference =
                    hecate::ir::interp::interpret(&func, &inputs).expect("inputs bound");
                for (name, v) in &run.outputs {
                    let err = hecate::backend::rms_error(v, &reference[name]);
                    let head: Vec<String> = v.iter().take(4).map(|x| format!("{x:.5}")).collect();
                    println!(
                        "  output \"{name}\": [{} ...] rms error {err:.2e}",
                        head.join(", ")
                    );
                }
            }
            Err(e) => {
                eprintln!("hecatec: execution failed: {e}");
                return ExitCode::from(5);
            }
        }
    }
    ExitCode::SUCCESS
}
