//! `hecatec` — the HECATE compiler driver.
//!
//! Compiles a textual IR file (see `hecate_ir::parse` for the syntax)
//! under a chosen scale-management scheme and prints the scale-managed
//! program, the selected RNS parameters, and the latency estimate.
//! Optionally executes the result under real encryption with seeded
//! random inputs.
//!
//! ```text
//! usage: hecatec <file.heir>... [options]
//!   --scheme eva|pars|smse|hecate   (default hecate)
//!   --waterline BITS                (default 24)
//!   --sf BITS                       (default 60)
//!   --degree N                      fixed ring degree (default: security-selected)
//!   --run                           execute under encryption with random inputs
//!   --breakdown                     print the estimated latency per cost category
//!   --quiet                         suppress the compiled IR listing
//!   --strict                        fail on the first error; no fallback (default)
//!   --fallback                      degrade gracefully down the scheme ladder
//!   --save-plan PATH                write the compiled plan (HECATE-PLAN v1 text)
//!   --load-plan PATH                reuse a saved plan instead of compiling
//!                                   (re-verified against its parameters;
//!                                   warns if it names a different source)
//!   --serve                         serve mode: run all files through hecate-runtime
//!   --jobs N                        serve-mode worker threads (default 2)
//!   --max-batch N                   serve mode: coalesce up to N queued same-plan
//!                                   requests into one packed ciphertext, one slot
//!                                   block per tenant (default 1 = batching off);
//!                                   with --audit: audit a slot-batched run at
//!                                   occupancy N (largest power of two <= N)
//!   --batch-window-us U             serve mode: how long a worker waits for batch
//!                                   partners after dequeuing a request (default 0:
//!                                   only already-queued requests coalesce)
//!   --kernel-jobs N                 per-limb kernel threads inside NTT and
//!                                   key switching (default 1; bit-identical
//!                                   results at any N)
//!   --core-budget N|auto            serve mode: split N cores (auto = all the
//!                                   machine's cores) between the --jobs request
//!                                   workers and per-request kernel jobs
//!                                   (kernel jobs = budget / workers, overriding
//!                                   --kernel-jobs); the resolved split lands in
//!                                   the stats JSON and Prometheus export
//!   --no-hoist                      disable rotation hoisting (shared RNS
//!                                   decomposition across a rotation fan-out)
//!   --repeat K                      serve mode: submit each file K times (default 2)
//!   --chaos N                       serve mode: inject a failure into every Nth
//!                                   request (0 disables; kinds rotate per --chaos-kind)
//!   --chaos-kind fault|latency|panic|mix
//!                                   which failure to inject (default mix: rotate
//!                                   through all three)
//!   --chaos-latency-us U            injected latency per latency hit (default 5000)
//!   --chaos-fault SPEC              injected fault plan (default perturb-scale@0:1;
//!                                   syntax: corrupt-limb@AT:LIMB, perturb-scale@AT:BITS,
//!                                   drop-rescale@AT, skip-relin, exhaust-noise@AT)
//!   --deadline-ms D                 serve mode: per-request deadline; expiry in queue
//!                                   or mid-run fails the request as timed out
//!   --retries R                     serve mode: re-execute transient failures up to R
//!                                   times on a fresh engine (default 0)
//!   --queue-cap N                   serve mode: bound on queued requests; a full
//!                                   queue rejects submissions (default 4096)
//!   --admission-budget-ms B         serve mode: shed cached-plan requests whose
//!                                   estimated cost x queue depth exceeds B
//!   --diag-out DIR                  serve mode: write a diagnostics snapshot
//!                                   (diag-NNNNNN.json) to DIR every interval, a
//!                                   final one at shutdown, and a black-box crash
//!                                   dump (blackbox-req{id}.json) for every
//!                                   panicked request
//!   --diag-interval-ms N            period between diagnostics snapshots
//!                                   (default 1000)
//!   --slow-ms MS                    flight recorder: retain the full span tree of
//!                                   any request slower than MS (failures — shed,
//!                                   timed out, guard-failed, panicked — are
//!                                   always retained)
//!   --slo-target-ms MS              latency objective reported as SLO burn
//!                                   (sliding p99 / target) in diagnostics
//!   --no-flight-recorder            disable the always-on bounded recorder for
//!                                   this serve run
//!   --trace PATH                    record spans for the whole invocation to PATH
//!   --trace-format jsonl|chrome     trace file format (default chrome; a Chrome
//!                                   trace loads in Perfetto / chrome://tracing)
//!   --metrics PATH                  write Prometheus-text metrics to PATH on exit
//!   --estimator-report              compile and execute the paper's eight
//!                                   benchmarks (Small preset), then print the
//!                                   analytic estimate, the traced latency, and a
//!                                   re-estimate from the trace-measured cost
//!                                   table; takes no input files
//!   --audit                         run encrypted AND in the plaintext reference,
//!                                   decrypt-compare at every output plus selected
//!                                   intermediates, and print a per-op table of
//!                                   predicted vs measured RMS error and waterline
//!                                   margin; exit 6 on any violation
//!   --audit-checkpoints N           intermediate decrypt probes per program
//!                                   (default 4; outputs are always probed)
//!   --bench NAME|all                audit a named paper benchmark (Small preset)
//!                                   instead of an input file; `all` audits all 8
//!   --precision-trace PATH          write the per-op noise ledger (and audit
//!                                   probes) as JSONL to PATH on exit
//!   --max-rms BOUND                 abort encrypted execution once the modeled
//!                                   RMS noise of any value exceeds BOUND
//! ```
//!
//! Serve mode compiles each file once through the content-addressed plan
//! cache, runs every submission under encryption in its own tenant
//! session, and prints per-request latency plus the runtime's stats JSON
//! — a batch-shaped stand-in for a long-running serving deployment.
//!
//! `--trace` and `--metrics` observe *every* mode: the tracer is switched
//! on before any work starts and the files are written after the run
//! finishes, on success and failure alike, so a failing compile still
//! leaves a trace of how far it got.
//!
//! Exit codes: 0 success; 2 usage error; 3 input unreadable/unparsable
//! (or a trace/metrics/precision file could not be written); 4 compilation
//! failed (in `--fallback` mode: every rung failed); 5 encrypted execution
//! failed; 6 audit violation (measured error above the predicted bound or
//! a negative waterline margin).

use hecate::backend::exec::{execute_encrypted, BackendOptions};
use hecate::backend::FaultPlan;
use hecate::compiler::estimator::estimate_latency_us;
use hecate::compiler::{
    compile, compile_with_fallback, deserialize_plan, serialize_plan, CompileOptions,
    CompiledProgram, CostModel, CostTable, FallbackRung, Scheme,
};
use hecate::ir::hash::function_hash;
use hecate::ir::parse::parse_function;
use hecate::ir::print::print_function;
use hecate::ir::verify::verify_plan;
use hecate::ir::Function;
use hecate::math::rng::Xoshiro256;
use hecate::runtime::{
    ChaosKind, ChaosOptions, CoreBudget, DiagOptions, RecorderOptions, Request, Runtime,
    RuntimeConfig, RuntimeError,
};
use hecate::telemetry::{export, trace, Event};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

struct Args {
    files: Vec<String>,
    scheme: Scheme,
    waterline: f64,
    sf: f64,
    degree: Option<usize>,
    run: bool,
    breakdown: bool,
    quiet: bool,
    fallback: bool,
    save_plan: Option<String>,
    load_plan: Option<String>,
    serve: bool,
    jobs: usize,
    max_batch: usize,
    batch_window_us: u64,
    kernel_jobs: usize,
    core_budget: CoreBudget,
    hoist: bool,
    repeat: usize,
    trace: Option<String>,
    trace_format: TraceFormat,
    metrics: Option<String>,
    estimator_report: bool,
    audit: bool,
    audit_checkpoints: usize,
    bench: Option<String>,
    precision_trace: Option<String>,
    max_rms: Option<f64>,
    chaos: Option<u64>,
    chaos_kind: String,
    chaos_latency_us: u64,
    chaos_fault: Option<FaultPlan>,
    deadline_ms: Option<u64>,
    retries: u32,
    queue_cap: Option<usize>,
    admission_budget_ms: Option<f64>,
    diag_out: Option<String>,
    diag_interval_ms: u64,
    slow_ms: Option<f64>,
    slo_target_ms: Option<f64>,
    flight_recorder: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        files: Vec::new(),
        scheme: Scheme::Hecate,
        waterline: 24.0,
        sf: 60.0,
        degree: None,
        run: false,
        breakdown: false,
        quiet: false,
        fallback: false,
        save_plan: None,
        load_plan: None,
        serve: false,
        jobs: 2,
        max_batch: 1,
        batch_window_us: 0,
        kernel_jobs: 1,
        core_budget: CoreBudget::Unmanaged,
        hoist: true,
        repeat: 2,
        trace: None,
        trace_format: TraceFormat::Chrome,
        metrics: None,
        estimator_report: false,
        audit: false,
        audit_checkpoints: 4,
        bench: None,
        precision_trace: None,
        max_rms: None,
        chaos: None,
        chaos_kind: "mix".to_string(),
        chaos_latency_us: 5000,
        chaos_fault: None,
        deadline_ms: None,
        retries: 0,
        queue_cap: None,
        admission_budget_ms: None,
        diag_out: None,
        diag_interval_ms: 1000,
        slow_ms: None,
        slo_target_ms: None,
        flight_recorder: true,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scheme" => {
                out.scheme = match args.next().as_deref() {
                    Some("eva") => Scheme::Eva,
                    Some("pars") => Scheme::Pars,
                    Some("smse") => Scheme::Smse,
                    Some("hecate") => Scheme::Hecate,
                    other => return Err(format!("bad --scheme {other:?}")),
                }
            }
            "--waterline" => {
                out.waterline = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --waterline")?
            }
            "--sf" => out.sf = args.next().and_then(|v| v.parse().ok()).ok_or("bad --sf")?,
            "--degree" => {
                out.degree = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --degree")?,
                )
            }
            "--run" => out.run = true,
            "--breakdown" => out.breakdown = true,
            "--quiet" => out.quiet = true,
            "--strict" => out.fallback = false,
            "--fallback" => out.fallback = true,
            "--save-plan" => out.save_plan = Some(args.next().ok_or("bad --save-plan")?),
            "--load-plan" => out.load_plan = Some(args.next().ok_or("bad --load-plan")?),
            "--serve" => out.serve = true,
            "--jobs" => {
                out.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("bad --jobs")?
            }
            "--max-batch" => {
                out.max_batch = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("bad --max-batch")?
            }
            "--batch-window-us" => {
                out.batch_window_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --batch-window-us")?
            }
            "--kernel-jobs" => {
                out.kernel_jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("bad --kernel-jobs")?
            }
            "--core-budget" => {
                out.core_budget = match args.next().as_deref() {
                    Some("auto") => CoreBudget::Auto,
                    Some(v) => CoreBudget::Cores(
                        v.parse()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or("bad --core-budget")?,
                    ),
                    None => return Err("bad --core-budget".into()),
                }
            }
            "--no-hoist" => out.hoist = false,
            "--repeat" => {
                out.repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("bad --repeat")?
            }
            "--trace" => out.trace = Some(args.next().ok_or("bad --trace")?),
            "--trace-format" => {
                out.trace_format = match args.next().as_deref() {
                    Some("jsonl") => TraceFormat::Jsonl,
                    Some("chrome") => TraceFormat::Chrome,
                    other => return Err(format!("bad --trace-format {other:?}")),
                }
            }
            "--metrics" => out.metrics = Some(args.next().ok_or("bad --metrics")?),
            "--estimator-report" => out.estimator_report = true,
            "--audit" => out.audit = true,
            "--audit-checkpoints" => {
                out.audit_checkpoints = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --audit-checkpoints")?
            }
            "--bench" => out.bench = Some(args.next().ok_or("bad --bench")?),
            "--precision-trace" => {
                out.precision_trace = Some(args.next().ok_or("bad --precision-trace")?)
            }
            "--max-rms" => {
                out.max_rms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&b: &f64| b > 0.0)
                        .ok_or("bad --max-rms")?,
                )
            }
            "--chaos" => {
                out.chaos = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --chaos")?,
                )
            }
            "--chaos-kind" => {
                let kind = args.next().ok_or("bad --chaos-kind")?;
                if kind != "mix" {
                    ChaosKind::parse(&kind)?; // validate eagerly
                }
                out.chaos_kind = kind;
            }
            "--chaos-latency-us" => {
                out.chaos_latency_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --chaos-latency-us")?
            }
            "--chaos-fault" => {
                out.chaos_fault = Some(FaultPlan::parse(&args.next().ok_or("bad --chaos-fault")?)?)
            }
            "--deadline-ms" => {
                out.deadline_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("bad --deadline-ms")?,
                )
            }
            "--retries" => {
                out.retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --retries")?
            }
            "--queue-cap" => {
                out.queue_cap = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("bad --queue-cap")?,
                )
            }
            "--admission-budget-ms" => {
                out.admission_budget_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&b: &f64| b > 0.0)
                        .ok_or("bad --admission-budget-ms")?,
                )
            }
            "--diag-out" => out.diag_out = Some(args.next().ok_or("bad --diag-out")?),
            "--diag-interval-ms" => {
                out.diag_interval_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("bad --diag-interval-ms")?
            }
            "--slow-ms" => {
                out.slow_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&b: &f64| b >= 0.0)
                        .ok_or("bad --slow-ms")?,
                )
            }
            "--slo-target-ms" => {
                out.slo_target_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&b: &f64| b > 0.0)
                        .ok_or("bad --slo-target-ms")?,
                )
            }
            "--no-flight-recorder" => out.flight_recorder = false,
            f if !f.starts_with('-') => out.files.push(f.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if out.bench.is_some() && !out.audit {
        return Err("--bench requires --audit".into());
    }
    if out.audit && (out.serve || out.estimator_report) {
        return Err("--audit is incompatible with --serve and --estimator-report".into());
    }
    if out.estimator_report || out.bench.is_some() {
        if !out.files.is_empty() {
            return Err(if out.estimator_report {
                "--estimator-report takes no input files".into()
            } else {
                "--bench takes no input files".into()
            });
        }
    } else if out.files.is_empty() {
        return Err("no input file".into());
    }
    if !out.serve && out.files.len() > 1 {
        return Err("multiple input files require --serve".into());
    }
    let serve_only_flags = out.chaos.is_some()
        || out.deadline_ms.is_some()
        || out.retries > 0
        || out.queue_cap.is_some()
        || out.admission_budget_ms.is_some();
    if serve_only_flags && !out.serve {
        return Err(
            "--chaos/--deadline-ms/--retries/--queue-cap/--admission-budget-ms require --serve"
                .into(),
        );
    }
    if out.batch_window_us > 0 && !out.serve {
        return Err("--batch-window-us requires --serve".into());
    }
    let diag_flags = out.diag_out.is_some()
        || out.slow_ms.is_some()
        || out.slo_target_ms.is_some()
        || !out.flight_recorder;
    if diag_flags && !out.serve {
        return Err(
            "--diag-out/--slow-ms/--slo-target-ms/--no-flight-recorder require --serve".into(),
        );
    }
    if out.core_budget != CoreBudget::Unmanaged && !out.serve {
        return Err("--core-budget requires --serve".into());
    }
    if out.max_batch > 1 && !(out.serve || out.audit) {
        return Err("--max-batch requires --serve or --audit".into());
    }
    Ok(out)
}

/// Deterministic random inputs for every `input` of a function.
fn synth_inputs(func: &Function, seed: u64) -> HashMap<String, Vec<f64>> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut inputs: HashMap<String, Vec<f64>> = HashMap::new();
    for op in func.ops() {
        if let hecate::ir::Op::Input { name } = op {
            inputs.entry(name.clone()).or_insert_with(|| {
                (0..func.vec_size)
                    .map(|_| rng.next_range_f64(-1.0, 1.0))
                    .collect()
            });
        }
    }
    inputs
}

fn load_functions(files: &[String]) -> Result<Vec<(String, Function)>, String> {
    files
        .iter()
        .map(|file| {
            let src =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let func = parse_function(&src).map_err(|e| format!("{file}: {e}"))?;
            Ok((file.clone(), func))
        })
        .collect()
}

/// Batch serving: every file becomes a tenant session; each program is
/// submitted `repeat` times, so all but the first submission of a given
/// program hit the plan cache. On return, `metrics_extra` holds the
/// runtime's own counters in Prometheus text form (appended to the
/// `--metrics` file, which otherwise only sees the process-global
/// registry).
fn serve(args: &Args, opts: &CompileOptions, metrics_extra: &mut String) -> u8 {
    let funcs = match load_functions(&args.files) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hecatec: {e}");
            return 3;
        }
    };
    let defaults = ChaosOptions::default();
    let chaos = args.chaos.map(|every_nth| ChaosOptions {
        every_nth,
        mix: if args.chaos_kind == "mix" {
            defaults.mix.clone()
        } else {
            vec![ChaosKind::parse(&args.chaos_kind).expect("validated by parse_args")]
        },
        fault: args.chaos_fault.clone().unwrap_or(defaults.fault),
        latency: Duration::from_micros(args.chaos_latency_us),
    });
    let recorder = args.flight_recorder.then(|| RecorderOptions {
        slow_threshold: args.slow_ms.map(|ms| Duration::from_secs_f64(ms / 1e3)),
        ..RecorderOptions::default()
    });
    let diag = args.diag_out.as_ref().map(|dir| DiagOptions {
        dir: dir.into(),
        interval: Duration::from_millis(args.diag_interval_ms),
    });
    let mut config = RuntimeConfig {
        workers: args.jobs,
        backend: backend_options(args),
        admission_budget_us: args.admission_budget_ms.map(|ms| ms * 1e3),
        chaos,
        max_batch: args.max_batch,
        batch_window: Duration::from_micros(args.batch_window_us),
        core_budget: args.core_budget,
        recorder,
        slo_target_us: args.slo_target_ms.map(|ms| ms * 1e3),
        diag,
        ..RuntimeConfig::default()
    };
    if let Some(cap) = args.queue_cap {
        config.queue_capacity = cap;
    }
    let rt = Runtime::new(config);
    if args.core_budget != CoreBudget::Unmanaged {
        let split = rt.core_split();
        println!(
            "core budget: {} core(s) -> {} worker(s) x {} kernel job(s)",
            split.budget.unwrap_or(0),
            split.workers,
            split.kernel_jobs
        );
    }
    let mut reqs = Vec::new();
    let mut labels = Vec::new();
    for (k, (file, func)) in funcs.iter().enumerate() {
        let session = rt.open_session();
        let inputs = synth_inputs(func, 1 + k as u64);
        for round in 0..args.repeat {
            labels.push(format!("{file}#{round}"));
            reqs.push(Request {
                session,
                func: func.clone(),
                scheme: args.scheme,
                options: opts.clone(),
                inputs: inputs.clone(),
                deadline: args.deadline_ms.map(Duration::from_millis),
                max_retries: args.retries,
            });
        }
    }
    println!(
        "serving {} request(s) over {} file(s) with {} worker(s)",
        reqs.len(),
        funcs.len(),
        args.jobs
    );
    if let Some(n) = args.chaos {
        println!(
            "chaos: injecting {} into every {n}th request",
            args.chaos_kind
        );
    }
    if args.max_batch > 1 {
        println!(
            "batching: up to {} same-plan request(s) per packed ciphertext (window {}µs)",
            args.max_batch, args.batch_window_us
        );
    }
    if let Some(dir) = &args.diag_out {
        println!(
            "diagnostics: snapshots every {}ms to {dir} (black-box dumps on panic)",
            args.diag_interval_ms
        );
    }
    let results = rt.run_batch(reqs);
    let mut code = 0u8;
    for (label, result) in labels.iter().zip(&results) {
        match result {
            Ok(resp) => println!(
                "  {label}: {} in {:.1}ms (exec {:.1}ms, plan {:016x})",
                if resp.cache_hit {
                    "cache hit "
                } else {
                    "compiled  "
                },
                resp.latency_us / 1e3,
                resp.run.total_us / 1e3,
                resp.plan_key
            ),
            Err(e) => {
                eprintln!("  {label}: FAILED: {e}");
                code = match e {
                    RuntimeError::Compile(_) => 4,
                    _ => 5,
                };
            }
        }
    }
    println!("stats: {}", rt.stats().to_json());
    *metrics_extra = rt.metrics_prometheus();
    rt.shutdown();
    code
}

fn obtain_plan(args: &Args, func: &Function, opts: &CompileOptions) -> Result<CompiledProgram, u8> {
    if let Some(path) = &args.load_plan {
        let text = std::fs::read_to_string(path).map_err(|e| {
            eprintln!("hecatec: cannot read {path}: {e}");
            3
        })?;
        let prog = deserialize_plan(&text).map_err(|e| {
            eprintln!("hecatec: {path}: {e}");
            3
        })?;
        // A reloaded plan is untrusted input: re-run the full plan
        // verification against its own selected parameters so a stale or
        // hand-edited file cannot execute an inconsistent program.
        let types = verify_plan(&prog.func, &prog.bound_config(), "reload").map_err(|e| {
            eprintln!("hecatec: {path}: reloaded plan failed verification: {e}");
            3
        })?;
        if types != prog.types {
            eprintln!("hecatec: {path}: reloaded plan's type table disagrees with inference");
            return Err(3);
        }
        if prog.source_hash != function_hash(func) {
            eprintln!(
                "hecatec: warning: {path} was compiled from a different source program \
                 (plan source hash {:016x}, input hash {:016x}); executing the plan as saved",
                prog.source_hash,
                function_hash(func)
            );
        }
        return Ok(prog);
    }
    let result = if args.fallback {
        compile_with_fallback(func, args.scheme, opts)
    } else {
        compile(func, args.scheme, opts)
    };
    result.map_err(|e| {
        if args.fallback {
            eprintln!("hecatec: compilation failed on every fallback rung: {e}");
        } else {
            eprintln!("hecatec: compilation failed: {e}");
        }
        4
    })
}

/// The estimator loop, end to end: compile each of the paper's eight
/// benchmarks (Small preset), execute it under encryption with the
/// tracer on, fold the per-op `exec-op` spans into a measured
/// [`CostTable`], and re-estimate with [`CostModel::Profiled`]. Prints
/// one row per benchmark — analytic estimate, traced latency, profiled
/// re-estimate, and the ratios — plus the geomean ratios the paper's
/// Fig. 8 reports.
///
/// Every event drained here is pushed into `events_out` so a
/// simultaneous `--trace` still sees the full invocation.
/// Backend options implied by the CLI flags (`--kernel-jobs`,
/// `--no-hoist`).
fn backend_options(args: &Args) -> BackendOptions {
    let mut opts = BackendOptions {
        kernel_jobs: args.kernel_jobs,
        hoist_rotations: args.hoist,
        ..BackendOptions::default()
    };
    opts.guard.max_rms = args.max_rms;
    opts
}

fn estimator_report(args: &Args, opts: &CompileOptions, events_out: &mut Vec<Event>) -> u8 {
    let benches = hecate::apps::all_benchmarks(hecate::apps::Preset::Small);
    println!(
        "estimator report: {} benchmark(s), Small preset, scheme {}",
        benches.len(),
        args.scheme
    );
    println!(
        "  {:<6} {:>5} {:>6} {:>12} {:>12} {:>12} {:>7} {:>7} {:>10}",
        "name",
        "ops",
        "degree",
        "analytic ms",
        "traced ms",
        "profiled ms",
        "an/tr",
        "pf/tr",
        "noise bits"
    );
    let (mut ln_analytic, mut ln_profiled) = (0.0f64, 0.0f64);
    for b in &benches {
        let mut bopts = opts.clone();
        bopts.degree = Some(opts.degree.unwrap_or((2 * b.func.vec_size).max(512)));
        let prog = match compile(&b.func, args.scheme, &bopts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("hecatec: {}: compilation failed: {e}", b.name);
                return 4;
            }
        };
        // Split the stream here so the fold below sees only this
        // benchmark's execution ops, not its compile spans.
        events_out.extend(trace::drain());
        if let Err(e) = execute_encrypted(&prog, &b.inputs, &backend_options(args)) {
            eprintln!("hecatec: {}: execution failed: {e}", b.name);
            return 5;
        }
        let events = trace::drain();
        let analytic = prog.stats.estimated_latency_us;
        let traced = hecate::compiler::traced_total_us(&events);
        let table = CostTable::from_trace(&events, prog.params.degree);
        let profiled = estimate_latency_us(
            &prog.func,
            &prog.types,
            &CostModel::Profiled(Arc::new(table)),
            prog.params.chain_len,
            prog.params.degree,
        );
        events_out.extend(events);
        println!(
            "  {:<6} {:>5} {:>6} {:>12.2} {:>12.2} {:>12.2} {:>7.3} {:>7.3} {:>10.1}",
            b.name,
            prog.func.len(),
            prog.params.degree,
            analytic / 1e3,
            traced / 1e3,
            profiled / 1e3,
            analytic / traced,
            profiled / traced,
            prog.stats.estimated_noise_bits
        );
        ln_analytic += (analytic / traced).ln();
        ln_profiled += (profiled / traced).ln();
    }
    let n = benches.len() as f64;
    println!(
        "geomean ratio vs traced: analytic {:.3}, profiled {:.3}",
        (ln_analytic / n).exp(),
        (ln_profiled / n).exp()
    );
    0
}

/// Audit mode: run each program encrypted *and* in the plaintext
/// reference, decrypt-compare at probes, and print the per-op precision
/// table. Programs come from input files (compiled or `--load-plan`
/// reloaded) or from `--bench NAME|all` (the paper's benchmarks, Small
/// preset). Returns 6 when any probe's measured error exceeds 10× its
/// prediction or any waterline margin is negative.
fn audit_mode(args: &Args, opts: &CompileOptions) -> u8 {
    use hecate::backend::{audit_batched, audit_encrypted, AuditOptions, ExecEngine, ExecError};

    /// One audit case: (label, function, inputs, compile options).
    type AuditCase = (String, Function, HashMap<String, Vec<f64>>, CompileOptions);
    let mut cases: Vec<AuditCase> = Vec::new();
    if let Some(sel) = &args.bench {
        let benches = hecate::apps::all_benchmarks(hecate::apps::Preset::Small);
        let names: Vec<String> = benches.iter().map(|b| b.name.clone()).collect();
        let selected: Vec<_> = benches
            .into_iter()
            .filter(|b| sel == "all" || b.name == *sel)
            .collect();
        if selected.is_empty() {
            eprintln!(
                "hecatec: unknown benchmark '{sel}' (have: {})",
                names.join(", ")
            );
            return 2;
        }
        for b in selected {
            let mut bopts = opts.clone();
            bopts.degree = Some(opts.degree.unwrap_or((2 * b.func.vec_size).max(512)));
            cases.push((b.name, b.func, b.inputs, bopts));
        }
    } else {
        let funcs = match load_functions(&args.files) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("hecatec: {e}");
                return 3;
            }
        };
        for (file, func) in funcs {
            let inputs = synth_inputs(&func, 1);
            cases.push((file, func, inputs, opts.clone()));
        }
    }

    let audit_opts = AuditOptions {
        checkpoints: args.audit_checkpoints,
        ..AuditOptions::default()
    };
    let bopts = backend_options(args);
    let mut violation_count = 0usize;
    for (label, func, inputs, copts) in &cases {
        let prog = if args.bench.is_some() {
            match compile(func, args.scheme, copts) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("hecatec: {label}: compilation failed: {e}");
                    return 4;
                }
            }
        } else {
            match obtain_plan(args, func, copts) {
                Ok(p) => p,
                Err(code) => return code,
            }
        };
        // With --max-batch N, audit one slot-batched run at the largest
        // power-of-two occupancy <= N (the packed layout needs a power of
        // two). File cases vary the synthetic input seed per tenant so the
        // demux proves isolation; bench cases ship fixed inputs, shared by
        // every tenant. An infeasible footprint degrades to a solo audit,
        // mirroring the serving scheduler.
        let occupancy = if args.max_batch > 1 {
            let mut occ = 1usize;
            while occ * 2 <= args.max_batch {
                occ *= 2;
            }
            occ
        } else {
            1
        };
        let reports: Vec<(String, hecate::backend::AuditReport)> = if occupancy > 1 {
            let mut batch_opts = bopts.clone();
            batch_opts.batch_occupancy = occupancy;
            match ExecEngine::new(Arc::new(prog.clone()), &batch_opts) {
                Ok(engine) => {
                    let tenant_inputs: Vec<HashMap<String, Vec<f64>>> = (0..occupancy)
                        .map(|t| {
                            if args.bench.is_some() {
                                inputs.clone()
                            } else {
                                synth_inputs(func, 1 + t as u64)
                            }
                        })
                        .collect();
                    let refs: Vec<&HashMap<String, Vec<f64>>> = tenant_inputs.iter().collect();
                    match audit_batched(&engine, &refs, &audit_opts) {
                        Ok(rs) => rs
                            .into_iter()
                            .enumerate()
                            .map(|(t, r)| (format!("{label} [tenant {t}/{occupancy}]"), r))
                            .collect(),
                        Err(e) => {
                            eprintln!("hecatec: {label}: execution failed: {e}");
                            return 5;
                        }
                    }
                }
                Err(ExecError::BatchUnsupported {
                    occupancy,
                    block,
                    needed,
                }) => {
                    eprintln!(
                        "hecatec: {label}: batching infeasible at occupancy {occupancy} \
                         (footprint needs {needed} slots, block holds {block}); auditing solo"
                    );
                    match audit_encrypted(&prog, inputs, &bopts, &audit_opts) {
                        Ok(r) => vec![(label.clone(), r)],
                        Err(e) => {
                            eprintln!("hecatec: {label}: execution failed: {e}");
                            return 5;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("hecatec: {label}: engine construction failed: {e}");
                    return 5;
                }
            }
        } else {
            match audit_encrypted(&prog, inputs, &bopts, &audit_opts) {
                Ok(r) => vec![(label.clone(), r)],
                Err(e) => {
                    eprintln!("hecatec: {label}: execution failed: {e}");
                    return 5;
                }
            }
        };
        for (label, report) in &reports {
            let probed = report
                .rows
                .iter()
                .filter(|r| r.measured_rms.is_some())
                .count();
            println!(
                "audit {label}: {} cipher op(s), {probed} probed, {:.1}ms encrypted",
                report.rows.len(),
                report.total_us / 1e3
            );
            println!(
                "  {:>4} {:<10} {:>4} {:>7} {:>8} {:>11} {:>11} {:>7}",
                "op", "kind", "lvl", "scale", "margin", "predicted", "measured", "ratio"
            );
            for row in &report.rows {
                let (measured, ratio) = match row.measured_rms {
                    Some(m) => (
                        format!("{m:>11.3e}"),
                        format!("{:>7.2}", m / row.predicted_rms.max(audit_opts.floor)),
                    ),
                    None => (format!("{:>11}", "-"), format!("{:>7}", "-")),
                };
                println!(
                    "  {:>4} {:<10} {:>4} {:>7.1} {:>8.2} {:>11.3e} {measured} {ratio}{}",
                    row.op,
                    row.mnemonic,
                    row.level,
                    row.scale_bits,
                    row.margin_bits,
                    row.predicted_rms,
                    if row.is_output { "  <- output" } else { "" }
                );
            }
            println!(
                "  tightest waterline margin: {:.2} bits",
                report.min_margin_bits
            );
            let violations = report.violations(&audit_opts);
            if violations.is_empty() {
                println!(
                    "  audit PASSED (worst measured/predicted ratio {:.2})",
                    report.worst_ratio(audit_opts.floor)
                );
            } else {
                for v in &violations {
                    eprintln!("  audit VIOLATION: {v}");
                }
                violation_count += violations.len();
            }
        }
    }
    if violation_count > 0 {
        eprintln!("hecatec: audit failed with {violation_count} violation(s)");
        6
    } else {
        0
    }
}

/// Compile (or reload) a single file, print the plan, and optionally
/// execute it — the classic single-shot driver path.
fn run_single(args: &Args, opts: &CompileOptions) -> u8 {
    let funcs = match load_functions(&args.files) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hecatec: {e}");
            return 3;
        }
    };
    let (_, func) = funcs.into_iter().next().expect("one file checked");

    let prog = match obtain_plan(args, &func, opts) {
        Ok(p) => p,
        Err(code) => return code,
    };

    if let Some(path) = &args.save_plan {
        if let Err(e) = std::fs::write(path, serialize_plan(&prog)) {
            eprintln!("hecatec: cannot write {path}: {e}");
            return 3;
        }
        println!("plan saved to {path}");
    }

    if !args.quiet {
        println!("{}", print_function(&prog.func, Some(&prog.types)));
    }
    println!(
        "scheme {} | waterline 2^{} | Sf 2^{}",
        prog.scheme, args.waterline, args.sf
    );
    match prog.stats.fallback {
        Some(FallbackRung::Primary) | None => {}
        Some(rung) => println!(
            "fallback: degraded to rung '{rung}' after {} failed attempt(s)",
            prog.stats.fallback_attempts
        ),
    }
    println!(
        "parameters: degree {} | chain {} primes (q0 {} bits + {}×{} bits) | max level {} | {}",
        prog.params.degree,
        prog.params.chain_len,
        prog.params.q0_bits,
        prog.params.chain_len - 1,
        prog.params.sf_bits,
        prog.params.max_level,
        if prog.params.secure {
            "128-bit secure"
        } else {
            "NOT 128-bit secure"
        }
    );
    println!(
        "stats: {} ops | estimated {:.1}ms | {} SMUs over {} uses | {} plans explored",
        prog.func.len(),
        prog.stats.estimated_latency_us / 1e3,
        prog.stats.smu_units,
        prog.stats.use_edges,
        prog.stats.plans_explored
    );

    if args.breakdown {
        let table = hecate::compiler::estimator::latency_breakdown(
            &prog.func,
            &prog.types,
            &opts.cost_model,
            prog.params.chain_len,
            prog.params.degree,
        );
        let total: f64 = table.values().sum();
        println!("\nestimated latency by category:");
        for (op, us) in &table {
            println!(
                "  {:<10} {:>10.0}µs {:>5.1}%",
                format!("{op:?}"),
                us,
                us / total * 100.0
            );
        }
    }

    if args.run {
        let inputs = synth_inputs(&func, 1);
        let bopts = backend_options(args);
        match execute_encrypted(&prog, &inputs, &bopts) {
            Ok(run) => {
                println!(
                    "\nencrypted run: {:.1}ms over {} ops",
                    run.total_us / 1e3,
                    prog.func.len()
                );
                let reference =
                    hecate::ir::interp::interpret(&func, &inputs).expect("inputs bound");
                for (name, v) in &run.outputs {
                    let err = hecate::backend::rms_error(v, &reference[name]);
                    let head: Vec<String> = v.iter().take(4).map(|x| format!("{x:.5}")).collect();
                    println!(
                        "  output \"{name}\": [{} ...] rms error {err:.2e}",
                        head.join(", ")
                    );
                }
            }
            Err(e) => {
                eprintln!("hecatec: execution failed: {e}");
                return 5;
            }
        }
    }
    0
}

/// Drains the tracer and writes the `--trace`, `--metrics`, and
/// `--precision-trace` files. Runs on every exit path — including
/// execution failures like a tripped guard or an exhausted noise budget —
/// so a failing run still leaves valid, complete files covering
/// everything up to the failure. A file that cannot be written turns a
/// successful run into exit code 3 but never masks a run failure.
fn finish_observability(args: &Args, code: u8, mut events: Vec<Event>, metrics_extra: &str) -> u8 {
    let mut code = code;
    if args.trace.is_some() || args.precision_trace.is_some() || args.estimator_report {
        trace::set_enabled(false);
        events.extend(trace::drain());
        events.sort_by_key(|e| e.ts_ns);
    }
    if let Some(path) = &args.trace {
        let text = match args.trace_format {
            TraceFormat::Jsonl => export::jsonl(&events),
            TraceFormat::Chrome => export::chrome_trace(&events),
        };
        match std::fs::write(path, text) {
            Ok(()) => println!("trace: {} event(s) written to {path}", events.len()),
            Err(e) => {
                eprintln!("hecatec: cannot write {path}: {e}");
                if code == 0 {
                    code = 3;
                }
            }
        }
    }
    if let Some(path) = &args.precision_trace {
        let text = export::precision_jsonl(&events);
        let lines = text.lines().count();
        match std::fs::write(path, text) {
            Ok(()) => println!("precision trace: {lines} record(s) written to {path}"),
            Err(e) => {
                eprintln!("hecatec: cannot write {path}: {e}");
                if code == 0 {
                    code = 3;
                }
            }
        }
    }
    if let Some(path) = &args.metrics {
        let mut text = export::prometheus(hecate::telemetry::metrics::global());
        text.push_str(metrics_extra);
        match std::fs::write(path, text) {
            Ok(()) => println!("metrics written to {path}"),
            Err(e) => {
                eprintln!("hecatec: cannot write {path}: {e}");
                if code == 0 {
                    code = 3;
                }
            }
        }
    }
    code
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hecatec: {e}");
            eprintln!("usage: hecatec <file.heir>... [--scheme S] [--waterline W] [--sf F] [--degree N] [--run] [--quiet] [--strict|--fallback] [--save-plan P] [--load-plan P] [--serve] [--jobs N] [--max-batch N] [--batch-window-us U] [--kernel-jobs N] [--core-budget N|auto] [--no-hoist] [--repeat K] [--trace P] [--trace-format jsonl|chrome] [--metrics P] [--estimator-report] [--audit] [--audit-checkpoints N] [--bench NAME|all] [--precision-trace P] [--max-rms B] [--chaos N] [--chaos-kind fault|latency|panic|mix] [--chaos-latency-us U] [--chaos-fault SPEC] [--deadline-ms D] [--retries R] [--queue-cap N] [--admission-budget-ms B] [--diag-out DIR] [--diag-interval-ms N] [--slow-ms MS] [--slo-target-ms MS] [--no-flight-recorder]");
            return ExitCode::from(2);
        }
    };
    let mut opts = CompileOptions::with_waterline(args.waterline);
    opts.rescale_bits = args.sf;
    opts.degree = args.degree;

    // The estimator report needs the tracer even without --trace (the
    // measured cost table is folded from the trace stream), and the
    // precision trace is derived from the executor's `precision` marks.
    if args.trace.is_some() || args.precision_trace.is_some() || args.estimator_report {
        let _ = trace::drain(); // discard anything recorded before enabling
        trace::set_enabled(true);
    }

    let mut report_events = Vec::new();
    let mut metrics_extra = String::new();
    let code = if args.estimator_report {
        estimator_report(&args, &opts, &mut report_events)
    } else if args.audit {
        audit_mode(&args, &opts)
    } else if args.serve {
        serve(&args, &opts, &mut metrics_extra)
    } else {
        run_single(&args, &opts)
    };
    ExitCode::from(finish_observability(
        &args,
        code,
        report_events,
        &metrics_extra,
    ))
}
