//! Property-based tests for the number-theoretic substrate.

use hecate_math::bigint::UBig;
use hecate_math::modular::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod, ShoupMul};
use hecate_math::ntt::NttTable;
use hecate_math::poly::RnsPoly;
use hecate_math::prime::{generate_ntt_primes, is_prime};
use hecate_math::rns::RnsBasis;
use proptest::prelude::*;

const Q: u64 = 1_099_510_054_913; // 40-bit NTT-friendly prime (2N = 2^15)

fn residue() -> impl Strategy<Value = u64> {
    0..Q
}

proptest! {
    #[test]
    fn modular_field_laws(a in residue(), b in residue(), c in residue()) {
        // Commutativity and associativity.
        prop_assert_eq!(add_mod(a, b, Q), add_mod(b, a, Q));
        prop_assert_eq!(mul_mod(a, b, Q), mul_mod(b, a, Q));
        prop_assert_eq!(
            add_mod(add_mod(a, b, Q), c, Q),
            add_mod(a, add_mod(b, c, Q), Q)
        );
        prop_assert_eq!(
            mul_mod(mul_mod(a, b, Q), c, Q),
            mul_mod(a, mul_mod(b, c, Q), Q)
        );
        // Distributivity.
        prop_assert_eq!(
            mul_mod(a, add_mod(b, c, Q), Q),
            add_mod(mul_mod(a, b, Q), mul_mod(a, c, Q), Q)
        );
        // Subtraction inverts addition.
        prop_assert_eq!(sub_mod(add_mod(a, b, Q), b, Q), a);
    }

    #[test]
    fn inverses_and_powers(a in 1..Q) {
        prop_assert_eq!(mul_mod(a, inv_mod(a, Q), Q), 1);
        // Fermat: a^(Q-1) = 1.
        prop_assert_eq!(pow_mod(a, Q - 1, Q), 1);
    }

    #[test]
    fn shoup_multiplication_agrees(a in residue(), w in residue()) {
        let s = ShoupMul::new(w, Q);
        prop_assert_eq!(s.mul(a, Q), mul_mod(a, w, Q));
    }

    #[test]
    fn generated_primes_are_prime_and_friendly(bits in 24u32..50, count in 1usize..4) {
        let ps = generate_ntt_primes(bits, 256, count, &[]);
        for p in ps {
            prop_assert!(is_prime(p));
            prop_assert_eq!(p % 512, 1);
        }
    }

    #[test]
    fn ntt_roundtrip_random(coeffs in proptest::collection::vec(0..Q, 64)) {
        let t = NttTable::new(Q, 64);
        let mut a = coeffs.clone();
        t.forward(&mut a);
        t.backward(&mut a);
        prop_assert_eq!(a, coeffs);
    }

    #[test]
    fn ntt_multiplication_commutes(
        a in proptest::collection::vec(0u64..1000, 32),
        b in proptest::collection::vec(0u64..1000, 32),
    ) {
        let t = NttTable::new(Q, 32);
        let mul = |x: &[u64], y: &[u64]| {
            let (mut fx, mut fy) = (x.to_vec(), y.to_vec());
            t.forward(&mut fx);
            t.forward(&mut fy);
            let mut fz: Vec<u64> = fx.iter().zip(&fy).map(|(p, q)| mul_mod(*p, *q, Q)).collect();
            t.backward(&mut fz);
            fz
        };
        prop_assert_eq!(mul(&a, &b), mul(&b, &a));
    }

    #[test]
    fn bigint_mul_add_matches_u128(a in any::<u64>(), m in any::<u64>(), v in any::<u64>()) {
        let mut x = UBig::from(a);
        x.mul_u64(m);
        x.add_u64(v);
        let expect = a as u128 * m as u128 + v as u128;
        // Compare via the scaled f64 conversion at scale 0 for values in
        // f64-exact range, else via bit length.
        if expect < (1u128 << 52) {
            prop_assert_eq!(x.to_f64_scaled(0.0) as u128, expect);
        } else {
            let bits = 128 - expect.leading_zeros();
            prop_assert_eq!(x.bit_len(), bits);
        }
    }

    #[test]
    fn bigint_sub_inverts_add(a in any::<u64>(), b in any::<u64>()) {
        let mut x = UBig::from(a);
        x.mul_u64(b); // arbitrary value
        let y = x.clone();
        let mut z = x.clone();
        z.add_assign(&y);
        z.sub_assign(&y);
        prop_assert_eq!(z, x);
    }

    #[test]
    fn crt_reconstruction_roundtrip(v in -(1i64 << 40)..(1i64 << 40)) {
        let basis = RnsBasis::generate(16, 45, 30, 3, 45);
        let rec = basis.reconstructor(3);
        let rs: Vec<u64> = (0..3)
            .map(|i| hecate_math::modular::reduce_i64(v, basis.prime(i)))
            .collect();
        let got = rec.reconstruct_centered_f64(&rs, 0.0);
        prop_assert!((got - v as f64).abs() < 1e-3, "{got} vs {v}");
    }

    #[test]
    fn poly_ring_laws(seed in any::<u64>()) {
        let basis = RnsBasis::generate(32, 40, 30, 2, 40);
        let mut rng = hecate_math::rng::Xoshiro256::seed_from_u64(seed);
        let rand_poly = |rng: &mut hecate_math::rng::Xoshiro256| {
            let coeffs: Vec<i64> = (0..32).map(|_| rng.next_below(2001) as i64 - 1000).collect();
            let mut p = RnsPoly::from_signed_coeffs(&basis, 2, &coeffs);
            p.to_ntt(&basis);
            p
        };
        let a = rand_poly(&mut rng);
        let b = rand_poly(&mut rng);
        let c = rand_poly(&mut rng);
        // (a+b)·c == a·c + b·c
        let mut lhs = a.clone();
        lhs.add_assign(&b, &basis);
        lhs.mul_assign_pointwise(&c, &basis);
        let mut ac = a.clone();
        ac.mul_assign_pointwise(&c, &basis);
        let mut bc = b.clone();
        bc.mul_assign_pointwise(&c, &basis);
        ac.add_assign(&bc, &basis);
        prop_assert_eq!(lhs, ac);
    }

    #[test]
    fn automorphism_is_additive(seed in any::<u64>(), g_pow in 0usize..5) {
        let basis = RnsBasis::generate(32, 40, 30, 1, 40);
        let g = {
            let mut g = 1usize;
            for _ in 0..g_pow {
                g = g * 5 % 64;
            }
            g
        };
        let mut rng = hecate_math::rng::Xoshiro256::seed_from_u64(seed);
        let mk = |rng: &mut hecate_math::rng::Xoshiro256| {
            let coeffs: Vec<i64> = (0..32).map(|_| rng.next_below(100) as i64).collect();
            RnsPoly::from_signed_coeffs(&basis, 1, &coeffs)
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let mut sum = a.clone();
        sum.add_assign(&b, &basis);
        let lhs = sum.automorphism(g, &basis);
        let mut rhs = a.automorphism(g, &basis);
        rhs.add_assign(&b.automorphism(g, &basis), &basis);
        prop_assert_eq!(lhs, rhs);
    }
}
