//! The negacyclic number-theoretic transform over `Z_q[X]/(X^N + 1)`.
//!
//! The forward transform maps coefficient vectors to evaluations at the odd
//! powers of a primitive `2N`-th root of unity `ψ`, so that polynomial
//! multiplication modulo `X^N + 1` becomes a pointwise product. We use the
//! fused Cooley–Tukey / Gentleman–Sande formulation of Longa–Naehrig, with
//! Shoup multiplication for the precomputed twiddle factors.

use crate::modular::{add_mod, inv_mod, pow_mod, sub_mod, ShoupMul};
use crate::prime::primitive_2n_root;

/// Precomputed twiddle tables for the negacyclic NTT modulo one prime.
///
/// One table serves one `(q, N)` pair; the RNS layer keeps one per prime in
/// the basis. Construction is `O(N)` after the root search.
#[derive(Debug, Clone)]
pub struct NttTable {
    q: u64,
    n: usize,
    /// ψ^brv(i) in bit-reversed order, Shoup form (forward twiddles).
    psi_brv: Vec<ShoupMul>,
    /// ψ^{-brv(i)} in bit-reversed order, Shoup form (inverse twiddles).
    inv_psi_brv: Vec<ShoupMul>,
    /// N^{-1} mod q, Shoup form, applied in the last inverse stage.
    n_inv: ShoupMul,
}

fn bit_reverse(i: usize, log_n: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - log_n)
}

impl NttTable {
    /// Builds the twiddle tables for ring degree `n` modulo prime `q`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or `q` is not ≡ 1 mod 2n.
    pub fn new(q: u64, n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2);
        let log_n = n.trailing_zeros();
        let psi = primitive_2n_root(q, n);
        let psi_inv = inv_mod(psi, q);
        let mut pow_f = Vec::with_capacity(n);
        let mut pow_i = Vec::with_capacity(n);
        let (mut f, mut b) = (1u64, 1u64);
        for _ in 0..n {
            pow_f.push(f);
            pow_i.push(b);
            f = crate::modular::mul_mod(f, psi, q);
            b = crate::modular::mul_mod(b, psi_inv, q);
        }
        let psi_brv = (0..n)
            .map(|i| ShoupMul::new(pow_f[bit_reverse(i, log_n)], q))
            .collect();
        let inv_psi_brv = (0..n)
            .map(|i| ShoupMul::new(pow_i[bit_reverse(i, log_n)], q))
            .collect();
        let n_inv = ShoupMul::new(inv_mod(n as u64, q), q);
        NttTable {
            q,
            n,
            psi_brv,
            inv_psi_brv,
            n_inv,
        }
    }

    /// The prime modulus this table was built for.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The ring degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// In-place forward negacyclic NTT (coefficients → evaluations).
    ///
    /// # Panics
    /// Panics if `a.len() != N`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let w = &self.psi_brv[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = w.mul(a[j + t], q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m *= 2;
        }
    }

    /// The Galois automorphism `X ↦ X^g` as a permutation of NTT slots.
    ///
    /// The forward transform evaluates at `ψ^{e_0}, …, ψ^{e_{N-1}}` — the
    /// odd powers of a primitive `2N`-th root in the order fixed by the
    /// butterfly network. Composing with the automorphism re-evaluates at
    /// `ψ^{e_i · g}`, which is just another point of the same set, so in
    /// the evaluation domain the automorphism is a pure (sign-free) index
    /// permutation `π` with
    ///
    /// ```text
    /// forward(automorphism_g(a))[i] = forward(a)[π[i]]
    /// ```
    ///
    /// We recover `π` exactly by transforming `X` (whose evaluations are
    /// the points themselves, pairwise distinct) and looking up each
    /// `g`-th power. The exponent pattern `e_i` depends only on the
    /// butterfly structure, so the permutation is the same for every
    /// prime of a basis — hoisted rotations compute it once and reuse it
    /// across all RNS limbs.
    ///
    /// # Panics
    /// Panics if `g` is even.
    pub fn galois_permutation(&self, g: usize) -> Vec<usize> {
        assert_eq!(g % 2, 1, "Galois element must be odd");
        let g = g % (2 * self.n);
        let mut points = vec![0u64; self.n];
        points[1] = 1; // the polynomial X
        self.forward(&mut points);
        let index_of: std::collections::HashMap<u64, usize> =
            points.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        points
            .iter()
            .map(|&p| index_of[&pow_mod(p, g as u64, self.q)])
            .collect()
    }

    /// In-place inverse negacyclic NTT (evaluations → coefficients).
    ///
    /// # Panics
    /// Panics if `a.len() != N`.
    pub fn backward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let w = &self.inv_psi_brv[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = w.mul(sub_mod(u, v, q), q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::{mul_mod, reduce_i64};
    use crate::prime::generate_ntt_primes;
    use crate::rng::Xoshiro256;

    fn table(n: usize) -> NttTable {
        let q = generate_ntt_primes(40, n, 1, &[])[0];
        NttTable::new(q, n)
    }

    /// Schoolbook negacyclic multiplication for cross-checking.
    fn negacyclic_mul_ref(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for i in 0..n {
            for j in 0..n {
                let prod = mul_mod(a[i], b[j], q);
                let k = i + j;
                if k < n {
                    out[k] = add_mod(out[k], prod, q);
                } else {
                    out[k - n] = sub_mod(out[k - n], prod, q);
                }
            }
        }
        out
    }

    #[test]
    fn forward_backward_roundtrip() {
        for n in [4usize, 64, 1024] {
            let t = table(n);
            let mut rng = Xoshiro256::seed_from_u64(7);
            let orig: Vec<u64> = (0..n).map(|_| rng.next_u64() % t.modulus()).collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "transform should not be identity");
            t.backward(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn pointwise_product_is_negacyclic_convolution() {
        let n = 64;
        let t = table(n);
        let q = t.modulus();
        let mut rng = Xoshiro256::seed_from_u64(11);
        let a: Vec<u64> = (0..n).map(|_| rng.next_u64() % q).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.next_u64() % q).collect();
        let expected = negacyclic_mul_ref(&a, &b, q);

        let (mut fa, mut fb) = (a.clone(), b.clone());
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut fc: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(x, y)| mul_mod(*x, *y, q))
            .collect();
        t.backward(&mut fc);
        assert_eq!(fc, expected);
    }

    #[test]
    fn x_times_x_pow_n_minus_1_wraps_negatively() {
        // (X) · (X^{N-1}) = X^N ≡ -1 in the negacyclic ring.
        let n = 16;
        let t = table(n);
        let q = t.modulus();
        let mut a = vec![0u64; n];
        a[1] = 1;
        let mut b = vec![0u64; n];
        b[n - 1] = 1;
        t.forward(&mut a);
        t.forward(&mut b);
        let mut c: Vec<u64> = a.iter().zip(&b).map(|(x, y)| mul_mod(*x, *y, q)).collect();
        t.backward(&mut c);
        let mut expected = vec![0u64; n];
        expected[0] = reduce_i64(-1, q);
        assert_eq!(c, expected);
    }

    /// Coefficient-domain reference automorphism with sign on wraparound.
    fn automorphism_ref(a: &[u64], g: usize, q: u64) -> Vec<u64> {
        let n = a.len();
        let two_n = 2 * n;
        let mut out = vec![0u64; n];
        for (j, &v) in a.iter().enumerate() {
            let idx = (j * g) % two_n;
            if idx < n {
                out[idx] = v;
            } else {
                out[idx - n] = if v == 0 { 0 } else { q - v };
            }
        }
        out
    }

    #[test]
    fn galois_permutation_matches_coefficient_automorphism() {
        let n = 64;
        let t = table(n);
        let q = t.modulus();
        let mut rng = Xoshiro256::seed_from_u64(17);
        for g in [1usize, 3, 5, 25, 2 * n - 1, 5 * 5 * 5 % (2 * n)] {
            let perm = t.galois_permutation(g);
            let a: Vec<u64> = (0..n).map(|_| rng.next_u64() % q).collect();
            let mut via_coeff = automorphism_ref(&a, g, q);
            t.forward(&mut via_coeff);
            let mut fa = a.clone();
            t.forward(&mut fa);
            let via_perm: Vec<u64> = (0..n).map(|i| fa[perm[i]]).collect();
            assert_eq!(via_perm, via_coeff, "g = {g}");
        }
    }

    #[test]
    fn galois_permutation_is_prime_independent() {
        let n = 32;
        let primes = generate_ntt_primes(40, n, 3, &[]);
        let tables: Vec<NttTable> = primes.iter().map(|&q| NttTable::new(q, n)).collect();
        for g in [3usize, 5, 2 * n - 1] {
            let p0 = tables[0].galois_permutation(g);
            for t in &tables[1..] {
                assert_eq!(t.galois_permutation(g), p0, "g = {g}");
            }
        }
    }

    #[test]
    fn transform_is_linear() {
        let n = 32;
        let t = table(n);
        let q = t.modulus();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let a: Vec<u64> = (0..n).map(|_| rng.next_u64() % q).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.next_u64() % q).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(x, y)| add_mod(*x, *y, q)).collect();
        let (mut fa, mut fb, mut fs) = (a, b, sum);
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        let fab: Vec<u64> = fa
            .iter()
            .zip(&fb)
            .map(|(x, y)| add_mod(*x, *y, q))
            .collect();
        assert_eq!(fs, fab);
    }
}
