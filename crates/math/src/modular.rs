//! Arithmetic modulo word-sized primes.
//!
//! All moduli used by the CKKS layer are primes below 2^62, so sums of two
//! residues never overflow a `u64` and products fit in a `u128`. The
//! functions here are branch-light and are the hot path of the NTT; the
//! [`ShoupMul`] helper precomputes a quotient so that repeated
//! multiplications by the same constant avoid the `u128` division.

/// Adds two residues modulo `q`.
///
/// Both inputs must already be reduced (`< q`); the result is reduced.
///
/// # Example
/// ```
/// use hecate_math::modular::add_mod;
/// assert_eq!(add_mod(5, 6, 7), 4);
/// ```
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`.
///
/// Both inputs must already be reduced (`< q`); the result is reduced.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q);
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Negates a residue modulo `q`.
#[inline]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    debug_assert!(a < q);
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Multiplies two residues modulo `q` via 128-bit widening.
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Raises `base` to `exp` modulo `q` by square-and-multiply.
///
/// # Example
/// ```
/// use hecate_math::modular::pow_mod;
/// assert_eq!(pow_mod(3, 4, 7), 4); // 81 mod 7
/// ```
pub fn pow_mod(base: u64, mut exp: u64, q: u64) -> u64 {
    let mut acc: u64 = 1 % q;
    let mut b = base % q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, b, q);
        }
        b = mul_mod(b, b, q);
        exp >>= 1;
    }
    acc
}

/// Computes the multiplicative inverse of `a` modulo the prime `q` using
/// Fermat's little theorem.
///
/// # Panics
/// Panics if `a` is zero modulo `q` (no inverse exists).
pub fn inv_mod(a: u64, q: u64) -> u64 {
    assert!(!a.is_multiple_of(q), "zero has no modular inverse");
    pow_mod(a, q - 2, q)
}

/// Reduces a signed 64-bit integer into `[0, q)`.
#[inline]
pub fn reduce_i64(v: i64, q: u64) -> u64 {
    let r = v % q as i64;
    if r < 0 {
        (r + q as i64) as u64
    } else {
        r as u64
    }
}

/// Reduces a signed 128-bit integer into `[0, q)`.
#[inline]
pub fn reduce_i128(v: i128, q: u64) -> u64 {
    let r = v % q as i128;
    if r < 0 {
        (r + q as i128) as u64
    } else {
        r as u64
    }
}

/// Precomputed Shoup representation of a fixed multiplicand.
///
/// For a constant `w < q`, `shoup = floor(w · 2^64 / q)` lets
/// [`ShoupMul::mul`] compute `a·w mod q` with two multiplies and no 128-bit
/// division. The result may be in `[0, 2q)`; we do the final conditional
/// subtraction eagerly so callers always see reduced values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    /// The multiplicand `w`, reduced modulo `q`.
    pub value: u64,
    /// `floor(w · 2^64 / q)`.
    pub quotient: u64,
}

impl ShoupMul {
    /// Precomputes the Shoup quotient for multiplicand `w` modulo `q`.
    pub fn new(w: u64, q: u64) -> Self {
        debug_assert!(w < q);
        let quotient = ((w as u128) << 64) / q as u128;
        ShoupMul {
            value: w,
            quotient: quotient as u64,
        }
    }

    /// Computes `a · w mod q`.
    #[inline]
    pub fn mul(&self, a: u64, q: u64) -> u64 {
        let hi = ((self.quotient as u128 * a as u128) >> 64) as u64;
        let r = (self.value.wrapping_mul(a)).wrapping_sub(hi.wrapping_mul(q));
        if r >= q {
            r - q
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 1_099_510_054_913; // 40-bit prime ≡ 1 mod 2^15

    #[test]
    fn add_wraps() {
        assert_eq!(add_mod(Q - 1, 1, Q), 0);
        assert_eq!(add_mod(Q - 1, Q - 1, Q), Q - 2);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(sub_mod(0, 1, Q), Q - 1);
        assert_eq!(sub_mod(5, 5, Q), 0);
    }

    #[test]
    fn neg_of_zero_is_zero() {
        assert_eq!(neg_mod(0, Q), 0);
        assert_eq!(neg_mod(1, Q), Q - 1);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let mut acc = 1u64;
        for _ in 0..13 {
            acc = mul_mod(acc, 12345, Q);
        }
        assert_eq!(pow_mod(12345, 13, Q), acc);
    }

    #[test]
    fn inverse_is_inverse() {
        for a in [1u64, 2, 3, 12345, Q - 1] {
            assert_eq!(mul_mod(a, inv_mod(a, Q), Q), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no modular inverse")]
    fn inverse_of_zero_panics() {
        inv_mod(0, Q);
    }

    #[test]
    fn reduce_signed() {
        assert_eq!(reduce_i64(-1, Q), Q - 1);
        assert_eq!(reduce_i64(1, Q), 1);
        assert_eq!(reduce_i128(-(Q as i128) - 1, Q), Q - 1);
    }

    #[test]
    fn shoup_matches_mul_mod() {
        for w in [0u64, 1, 2, 999_999_937, Q - 1] {
            let s = ShoupMul::new(w, Q);
            for a in [0u64, 1, 7, 123_456_789, Q - 1] {
                assert_eq!(s.mul(a, Q), mul_mod(a, w, Q), "w={w} a={a}");
            }
        }
    }
}
