//! Number-theoretic substrate for the HECATE RNS-CKKS stack.
//!
//! This crate provides the arithmetic machinery that the `hecate-ckks`
//! scheme implementation is built on:
//!
//! - [`modular`] — arithmetic modulo word-sized primes, including Shoup
//!   multiplication for hot loops with a fixed multiplicand;
//! - [`prime`] — Miller–Rabin primality testing and generation of
//!   NTT-friendly primes `p ≡ 1 (mod 2N)`;
//! - [`ntt`] — the negacyclic number-theoretic transform over
//!   `Z_q[X]/(X^N + 1)`;
//! - [`bigint`] — a minimal unsigned big integer used for exact CRT
//!   reconstruction when decoding;
//! - [`fft`] — a complex FFT used by the CKKS canonical embedding;
//! - [`rng`] — deterministic, seedable pseudo-random generators and the
//!   samplers (uniform, ternary, centered binomial) required by RLWE;
//! - [`rns`] — residue-number-system bases with the precomputations for
//!   rescaling and CRT reconstruction;
//! - [`poly`] — polynomials in RNS representation with NTT-domain tracking;
//! - [`par`] — striping over independent RNS limbs, dispatched to the
//!   persistent kernel pool;
//! - [`kernel_pool`] — long-lived kernel worker threads with warm
//!   thread-local scratch, claimed per call and bounded by a
//!   process-wide core budget;
//! - [`scratch`] — a thread-local pool of scratch residue buffers.
//!
//! Everything here is deterministic and has no dependencies, which keeps the
//! compiler and backend layers reproducible.
//!
//! # Example
//!
//! ```
//! use hecate_math::prime::generate_ntt_primes;
//! use hecate_math::ntt::NttTable;
//!
//! // A 40-bit NTT-friendly prime for ring degree 1024.
//! let p = generate_ntt_primes(40, 1024, 1, &[])[0];
//! assert_eq!(p % 2048, 1);
//! let table = NttTable::new(p, 1024);
//! assert_eq!(table.degree(), 1024);
//! ```

// Unsafe is denied rather than forbidden: the one sanctioned exception
// is `kernel_pool`, whose persistent worker threads require erasing the
// lifetime of a scoped borrow (the same technique scoped thread pools
// like rayon use internally). Every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bigint;
pub mod fft;
#[allow(unsafe_code)]
pub mod kernel_pool;
pub mod modular;
pub mod ntt;
pub mod par;
pub mod poly;
pub mod prime;
pub mod rng;
pub mod rns;
pub mod scratch;
