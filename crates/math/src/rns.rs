//! Residue number system (RNS) bases and their precomputations.
//!
//! An RNS-CKKS modulus chain is a list of NTT-friendly primes
//! `q_0, q_1, …, q_L` plus one *special* prime `P` used only during key
//! switching. A ciphertext at rescaling level `k` lives modulo the prefix
//! product `Q_k = q_0·…·q_{L−k}`; `rescale` drops (and divides by) the last
//! active prime, `modswitch` merely drops it.
//!
//! [`RnsBasis`] owns the primes, their NTT tables, and the inverse tables
//! needed for rescaling and key-switch mod-down. [`CrtReconstructor`]
//! provides exact reconstruction of centered values for decoding.

use crate::bigint::UBig;
use crate::modular::{inv_mod, mul_mod, sub_mod};
use crate::ntt::NttTable;
use crate::prime::generate_ntt_primes;

/// The primes, NTT tables, and inverse tables of one RNS modulus chain.
#[derive(Debug)]
pub struct RnsBasis {
    degree: usize,
    primes: Vec<u64>,
    special: u64,
    ntt: Vec<NttTable>,
    special_ntt: NttTable,
    /// `inv_last[c-1][i]` = `q_{c-1}^{-1} mod q_i` for `i < c-1`; used by
    /// rescaling from prefix length `c` to `c-1`.
    inv_last: Vec<Vec<u64>>,
    /// `P^{-1} mod q_i`, used by key-switch mod-down.
    inv_special: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis from an explicit prime chain and special prime.
    ///
    /// # Panics
    /// Panics if primes are not distinct or not ≡ 1 mod 2·degree.
    pub fn from_primes(degree: usize, primes: Vec<u64>, special: u64) -> Self {
        assert!(!primes.is_empty(), "modulus chain must be non-empty");
        let mut all = primes.clone();
        all.push(special);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "primes must be distinct");
        let ntt: Vec<NttTable> = primes.iter().map(|&q| NttTable::new(q, degree)).collect();
        let special_ntt = NttTable::new(special, degree);
        let inv_last = (0..primes.len())
            .map(|last| {
                (0..last)
                    .map(|i| inv_mod(primes[last] % primes[i], primes[i]))
                    .collect()
            })
            .collect();
        let inv_special = primes.iter().map(|&q| inv_mod(special % q, q)).collect();
        RnsBasis {
            degree,
            primes,
            special,
            ntt,
            special_ntt,
            inv_last,
            inv_special,
        }
    }

    /// Generates a basis with `chain_len` primes of `prime_bits` bits each
    /// for ring degree `degree`, with the first prime of `first_prime_bits`
    /// bits and the special prime of `special_bits` bits.
    ///
    /// The first prime carries the final message (it needs headroom above
    /// the output scale); the rest are rescale primes sized to the rescale
    /// factor `S_f`.
    pub fn generate(
        degree: usize,
        first_prime_bits: u32,
        prime_bits: u32,
        chain_len: usize,
        special_bits: u32,
    ) -> Self {
        assert!(chain_len >= 1);
        let mut primes = generate_ntt_primes(first_prime_bits, degree, 1, &[]);
        if chain_len > 1 {
            let rest = generate_ntt_primes(prime_bits, degree, chain_len - 1, &primes);
            primes.extend(rest);
        }
        let special = generate_ntt_primes(special_bits, degree, 1, &primes)[0];
        Self::from_primes(degree, primes, special)
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of primes in the chain (`L + 1`).
    pub fn chain_len(&self) -> usize {
        self.primes.len()
    }

    /// The `i`-th chain prime.
    pub fn prime(&self, i: usize) -> u64 {
        self.primes[i]
    }

    /// All chain primes.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// The special (key-switching) prime `P`.
    pub fn special_prime(&self) -> u64 {
        self.special
    }

    /// NTT table for the `i`-th chain prime.
    pub fn ntt(&self, i: usize) -> &NttTable {
        &self.ntt[i]
    }

    /// NTT table for the special prime.
    pub fn special_ntt(&self) -> &NttTable {
        &self.special_ntt
    }

    /// `q_{c-1}^{-1} mod q_i` for rescaling away the last prime of a
    /// `c`-prime prefix.
    pub fn inv_last_prime(&self, c: usize, i: usize) -> u64 {
        self.inv_last[c - 1][i]
    }

    /// `P^{-1} mod q_i` for key-switch mod-down.
    pub fn inv_special(&self, i: usize) -> u64 {
        self.inv_special[i]
    }

    /// log2 of the prefix product `Q_c` (sum of prime bit sizes).
    pub fn prefix_log2(&self, c: usize) -> f64 {
        self.primes[..c].iter().map(|&q| (q as f64).log2()).sum()
    }

    /// The CRT idempotent factor `Ẽ_j = (Q_c/q_j)·[(Q_c/q_j)^{-1}]_{q_j}`
    /// reduced modulo `m`, for the prefix of length `c`.
    ///
    /// `Ẽ_j ≡ 1 (mod q_j)` and `≡ 0 (mod q_i)` for `i ≠ j`, so
    /// `Σ_j [x]_{q_j}·Ẽ_j ≡ x (mod Q_c)`. Key generation embeds these
    /// factors into the per-digit key-switching keys.
    pub fn crt_idempotent_mod(&self, c: usize, j: usize, m: u64) -> u64 {
        assert!(j < c && c <= self.primes.len());
        // t_j = (Q_c/q_j)^{-1} mod q_j
        let qj = self.primes[j];
        let mut prod_mod_qj = 1u64;
        let mut prod_mod_m = 1u64;
        for (l, &ql) in self.primes[..c].iter().enumerate() {
            if l == j {
                continue;
            }
            prod_mod_qj = mul_mod(prod_mod_qj, ql % qj, qj);
            prod_mod_m = mul_mod(prod_mod_m, ql % m, m);
        }
        let t_j = inv_mod(prod_mod_qj, qj);
        mul_mod(prod_mod_m, t_j % m, m)
    }

    /// Builds an exact CRT reconstructor for the prefix of length `c`.
    pub fn reconstructor(&self, c: usize) -> CrtReconstructor {
        CrtReconstructor::new(&self.primes[..c])
    }

    /// Centers a residue `x mod q` into `(-q/2, q/2]` as a signed integer.
    #[inline]
    pub fn center(x: u64, q: u64) -> i64 {
        if x > q / 2 {
            -((q - x) as i64)
        } else {
            x as i64
        }
    }

    /// Computes `(x - v) · q_drop^{-1} mod q_i` where `v` is the centered
    /// lift of the dropped prime's residue — the per-coefficient step of
    /// RNS rescaling and mod-down.
    #[inline]
    pub fn div_round_step(x: u64, lifted: i64, inv_drop: u64, q: u64) -> u64 {
        let l = crate::modular::reduce_i64(lifted, q);
        mul_mod(sub_mod(x, l, q), inv_drop, q)
    }
}

/// Exact centered CRT reconstruction over a prime prefix.
///
/// Used by the decoder: it maps a residue vector back to the centered
/// integer value as a scaled `f64`. Exactness matters because `Q` can be
/// hundreds of bits — see [`UBig`].
#[derive(Debug)]
pub struct CrtReconstructor {
    primes: Vec<u64>,
    /// `Q = Π q_i`.
    q_big: UBig,
    /// `Q/2`, for centering.
    half_q: UBig,
    /// Punctured products `Q/q_i`.
    punctured: Vec<UBig>,
    /// `[(Q/q_i)^{-1}]_{q_i}`.
    inv_punctured: Vec<u64>,
}

impl CrtReconstructor {
    /// Builds the reconstruction tables for the given primes.
    pub fn new(primes: &[u64]) -> Self {
        assert!(!primes.is_empty());
        let mut q_big = UBig::from(1u64);
        for &q in primes {
            q_big.mul_u64(q);
        }
        let mut half_q = q_big.clone();
        half_q.shr1();
        let punctured: Vec<UBig> = (0..primes.len())
            .map(|i| {
                let mut p = UBig::from(1u64);
                for (l, &q) in primes.iter().enumerate() {
                    if l != i {
                        p.mul_u64(q);
                    }
                }
                p
            })
            .collect();
        let inv_punctured = (0..primes.len())
            .map(|i| {
                let qi = primes[i];
                let mut prod = 1u64;
                for (l, &q) in primes.iter().enumerate() {
                    if l != i {
                        prod = mul_mod(prod, q % qi, qi);
                    }
                }
                inv_mod(prod, qi)
            })
            .collect();
        CrtReconstructor {
            primes: primes.to_vec(),
            q_big,
            half_q,
            punctured,
            inv_punctured,
        }
    }

    /// Reconstructs the centered value of the residue vector `rs`
    /// (one residue per prime) and returns it divided by `2^scale_bits`.
    ///
    /// # Panics
    /// Panics if `rs.len()` differs from the number of primes.
    pub fn reconstruct_centered_f64(&self, rs: &[u64], scale_bits: f64) -> f64 {
        assert_eq!(rs.len(), self.primes.len());
        // x = Σ_i [r_i · inv_i]_{q_i} · (Q/q_i)  (mod Q), accumulated exactly.
        let mut acc = UBig::zero();
        for (i, &r) in rs.iter().enumerate() {
            let coef = mul_mod(r % self.primes[i], self.inv_punctured[i], self.primes[i]);
            let mut term = self.punctured[i].clone();
            term.mul_u64(coef);
            acc.add_assign(&term);
        }
        acc.rem_assign_small(&self.q_big);
        // Center into (-Q/2, Q/2].
        if acc.cmp_big(&self.half_q) == std::cmp::Ordering::Greater {
            let mut neg = self.q_big.clone();
            neg.sub_assign(&acc);
            -neg.to_f64_scaled(scale_bits)
        } else {
            acc.to_f64_scaled(scale_bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::reduce_i64;

    fn basis() -> RnsBasis {
        RnsBasis::generate(64, 40, 30, 4, 40)
    }

    #[test]
    fn generate_produces_valid_chain() {
        let b = basis();
        assert_eq!(b.chain_len(), 4);
        assert_eq!(b.degree(), 64);
        for i in 0..4 {
            assert_eq!(b.prime(i) % 128, 1);
        }
        assert_eq!(b.special_prime() % 128, 1);
        // First prime ≈ 40 bits, rescale primes ≈ 30 bits.
        assert!((b.prime(0) as f64).log2().round() as i32 == 40);
        assert!((b.prime(1) as f64).log2().round() as i32 == 30);
    }

    #[test]
    fn prefix_log2_sums_bits() {
        let b = basis();
        let expect: f64 = (0..3).map(|i| (b.prime(i) as f64).log2()).sum();
        assert!((b.prefix_log2(3) - expect).abs() < 1e-9);
    }

    #[test]
    fn inverse_tables_are_inverses() {
        let b = basis();
        for c in 2..=4 {
            for i in 0..c - 1 {
                let got = b.inv_last_prime(c, i);
                assert_eq!(mul_mod(got, b.prime(c - 1) % b.prime(i), b.prime(i)), 1);
            }
        }
        for i in 0..4 {
            assert_eq!(
                mul_mod(b.inv_special(i), b.special_prime() % b.prime(i), b.prime(i)),
                1
            );
        }
    }

    #[test]
    fn crt_idempotents_behave() {
        let b = basis();
        let c = 3;
        for j in 0..c {
            for i in 0..c {
                let v = b.crt_idempotent_mod(c, j, b.prime(i));
                assert_eq!(v, if i == j { 1 } else { 0 }, "E_{j} mod q_{i}");
            }
        }
    }

    #[test]
    fn crt_reconstruction_roundtrip() {
        let b = basis();
        let rec = b.reconstructor(3);
        for v in [0i64, 1, -1, 123_456_789, -987_654_321] {
            let rs: Vec<u64> = (0..3).map(|i| reduce_i64(v, b.prime(i))).collect();
            let got = rec.reconstruct_centered_f64(&rs, 0.0);
            assert!((got - v as f64).abs() < 1e-6, "v={v} got={got}");
        }
    }

    #[test]
    fn crt_reconstruction_scaled() {
        let b = basis();
        let rec = b.reconstructor(4);
        // Encode 3.25 at scale 2^20.
        let v = (3.25f64 * (1u64 << 20) as f64).round() as i64;
        let rs: Vec<u64> = (0..4).map(|i| reduce_i64(v, b.prime(i))).collect();
        let got = rec.reconstruct_centered_f64(&rs, 20.0);
        assert!((got - 3.25).abs() < 1e-6);
    }

    #[test]
    fn center_splits_at_half() {
        let q = 101u64;
        assert_eq!(RnsBasis::center(0, q), 0);
        assert_eq!(RnsBasis::center(50, q), 50);
        assert_eq!(RnsBasis::center(51, q), -50);
        assert_eq!(RnsBasis::center(100, q), -1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_primes_rejected() {
        let p = generate_ntt_primes(30, 64, 1, &[])[0];
        RnsBasis::from_primes(64, vec![p, p], generate_ntt_primes(31, 64, 1, &[p])[0]);
    }
}
