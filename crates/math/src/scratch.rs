//! A thread-local pool of scratch `Vec<u64>` buffers.
//!
//! Key switching and hoisted rotation decomposition churn through
//! short-lived residue-sized buffers (one per digit × extended modulus).
//! Allocating them per op puts the allocator on the hot path; instead,
//! long-lived executor threads recycle buffers here. The pool is
//! thread-local (no locks, no cross-thread traffic) and bounded, so a
//! burst of large ops cannot pin memory forever. Buffers handed out are
//! always zeroed, so pooling is invisible to the arithmetic.

use std::cell::RefCell;

/// Upper bound on pooled buffers per thread; beyond this, `recycle`
/// simply drops. 64 covers digits × extended-moduli for the deepest
/// chain used in tests and benchmarks.
const MAX_POOLED: usize = 64;

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a zeroed buffer of exactly `len` elements from the pool
/// (allocating only when the pool is empty).
pub fn take_zeroed(len: usize) -> Vec<u64> {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0);
    buf
}

/// Returns a buffer to the current thread's pool for reuse.
pub fn recycle(buf: Vec<u64>) {
    if buf.capacity() == 0 {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_come_back_zeroed_and_reused() {
        let mut a = take_zeroed(8);
        assert_eq!(a, vec![0u64; 8]);
        a.iter_mut().for_each(|x| *x = u64::MAX);
        let cap = a.capacity();
        recycle(a);
        let b = take_zeroed(4);
        assert_eq!(b, vec![0u64; 4]);
        assert!(b.capacity() >= cap.min(4), "reuses the recycled allocation");
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..(MAX_POOLED + 16) {
            recycle(vec![0u64; 4]);
        }
        let pooled = POOL.with(|p| p.borrow().len());
        assert!(pooled <= MAX_POOLED);
    }
}
