//! A persistent pool of kernel worker threads for per-limb striping.
//!
//! [`crate::par::for_each_limb`] used to spawn fresh scoped threads on
//! every call. That made each NTT or key-switch pay thread creation and
//! teardown, and — worse — every spawn landed on a cold thread whose
//! `thread_local!` scratch pool ([`crate::scratch`]) was empty, so the
//! allocator sat on the hot path of every parallel kernel invocation.
//! This module replaces the per-call spawns with a small set of
//! long-lived kernel workers that park on a condvar between stripes:
//! their scratch buffers stay warm across calls, and dispatching a
//! stripe costs one mutex hand-off instead of a thread spawn.
//!
//! # Claiming, not queueing
//!
//! A caller *claims* idle workers for the stripes it wants to offload;
//! stripes that find no idle worker run inline on the caller's thread.
//! Claiming never blocks and never queues, which gives two properties
//! the serving runtime depends on:
//!
//! - **No oversubscription.** The pool holds at most
//!   [`max_threads`] workers process-wide, no matter how many request
//!   workers ask for per-limb parallelism at once. When every kernel
//!   worker is busy, additional requests simply run their limbs inline
//!   — degrading to exactly the serial behavior — instead of spawning
//!   `8×N` competing threads.
//! - **No deadlock.** A kernel worker never calls back into the pool
//!   (the per-limb closures are leaf kernels), and callers fall back to
//!   inline execution rather than waiting for a free worker.
//!
//! The ceiling is set by [`set_max_threads`] — the serving runtime's
//! core-budget policy points it at `budget − request workers` — and
//! defaults to `available_parallelism() − 1` (the caller's thread works
//! stripe 0 itself).
//!
//! # Bit-identity
//!
//! Work assignment only decides *where* a stripe executes, never *what*
//! it computes: each stripe covers a fixed contiguous index range and
//! the per-item closure is a pure function of the item and its index.
//! Results are therefore bit-identical whether a stripe runs on a pool
//! worker or inline, at every ceiling and every job count — the
//! invariant the `perf_smoke` f64::to_bits gate checks end to end.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool workers, far above any sane core budget; the
/// effective ceiling is the minimum of this and [`set_max_threads`].
const HARD_CAP: usize = 64;

/// Runtime-adjustable ceiling on claimable workers ([`set_max_threads`]).
/// `usize::MAX` means "not configured": fall back to the default of
/// `available_parallelism() − 1`.
static CEILING: AtomicUsize = AtomicUsize::new(usize::MAX);

static POOL: OnceLock<KernelPool> = OnceLock::new();

/// Caps how many kernel workers may run concurrently, process-wide.
/// The serving runtime's core-budget policy calls this with the cores
/// left over after request-level workers are provisioned; `0` forces
/// every kernel inline (serial per-limb execution).
///
/// Returns the previous setting (`None` when the ceiling was still
/// unconfigured) so callers that scope a budget to their own lifetime —
/// the serving runtime restores it on shutdown — can hand it back to
/// [`restore_max_threads`] instead of leaking their cap to unrelated
/// later users of the pool.
pub fn set_max_threads(n: usize) -> Option<usize> {
    let prev = CEILING.swap(n.min(HARD_CAP), Ordering::Relaxed);
    (prev != usize::MAX).then_some(prev)
}

/// Restores a ceiling previously returned by [`set_max_threads`];
/// `None` reverts to the unconfigured default of
/// `available_parallelism() − 1`.
pub fn restore_max_threads(prev: Option<usize>) {
    CEILING.store(prev.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// The current ceiling on concurrently claimable kernel workers.
pub fn max_threads() -> usize {
    let ceiling = CEILING.load(Ordering::Relaxed);
    if ceiling == usize::MAX {
        std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(0)
            .min(HARD_CAP)
    } else {
        ceiling
    }
}

/// Stripes executed on claimed pool workers since process start.
static POOL_STRIPES: AtomicU64 = AtomicU64::new(0);
/// Stripes that found no idle worker and ran inline on the caller.
static INLINE_STRIPES: AtomicU64 = AtomicU64::new(0);

/// Cumulative stripe counts by where they executed. The inline share
/// (`inline / (pool + inline)`) is the pool-saturation signal: near
/// zero means callers are getting the parallelism they ask for, near
/// one means the ceiling (or claim contention) is forcing serial
/// fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeCounts {
    /// Stripes offloaded to claimed pool workers.
    pub pool: u64,
    /// Stripes run inline on the calling thread (including stripe 0,
    /// which the caller always works itself).
    pub inline: u64,
}

/// The cumulative [`StripeCounts`] since process start.
pub fn stripe_counts() -> StripeCounts {
    StripeCounts {
        pool: POOL_STRIPES.load(Ordering::Relaxed),
        inline: INLINE_STRIPES.load(Ordering::Relaxed),
    }
}

/// Kernel worker threads actually spawned so far (they are created
/// lazily, on first claim, and then live for the process lifetime).
pub fn spawned_threads() -> usize {
    POOL.get().map_or(0, |p| {
        p.slots
            .iter()
            .filter(|s| s.spawned.load(Ordering::Relaxed))
            .count()
    })
}

/// One stripe hand-off to a claimed worker. The references are
/// lifetime-erased to `'static`; see the safety contract on
/// [`run_striped`] for why they cannot dangle.
struct Task {
    run: &'static (dyn Fn(usize) + Sync),
    stripe: usize,
    latch: &'static Latch,
}

/// Counts outstanding stripes; the dispatching caller blocks in
/// [`Latch::wait`] until every claimed worker has called
/// [`Latch::complete`]. A worker whose stripe panicked hands the caught
/// payload to `complete`, and `wait` returns the first such payload so
/// the dispatching caller can re-raise it on its own thread.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.panic.is_none() {
            state.panic = panic;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.remaining > 0 {
            state = self.done.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        state.panic.take()
    }
}

/// One pool worker: a claim flag, a single-task mailbox, and (once
/// claimed for the first time) a parked thread watching the mailbox.
struct WorkerSlot {
    /// Exclusive ownership flag; claimed with a CAS, released by the
    /// worker after it finishes a stripe. A slot whose thread failed to
    /// spawn stays claimed forever (see [`WorkerSlot::ensure_spawned`]).
    claimed: AtomicBool,
    /// Whether this slot's thread has been started.
    spawned: AtomicBool,
    mailbox: Mutex<Option<Task>>,
    ready: Condvar,
}

impl WorkerSlot {
    fn new() -> WorkerSlot {
        WorkerSlot {
            claimed: AtomicBool::new(false),
            spawned: AtomicBool::new(false),
            mailbox: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn try_claim(&self) -> bool {
        self.claimed
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Starts this slot's thread on first claim. On spawn failure the
    /// slot is abandoned: `claimed` stays `true` forever, so no caller
    /// can ever enqueue into a mailbox nobody is watching, and the
    /// caller that hit the failure runs its stripe inline.
    fn ensure_spawned(self: &Arc<WorkerSlot>, index: usize) -> bool {
        if self.spawned.load(Ordering::Acquire) {
            return true;
        }
        let slot = self.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("hecate-kernel-{index}"))
            .spawn(move || slot.work_loop())
            .is_ok();
        if spawned {
            self.spawned.store(true, Ordering::Release);
        }
        spawned
    }

    fn submit(&self, task: Task) {
        let mut mailbox = self.mailbox.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(mailbox.is_none(), "claimed slot mailbox must be empty");
        *mailbox = Some(task);
        drop(mailbox);
        self.ready.notify_one();
    }

    fn work_loop(&self) {
        loop {
            let task = {
                let mut mailbox = self.mailbox.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(task) = mailbox.take() {
                        break task;
                    }
                    mailbox = self.ready.wait(mailbox).unwrap_or_else(|e| e.into_inner());
                }
            };
            // A panicking stripe must not kill this thread: the caller
            // is blocked in `Latch::wait` and would hang forever, and
            // the slot would stay claimed. Catch the payload and ship
            // it through the latch for the caller to re-raise.
            let panic = catch_unwind(AssertUnwindSafe(|| (task.run)(task.stripe))).err();
            // Ordering matters: `complete` is the last touch of the
            // caller's stack frame (the closure and latch live there),
            // and only after it may the slot be reclaimed for a task
            // with a fresh frame.
            task.latch.complete(panic);
            self.claimed.store(false, Ordering::Release);
        }
    }
}

struct KernelPool {
    slots: Vec<Arc<WorkerSlot>>,
}

fn pool() -> &'static KernelPool {
    POOL.get_or_init(|| KernelPool {
        slots: (0..HARD_CAP).map(|_| Arc::new(WorkerSlot::new())).collect(),
    })
}

/// Runs `run(stripe)` for every stripe in `0..nstripes`, offloading as
/// many stripes as idle pool workers allow (bounded by the ceiling) and
/// executing the rest — always including stripe 0 — on the caller's
/// thread. Returns only after every stripe has completed.
///
/// A panic in any stripe — inline or on a pool worker — propagates to
/// the caller *after* all other stripes have finished, so the pool is
/// left fully reusable (no claimed slots, no dead threads) and the
/// serving layer's per-request `catch_unwind` sees kernel panics just
/// as it did under the old scoped-thread implementation.
///
/// # Safety contract (met internally)
///
/// The closure and latch references handed to workers are
/// lifetime-erased to `'static`, but cannot dangle: every claimed
/// worker's final access to them is its `latch.complete()` call, and
/// this function never returns — not even by unwinding — before a
/// `latch.wait()` has observed every completion. Caller-side stripes
/// run under `catch_unwind`, and the `WaitOnDrop` guard covers any
/// residual unwind between submission and the normal wait, so the
/// borrow strictly outlives all worker access on every path.
pub(crate) fn run_striped(nstripes: usize, run: &(dyn Fn(usize) + Sync)) {
    debug_assert!(nstripes >= 1);
    let ceiling = max_threads();
    let want = (nstripes - 1).min(ceiling);
    let mut workers: Vec<&Arc<WorkerSlot>> = Vec::with_capacity(want);
    if want > 0 {
        for (index, slot) in pool().slots.iter().take(ceiling).enumerate() {
            if workers.len() == want {
                break;
            }
            // A claimed slot that fails to spawn is abandoned and its
            // stripe stays inline.
            if slot.try_claim() && slot.ensure_spawned(index) {
                workers.push(slot);
            }
        }
    }
    POOL_STRIPES.fetch_add(workers.len() as u64, Ordering::Relaxed);
    INLINE_STRIPES.fetch_add((nstripes - workers.len()) as u64, Ordering::Relaxed);
    let latch = Latch::new(workers.len());
    // SAFETY: see the function docs — a `latch.wait()` (normal flow or
    // the `WaitOnDrop` guard) outlives every worker's access to these
    // borrows on every exit path, including unwinds.
    let run_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
    let latch_static: &'static Latch = unsafe { std::mem::transmute(&latch) };

    /// Blocks until all submitted stripes complete if the enclosing
    /// frame unwinds before the normal `latch.wait()` — unwinding past
    /// the latch would free stack memory claimed workers still touch.
    /// `unsubmitted` counts claimed workers whose task was never
    /// enqueued (an unwind mid-submission); their latch slots are
    /// completed here so the wait cannot deadlock on completions that
    /// will never arrive. Any worker panic payload is discarded: the
    /// caller is already unwinding with its own panic.
    struct WaitOnDrop<'a> {
        latch: &'a Latch,
        unsubmitted: usize,
    }
    impl Drop for WaitOnDrop<'_> {
        fn drop(&mut self) {
            for _ in 0..self.unsubmitted {
                self.latch.complete(None);
            }
            drop(self.latch.wait());
        }
    }
    let mut wait_guard = WaitOnDrop {
        latch: &latch,
        unsubmitted: workers.len(),
    };

    for (k, slot) in workers.iter().enumerate() {
        slot.submit(Task {
            run: run_static,
            stripe: 1 + k,
            latch: latch_static,
        });
        wait_guard.unsubmitted -= 1;
    }
    // Caller-side stripes run under catch_unwind so a panicking stripe
    // cannot unwind past the wait below while workers are in flight.
    let caller_panic = catch_unwind(AssertUnwindSafe(|| {
        run(0);
        for stripe in (1 + workers.len())..nstripes {
            run(stripe);
        }
    }))
    .err();
    std::mem::forget(wait_guard); // the normal wait takes over from here
    let worker_panic = latch.wait();
    if let Some(payload) = caller_panic.or(worker_panic) {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that mutate the process-global ceiling.
    static CEILING_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn all_stripes_run_exactly_once() {
        for nstripes in [1usize, 2, 3, 7, 16] {
            let hits: Vec<AtomicU64> = (0..nstripes).map(|_| AtomicU64::new(0)).collect();
            run_striped(nstripes, &|s| {
                hits[s].fetch_add(1, Ordering::SeqCst);
            });
            for (s, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "stripe {s} of {nstripes}");
            }
        }
    }

    #[test]
    fn zero_ceiling_runs_everything_inline() {
        let _guard = CEILING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = CEILING.load(Ordering::Relaxed);
        set_max_threads(0);
        let caller = std::thread::current().id();
        let hits = AtomicU64::new(0);
        run_striped(4, &|_| {
            assert_eq!(std::thread::current().id(), caller, "must run inline");
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        CEILING.store(before, Ordering::Relaxed);
    }

    /// Many threads striping concurrently must each see all their own
    /// stripes exactly once — claimed workers never mix up callers.
    #[test]
    fn concurrent_callers_do_not_interfere() {
        std::thread::scope(|s| {
            for t in 0..8u64 {
                s.spawn(move || {
                    for round in 0..50u64 {
                        let nstripes = 1 + ((t + round) % 6) as usize;
                        let hits: Vec<AtomicU64> =
                            (0..nstripes).map(|_| AtomicU64::new(0)).collect();
                        run_striped(nstripes, &|stripe| {
                            hits[stripe].fetch_add(1, Ordering::SeqCst);
                        });
                        for h in &hits {
                            assert_eq!(h.load(Ordering::SeqCst), 1);
                        }
                    }
                });
            }
        });
    }

    /// A panicking stripe — whether it lands on a pool worker or runs
    /// inline on the caller — must propagate to the dispatching caller
    /// (not hang it, not kill a pool thread silently), and the pool
    /// must stay fully usable afterwards: no leaked claims, every
    /// stripe of later calls still runs exactly once.
    #[test]
    fn stripe_panic_propagates_and_pool_survives() {
        let _guard = CEILING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = CEILING.load(Ordering::Relaxed);
        set_max_threads(2);
        for bad_stripe in [0usize, 1, 2] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_striped(3, &|s| {
                    if s == bad_stripe {
                        panic!("stripe {s} panicked");
                    }
                });
            }));
            assert!(
                result.is_err(),
                "panic in stripe {bad_stripe} must propagate"
            );
        }
        for _ in 0..10 {
            let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            run_striped(4, &|s| {
                hits[s].fetch_add(1, Ordering::SeqCst);
            });
            for (s, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "stripe {s} after panic");
            }
        }
        CEILING.store(before, Ordering::Relaxed);
    }

    /// Every dispatched stripe lands in exactly one of the two
    /// utilization counters, and a zero ceiling counts all-inline.
    #[test]
    fn stripe_counts_account_for_every_stripe() {
        let _guard = CEILING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = CEILING.load(Ordering::Relaxed);
        set_max_threads(0);
        let t0 = stripe_counts();
        run_striped(5, &|_| {});
        let t1 = stripe_counts();
        assert!(t1.inline >= t0.inline + 5, "zero ceiling runs all inline");
        set_max_threads(2);
        run_striped(3, &|_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        let t2 = stripe_counts();
        assert_eq!(
            (t2.pool + t2.inline) - (t1.pool + t1.inline),
            3,
            "every stripe is counted exactly once"
        );
        CEILING.store(before, Ordering::Relaxed);
    }

    /// The pool reuses persistent threads: after a warmup call, further
    /// calls must not grow the spawned-thread count past the ceiling.
    #[test]
    fn pool_threads_persist_across_calls() {
        let _guard = CEILING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = CEILING.load(Ordering::Relaxed);
        set_max_threads(2);
        for _ in 0..20 {
            run_striped(3, &|_| {});
        }
        assert!(
            spawned_threads() <= HARD_CAP,
            "spawn count bounded by the hard cap"
        );
        CEILING.store(before, Ordering::Relaxed);
    }
}
