//! A minimal unsigned big integer for exact CRT reconstruction.
//!
//! CKKS decoding must recover centered coefficients modulo a product of
//! primes `Q` that can exceed 2^1000, far beyond `u128`. This module
//! provides just the operations the decoder needs — multiply-accumulate by
//! words, comparison, subtraction, and a lossless conversion to a scaled
//! `f64` — rather than a general bignum library.

use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer (little-endian 64-bit limbs).
///
/// The representation is normalized: no trailing zero limbs, and zero is the
/// empty limb vector.
///
/// # Example
/// ```
/// use hecate_math::bigint::UBig;
/// let mut x = UBig::from(u64::MAX);
/// x.mul_u64(u64::MAX);
/// x.add_u64(1);
/// // (2^64 - 1)^2 + 1 = 2^128 - 2^65 + 2
/// assert_eq!(x.bit_len(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        let mut b = UBig { limbs: vec![v] };
        b.normalize();
        b
    }
}

impl UBig {
    /// The value zero.
    pub fn zero() -> Self {
        UBig::default()
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() as u32 * 64 - top.leading_zeros(),
        }
    }

    /// Multiplies in place by a 64-bit word.
    pub fn mul_u64(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry: u128 = 0;
        for limb in self.limbs.iter_mut() {
            let prod = *limb as u128 * m as u128 + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry > 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Adds a 64-bit word in place.
    pub fn add_u64(&mut self, v: u64) {
        let mut carry = v;
        for limb in self.limbs.iter_mut() {
            let (s, c) = limb.overflowing_add(carry);
            *limb = s;
            carry = c as u64;
            if carry == 0 {
                return;
            }
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// Adds another big integer in place.
    pub fn add_assign(&mut self, other: &UBig) {
        if self.limbs.len() < other.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let o = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = limb.overflowing_add(o);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts `other` in place.
    ///
    /// # Panics
    /// Panics if `other > self` (the decoder never needs signed values).
    pub fn sub_assign(&mut self, other: &UBig) {
        assert!(
            self.cmp_big(other) != Ordering::Less,
            "UBig subtraction underflow"
        );
        let mut borrow = 0u64;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let o = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(o);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        self.normalize();
    }

    /// Three-way comparison with another big integer.
    pub fn cmp_big(&self, other: &UBig) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Halves the value in place (floor division by two).
    pub fn shr1(&mut self) {
        let mut carry = 0u64;
        for limb in self.limbs.iter_mut().rev() {
            let new_carry = *limb & 1;
            *limb = (*limb >> 1) | (carry << 63);
            carry = new_carry;
        }
        self.normalize();
    }

    /// Reduces in place modulo `m` by repeated subtraction.
    ///
    /// Intended for values at most a small multiple of `m` (the CRT
    /// accumulator is below `c·m` for `c` primes), so the loop runs at most
    /// `c` times.
    pub fn rem_assign_small(&mut self, m: &UBig) {
        while self.cmp_big(m) != Ordering::Less {
            self.sub_assign(m);
        }
    }

    /// Converts to `f64`, scaled down by `2^scale_bits`.
    ///
    /// Computed as `mantissa · 2^(exp − scale_bits)` from the top 53 bits, so
    /// it is accurate to f64 precision even when the integer itself has
    /// thousands of bits, as long as the *scaled* magnitude fits in `f64`.
    pub fn to_f64_scaled(&self, scale_bits: f64) -> f64 {
        let bits = self.bit_len();
        if bits == 0 {
            return 0.0;
        }
        // Extract the top (up to) 64 bits as a mantissa.
        let top = bits as i64 - 64;
        let mantissa = if top <= 0 {
            self.limbs_as_u128() as f64
        } else {
            let skip = top as u32;
            let limb_idx = (skip / 64) as usize;
            let shift = skip % 64;
            let lo = self.limbs[limb_idx] >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.limbs
                    .get(limb_idx + 1)
                    .map(|l| l << (64 - shift))
                    .unwrap_or(0)
            };
            (lo | hi) as f64
        };
        let exp = top.max(0) as f64;
        mantissa * (exp - scale_bits).exp2()
    }

    fn limbs_as_u128(&self) -> u128 {
        let lo = self.limbs.first().copied().unwrap_or(0) as u128;
        let hi = self.limbs.get(1).copied().unwrap_or(0) as u128;
        lo | (hi << 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_behaviour() {
        let z = UBig::zero();
        assert!(z.is_zero());
        assert_eq!(z.bit_len(), 0);
        assert_eq!(z.to_f64_scaled(0.0), 0.0);
        assert_eq!(UBig::from(0u64), z);
    }

    #[test]
    fn mul_add_small_values() {
        let mut x = UBig::from(7u64);
        x.mul_u64(6);
        x.add_u64(3);
        assert_eq!(x, UBig::from(45u64));
    }

    #[test]
    fn carries_propagate() {
        let mut x = UBig::from(u64::MAX);
        x.add_u64(1);
        assert_eq!(x.bit_len(), 65);
        x.mul_u64(u64::MAX);
        // 2^64 · (2^64 − 1) = 2^128 − 2^64
        assert_eq!(x.bit_len(), 128);
        let mut y = x.clone();
        y.add_assign(&UBig::from(u64::MAX));
        y.add_u64(1);
        assert_eq!(y.bit_len(), 129); // 2^128
    }

    #[test]
    fn sub_and_cmp() {
        let mut x = UBig::from(u64::MAX);
        x.mul_u64(u64::MAX); // big
        let y = x.clone();
        assert_eq!(x.cmp_big(&y), Ordering::Equal);
        x.add_u64(5);
        assert_eq!(x.cmp_big(&y), Ordering::Greater);
        x.sub_assign(&y);
        assert_eq!(x, UBig::from(5u64));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let mut x = UBig::from(1u64);
        x.sub_assign(&UBig::from(2u64));
    }

    #[test]
    fn shr1_halves() {
        let mut x = UBig::from(u64::MAX);
        x.mul_u64(2);
        x.shr1();
        assert_eq!(x, UBig::from(u64::MAX));
        let mut odd = UBig::from(7u64);
        odd.shr1();
        assert_eq!(odd, UBig::from(3u64));
    }

    #[test]
    fn rem_small_multiple() {
        let m = UBig::from(1_000_003u64);
        let mut x = m.clone();
        x.mul_u64(17);
        x.add_u64(123);
        x.rem_assign_small(&m);
        assert_eq!(x, UBig::from(123u64));
    }

    #[test]
    fn f64_conversion_exact_for_small() {
        let x = UBig::from(123_456_789u64);
        assert_eq!(x.to_f64_scaled(0.0), 123_456_789.0);
        assert!((x.to_f64_scaled(10.0) - 123_456_789.0 / 1024.0).abs() < 1e-6);
    }

    #[test]
    fn f64_conversion_huge_value_scaled_down() {
        // x = 3 · 2^700; scaled by 2^700 must give exactly 3.
        let mut x = UBig::from(3u64);
        for _ in 0..70 {
            x.mul_u64(1 << 10);
        }
        assert_eq!(x.bit_len(), 702);
        let v = x.to_f64_scaled(700.0);
        assert!((v - 3.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn f64_top_bits_accuracy() {
        // A 130-bit value whose top 53 bits determine the result.
        let mut x = UBig::from(0x0123_4567_89AB_CDEF_u64);
        x.mul_u64(u64::MAX);
        x.mul_u64(3);
        let approx = x.to_f64_scaled(64.0);
        // Reference computed in f64 directly.
        let expect = 0x0123_4567_89AB_CDEF_u64 as f64 * (u64::MAX as f64) * 3.0 / 2f64.powi(64);
        assert!((approx / expect - 1.0).abs() < 1e-12);
    }
}
