//! Primality testing and generation of NTT-friendly primes.
//!
//! The negacyclic NTT over `Z_q[X]/(X^N + 1)` requires a primitive `2N`-th
//! root of unity modulo `q`, which exists exactly when `q ≡ 1 (mod 2N)`.
//! CKKS modulus chains are built from such primes, each close to a target
//! bit size (the rescale factor `S_f`).

use crate::modular::{mul_mod, pow_mod};

/// Deterministic Miller–Rabin bases that are exact for all `u64` inputs.
const MR_BASES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Returns `true` if `n` is prime.
///
/// Uses the deterministic Miller–Rabin test with a base set proven complete
/// for 64-bit integers.
///
/// # Example
/// ```
/// use hecate_math::prime::is_prime;
/// assert!(is_prime(1_099_510_054_913));
/// assert!(!is_prime(1_099_510_054_915));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'bases: for &a in MR_BASES.iter() {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'bases;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes `p ≡ 1 (mod 2·degree)` as close to
/// `2^bits` as possible, skipping any prime in `avoid`.
///
/// Candidates are taken alternately below and above `2^bits` so that the
/// product of the generated primes stays near `2^(bits·count)`, which keeps
/// RNS rescaling by one prime close to an exact division by `2^bits`.
///
/// # Panics
/// Panics if `bits` is not in `[20, 61]`, if `degree` is not a power of two,
/// or if not enough primes exist in the search window (never happens for
/// realistic parameters).
///
/// # Example
/// ```
/// use hecate_math::prime::generate_ntt_primes;
/// let ps = generate_ntt_primes(40, 4096, 3, &[]);
/// assert_eq!(ps.len(), 3);
/// for p in ps {
///     assert_eq!(p % 8192, 1);
/// }
/// ```
pub fn generate_ntt_primes(bits: u32, degree: usize, count: usize, avoid: &[u64]) -> Vec<u64> {
    assert!((20..=61).contains(&bits), "prime size out of range: {bits}");
    assert!(degree.is_power_of_two(), "degree must be a power of two");
    let step = 2 * degree as u64;
    let target = 1u64 << bits;
    // First candidate ≡ 1 mod 2N at or below the target.
    let base = target - (target - 1) % step;
    let mut found = Vec::with_capacity(count);
    let mut k = 0u64;
    // Alternate below/above the target, nearest first.
    while found.len() < count {
        for cand in [base - k * step, base + (k + 1) * step] {
            if found.len() == count {
                break;
            }
            if cand < (1 << 20) {
                continue;
            }
            if is_prime(cand) && !avoid.contains(&cand) && !found.contains(&cand) {
                found.push(cand);
            }
        }
        k += 1;
        assert!(
            k < (1 << 24),
            "exhausted search window for {count} primes of {bits} bits"
        );
    }
    found
}

/// Finds a primitive `2N`-th root of unity modulo the prime `q`.
///
/// Requires `q ≡ 1 (mod 2N)`. The returned `ψ` satisfies `ψ^N ≡ -1 (mod q)`,
/// which is what the negacyclic NTT needs.
///
/// # Panics
/// Panics if `q` is not ≡ 1 mod 2N.
pub fn primitive_2n_root(q: u64, degree: usize) -> u64 {
    let two_n = 2 * degree as u64;
    assert_eq!(q % two_n, 1, "{q} is not NTT-friendly for degree {degree}");
    let exp = (q - 1) / two_n;
    // Deterministic search over small candidates: x^((q-1)/2N) is a 2N-th
    // root; it is primitive iff its N-th power is -1.
    for x in 2u64.. {
        let psi = pow_mod(x, exp, q);
        if psi != 0 && pow_mod(psi, degree as u64, q) == q - 1 {
            return psi;
        }
        assert!(x < 1 << 20, "no primitive root found for {q}");
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 7919];
        let composites = [0u64, 1, 4, 9, 91, 7917, 561, 41041]; // incl. Carmichael
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn strong_pseudoprimes_rejected() {
        // 3215031751 is a strong pseudoprime to bases 2, 3, 5, 7.
        assert!(!is_prime(3_215_031_751));
        assert!(!is_prime(3_825_123_056_546_413_051));
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        let ps = generate_ntt_primes(30, 1024, 5, &[]);
        assert_eq!(ps.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for p in &ps {
            assert!(is_prime(*p));
            assert_eq!(p % 2048, 1);
            assert!(seen.insert(*p), "duplicate prime");
            // Within a factor of two of the requested size.
            let bits = 64 - p.leading_zeros();
            assert!((30..=31).contains(&bits), "prime {p} far from 2^30");
        }
    }

    #[test]
    fn avoid_list_is_respected() {
        let first = generate_ntt_primes(30, 1024, 2, &[]);
        let second = generate_ntt_primes(30, 1024, 2, &first);
        for p in &second {
            assert!(!first.contains(p));
        }
    }

    #[test]
    fn primitive_root_has_exact_order() {
        let n = 1024;
        let q = generate_ntt_primes(40, n, 1, &[])[0];
        let psi = primitive_2n_root(q, n);
        assert_eq!(pow_mod(psi, n as u64, q), q - 1);
        assert_eq!(pow_mod(psi, 2 * n as u64, q), 1);
        // Primitive: no smaller power of two order.
        assert_ne!(pow_mod(psi, n as u64 / 2, q), 1);
    }
}
