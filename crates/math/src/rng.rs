//! Deterministic pseudo-random generation and RLWE samplers.
//!
//! The whole stack is seedable so that experiments are reproducible run to
//! run. [`Xoshiro256`] (xoshiro256++) provides the raw stream;
//! the samplers implement the three distributions RLWE needs: uniform
//! residues, ternary secrets, and a centered-binomial approximation of the
//! discrete Gaussian error (σ ≈ 3.2, the HE-standard value).

/// SplitMix64, used to expand a single `u64` seed into xoshiro state.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ pseudo-random generator.
///
/// Fast, high-quality, and fully deterministic from its seed. Not
/// cryptographically secure — fine for a research reproduction, and noted as
/// such in the crate docs.
///
/// # Example
/// ```
/// use hecate_math::rng::Xoshiro256;
/// let mut a = Xoshiro256::seed_from_u64(1);
/// let mut b = Xoshiro256::seed_from_u64(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64(seed);
        Xoshiro256 {
            s: [sm.next(), sm.next(), sm.next(), sm.next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform residue in `[0, bound)` by rejection sampling
    /// (unbiased).
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Rejection zone keeps the distribution exactly uniform.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Fills `out` with uniform residues modulo `q`.
    pub fn fill_uniform_mod(&mut self, out: &mut [u64], q: u64) {
        for x in out.iter_mut() {
            *x = self.next_below(q);
        }
    }

    /// Samples a ternary vector with entries in `{-1, 0, 1}` (the CKKS
    /// secret-key distribution).
    pub fn sample_ternary(&mut self, n: usize) -> Vec<i64> {
        (0..n).map(|_| self.next_below(3) as i64 - 1).collect()
    }

    /// Samples centered-binomial noise with variance 21/2 (σ ≈ 3.24),
    /// approximating the discrete Gaussian with σ = 3.2 used by SEAL.
    pub fn sample_noise(&mut self, n: usize) -> Vec<i64> {
        (0..n)
            .map(|_| {
                // Sum of 21 fair ±1/2 trials: popcount difference of 21+21 bits.
                let bits = self.next_u64();
                let a = (bits & 0x1F_FFFF).count_ones() as i64;
                let b = ((bits >> 21) & 0x1F_FFFF).count_ones() as i64;
                a - b
            })
            .collect()
    }

    /// Samples a standard normal value via Box–Muller (for synthetic
    /// workload generation, not for RLWE noise).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ternary_values_and_balance() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let v = rng.sample_ternary(30_000);
        assert!(v.iter().all(|x| (-1..=1).contains(x)));
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        assert!(mean.abs() < 0.02, "ternary mean too far from 0: {mean}");
    }

    #[test]
    fn noise_statistics_match_cbd21() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let v = rng.sample_noise(100_000);
        let mean = v.iter().sum::<i64>() as f64 / v.len() as f64;
        let var = v.iter().map(|x| (*x as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.05, "noise mean {mean}");
        // CBD(21) variance is 10.5.
        assert!((var - 10.5).abs() < 0.5, "noise variance {var}");
    }

    #[test]
    fn gaussian_statistics() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let v: Vec<f64> = (0..50_000).map(|_| rng.next_gaussian()).collect();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.05);
    }
}
