//! Striping for independent per-limb kernels over the persistent
//! kernel pool.
//!
//! RNS keeps every prime's residue polynomial independent, so the hot
//! per-limb loops (NTTs, key-switch inner products) parallelize without
//! any synchronization: each worker owns a disjoint contiguous chunk of
//! the limb array. Because the work per limb is a deterministic function
//! of its inputs and no worker reads another's output, the result is
//! bit-identical at every job count — parallelism here only changes
//! *when* a limb is computed, never *what* is computed.
//!
//! Stripes execute on [`crate::kernel_pool`]'s long-lived worker
//! threads (plus the caller's own thread, which always works the first
//! chunk), so repeated kernel calls reuse warm threads — and their warm
//! [`crate::scratch`] pools — instead of paying a `std::thread::scope`
//! spawn per call. When the pool has no idle worker to claim (every
//! core already busy, or the core budget exhausted), stripes simply run
//! inline on the caller: the parallelism degrades, the result does not
//! change.

use std::sync::Mutex;

/// A stripe's take-once handoff cell: absolute base index plus the
/// disjoint chunk it owns.
type StripeCell<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;

/// Applies `f(index, item)` to every item, striped over at most `jobs`
/// workers from the persistent kernel pool. `jobs <= 1` (or a single
/// item) runs inline with no dispatch. The closure receives the item's
/// absolute index so per-limb tables can be looked up.
pub fn for_each_limb<T, F>(items: &mut [T], jobs: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if jobs <= 1 || len <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = len.div_ceil(jobs.min(len));
    // Each stripe's disjoint chunk is handed over through a take-once
    // mutex: the kernel-pool closure is shared (`Fn`), so exclusive
    // access to the chunks needs interior mutability. One uncontended
    // lock per stripe — noise next to an NTT.
    let stripes: Vec<StripeCell<'_, T>> = items
        .chunks_mut(chunk)
        .enumerate()
        .map(|(k, c)| Mutex::new(Some((k * chunk, c))))
        .collect();
    crate::kernel_pool::run_striped(stripes.len(), &|s| {
        let (base, chunk) = stripes[s]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("each stripe is dispatched exactly once");
        for (k, item) in chunk.iter_mut().enumerate() {
            f(base + k, item);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_job_counts_produce_identical_results() {
        let reference: Vec<u64> = (0..13u64).map(|i| i * i + 7).collect();
        for jobs in [1usize, 2, 3, 4, 8, 32] {
            let mut items: Vec<u64> = (0..13).collect();
            for_each_limb(&mut items, jobs, |i, v| {
                *v = *v * (i as u64) + 7;
            });
            let expect: Vec<u64> = (0..13u64).map(|i| i * i + 7).collect();
            assert_eq!(items, expect, "jobs = {jobs}");
            assert_eq!(expect, reference);
        }
    }

    #[test]
    fn empty_and_single_item_are_fine() {
        let mut empty: Vec<u64> = vec![];
        for_each_limb(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![41u64];
        for_each_limb(&mut one, 4, |i, v| *v += 1 + i as u64);
        assert_eq!(one, vec![42]);
    }

    /// Stress the pooled dispatch path: many threads striping their own
    /// arrays concurrently must all get exact results — pool workers
    /// never cross wires between callers.
    #[test]
    fn concurrent_striping_is_exact() {
        std::thread::scope(|s| {
            for t in 0..6u64 {
                s.spawn(move || {
                    for round in 0..40u64 {
                        let n = 5 + ((t + round) % 11) as usize;
                        let mut items: Vec<u64> = (0..n as u64).map(|i| i + t).collect();
                        for_each_limb(&mut items, 4, |i, v| {
                            *v = v.wrapping_mul(i as u64 + 3) ^ round;
                        });
                        let expect: Vec<u64> = (0..n as u64)
                            .map(|i| (i + t).wrapping_mul(i + 3) ^ round)
                            .collect();
                        assert_eq!(items, expect);
                    }
                });
            }
        });
    }
}
