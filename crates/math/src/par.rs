//! Scoped-thread striping for independent per-limb kernels.
//!
//! RNS keeps every prime's residue polynomial independent, so the hot
//! per-limb loops (NTTs, key-switch inner products) parallelize without
//! any synchronization: each worker owns a disjoint contiguous chunk of
//! the limb array. Because the work per limb is a deterministic function
//! of its inputs and no worker reads another's output, the result is
//! bit-identical at every job count — parallelism here only changes
//! *when* a limb is computed, never *what* is computed.

/// Applies `f(index, item)` to every item, striped over at most `jobs`
/// scoped threads. `jobs <= 1` (or a single item) runs inline with no
/// thread spawn. The closure receives the item's absolute index so
/// per-limb tables can be looked up.
pub fn for_each_limb<T, F>(items: &mut [T], jobs: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    if jobs <= 1 || len <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = len.div_ceil(jobs.min(len));
    std::thread::scope(|scope| {
        let mut rest = &mut *items;
        let mut base = 0usize;
        let mut first: Option<(usize, &mut [T])> = None;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            if base == 0 {
                // The caller's thread works the first chunk itself, so
                // `jobs = 2` spawns one thread, not two.
                first = Some((base, head));
            } else {
                let fr = &f;
                scope.spawn(move || {
                    for (k, item) in head.iter_mut().enumerate() {
                        fr(base + k, item);
                    }
                });
            }
            base += take;
            rest = tail;
        }
        if let Some((b, head)) = first {
            for (k, item) in head.iter_mut().enumerate() {
                f(b + k, item);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_job_counts_produce_identical_results() {
        let reference: Vec<u64> = (0..13u64).map(|i| i * i + 7).collect();
        for jobs in [1usize, 2, 3, 4, 8, 32] {
            let mut items: Vec<u64> = (0..13).collect();
            for_each_limb(&mut items, jobs, |i, v| {
                *v = *v * (i as u64) + 7;
            });
            let expect: Vec<u64> = (0..13u64).map(|i| i * i + 7).collect();
            assert_eq!(items, expect, "jobs = {jobs}");
            assert_eq!(expect, reference);
        }
    }

    #[test]
    fn empty_and_single_item_are_fine() {
        let mut empty: Vec<u64> = vec![];
        for_each_limb(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![41u64];
        for_each_limb(&mut one, 4, |i, v| *v += 1 + i as u64);
        assert_eq!(one, vec![42]);
    }
}
