//! Complex floating-point FFT for the CKKS canonical embedding.
//!
//! The CKKS encoder evaluates a real polynomial `m(X) ∈ R[X]/(X^N + 1)` at
//! the primitive `2N`-th roots of unity. Writing `ζ = e^{iπ/N}`, the values
//! at the odd powers `ζ^{2t+1}` equal the plain `N`-point DFT of the
//! *twisted* coefficient vector `a_j · ζ^j` — so a generic complex FFT plus
//! a twist is all the encoder needs. This module provides the complex type
//! and an in-place iterative radix-2 FFT with precomputed root tables.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// A deliberately small stand-in for `num_complex::Complex64`, providing only
/// what the encoder uses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{iθ}` for angle `theta` in radians.
    pub fn from_angle(theta: f64) -> Self {
        Complex64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

/// Precomputed root tables for an `N`-point complex FFT.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Forward roots `e^{-2πik/N}`, one table per stage is derived by stride.
    roots: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for transform length `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "FFT length must be a power of two"
        );
        let roots = (0..n / 2)
            .map(|k| Complex64::from_angle(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        FftPlan { n, roots }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the plan length is zero (never; provided for
    /// `len`/`is_empty` API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn bit_reverse_permute(a: &mut [Complex64]) {
        let n = a.len();
        let log_n = n.trailing_zeros();
        for i in 0..n {
            let j = i.reverse_bits() >> (usize::BITS - log_n);
            if i < j {
                a.swap(i, j);
            }
        }
    }

    /// In-place forward DFT: `out[k] = Σ_j a[j]·e^{-2πijk/N}`.
    ///
    /// # Panics
    /// Panics if `a.len()` differs from the plan length.
    pub fn forward(&self, a: &mut [Complex64]) {
        self.transform(a, false);
    }

    /// In-place inverse DFT (including the `1/N` normalization).
    ///
    /// # Panics
    /// Panics if `a.len()` differs from the plan length.
    pub fn inverse(&self, a: &mut [Complex64]) {
        self.transform(a, true);
        let s = 1.0 / self.n as f64;
        for x in a.iter_mut() {
            *x = x.scale(s);
        }
    }

    fn transform(&self, a: &mut [Complex64], invert: bool) {
        assert_eq!(a.len(), self.n, "FFT length mismatch");
        Self::bit_reverse_permute(a);
        let mut len = 2;
        while len <= self.n {
            let stride = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..len / 2 {
                    let mut w = self.roots[k * stride];
                    if invert {
                        w = w.conj();
                    }
                    let u = a[start + k];
                    let v = a[start + k + len / 2] * w;
                    a[start + k] = u + v;
                    a[start + k + len / 2] = u - v;
                }
            }
            len *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(a: &[Complex64]) -> Vec<Complex64> {
        let n = a.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex64::default();
                for (j, x) in a.iter().enumerate() {
                    let w = Complex64::from_angle(
                        -2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64,
                    );
                    acc += *x * w;
                }
                acc
            })
            .collect()
    }

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn matches_naive_dft() {
        let n = 32;
        let plan = FftPlan::new(n);
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(9);
        let input: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.next_range_f64(-1.0, 1.0), rng.next_range_f64(-1.0, 1.0)))
            .collect();
        let expected = naive_dft(&input);
        let mut a = input.clone();
        plan.forward(&mut a);
        for (x, y) in a.iter().zip(&expected) {
            assert!(close(*x, *y, 1e-9), "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 256;
        let plan = FftPlan::new(n);
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(10);
        let input: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.next_gaussian(), rng.next_gaussian()))
            .collect();
        let mut a = input.clone();
        plan.forward(&mut a);
        plan.inverse(&mut a);
        for (x, y) in a.iter().zip(&input) {
            assert!(close(*x, *y, 1e-10));
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 16;
        let plan = FftPlan::new(n);
        let mut a = vec![Complex64::default(); n];
        a[0] = Complex64::new(1.0, 0.0);
        plan.forward(&mut a);
        for x in &a {
            assert!(close(*x, Complex64::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 64;
        let plan = FftPlan::new(n);
        let mut rng = crate::rng::Xoshiro256::seed_from_u64(12);
        let input: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.next_gaussian(), 0.0))
            .collect();
        let time_energy: f64 = input.iter().map(|x| x.norm_sqr()).sum();
        let mut a = input;
        plan.forward(&mut a);
        let freq_energy: f64 = a.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0));
    }
}
