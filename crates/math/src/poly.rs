//! Polynomials in RNS representation over `Z_{Q_c}[X]/(X^N + 1)`.
//!
//! An [`RnsPoly`] stores one residue polynomial per active chain prime (a
//! *prefix* of the basis — rescaling shortens the prefix) and tracks whether
//! the residues are in coefficient or NTT (evaluation) form. All arithmetic
//! methods take the owning [`RnsBasis`] explicitly so polynomials stay
//! plain data.

use crate::modular::{add_mod, mul_mod, neg_mod, reduce_i128, reduce_i64, sub_mod};
use crate::rns::RnsBasis;

/// A polynomial in RNS form over a prefix of a modulus chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    residues: Vec<Vec<u64>>,
    is_ntt: bool,
}

impl RnsPoly {
    /// The zero polynomial over the first `c` primes.
    pub fn zero(basis: &RnsBasis, c: usize, is_ntt: bool) -> Self {
        assert!(c >= 1 && c <= basis.chain_len());
        RnsPoly {
            residues: vec![vec![0; basis.degree()]; c],
            is_ntt,
        }
    }

    /// Builds a polynomial from signed coefficients (coefficient domain).
    ///
    /// # Panics
    /// Panics if `coeffs.len()` differs from the ring degree.
    pub fn from_signed_coeffs(basis: &RnsBasis, c: usize, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), basis.degree());
        let residues = (0..c)
            .map(|i| {
                let q = basis.prime(i);
                coeffs.iter().map(|&v| reduce_i64(v, q)).collect()
            })
            .collect();
        RnsPoly {
            residues,
            is_ntt: false,
        }
    }

    /// Builds a polynomial from wide signed coefficients, as produced by the
    /// CKKS encoder at large scales (coefficient domain).
    pub fn from_i128_coeffs(basis: &RnsBasis, c: usize, coeffs: &[i128]) -> Self {
        assert_eq!(coeffs.len(), basis.degree());
        let residues = (0..c)
            .map(|i| {
                let q = basis.prime(i);
                coeffs.iter().map(|&v| reduce_i128(v, q)).collect()
            })
            .collect();
        RnsPoly {
            residues,
            is_ntt: false,
        }
    }

    /// Number of active primes (prefix length).
    pub fn prefix(&self) -> usize {
        self.residues.len()
    }

    /// Whether the residues are in NTT (evaluation) form.
    pub fn is_ntt(&self) -> bool {
        self.is_ntt
    }

    /// Read access to the residues of prime `i`.
    pub fn residue(&self, i: usize) -> &[u64] {
        &self.residues[i]
    }

    /// Mutable access to the residues of prime `i`.
    pub fn residue_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.residues[i]
    }

    /// Converts to NTT form in place (no-op if already there).
    pub fn to_ntt(&mut self, basis: &RnsBasis) {
        self.to_ntt_jobs(basis, 1);
    }

    /// Converts to NTT form, striping the per-prime transforms over up
    /// to `jobs` scoped threads. Limbs are independent, so the result is
    /// bit-identical to the sequential conversion at every job count.
    pub fn to_ntt_jobs(&mut self, basis: &RnsBasis, jobs: usize) {
        if self.is_ntt {
            return;
        }
        crate::par::for_each_limb(&mut self.residues, jobs, |i, r| basis.ntt(i).forward(r));
        self.is_ntt = true;
    }

    /// Converts to coefficient form in place (no-op if already there).
    pub fn to_coeff(&mut self, basis: &RnsBasis) {
        self.to_coeff_jobs(basis, 1);
    }

    /// Converts to coefficient form, striping the per-prime transforms
    /// over up to `jobs` scoped threads (bit-identical at any count).
    pub fn to_coeff_jobs(&mut self, basis: &RnsBasis, jobs: usize) {
        if !self.is_ntt {
            return;
        }
        crate::par::for_each_limb(&mut self.residues, jobs, |i, r| basis.ntt(i).backward(r));
        self.is_ntt = false;
    }

    fn check_compatible(&self, other: &RnsPoly) {
        assert_eq!(self.prefix(), other.prefix(), "prefix mismatch");
        assert_eq!(self.is_ntt, other.is_ntt, "domain mismatch");
    }

    /// `self += other` (same prefix and domain).
    pub fn add_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        for (i, (a, b)) in self.residues.iter_mut().zip(&other.residues).enumerate() {
            let q = basis.prime(i);
            for (x, y) in a.iter_mut().zip(b) {
                *x = add_mod(*x, *y, q);
            }
        }
    }

    /// `self -= other` (same prefix and domain).
    pub fn sub_assign(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        for (i, (a, b)) in self.residues.iter_mut().zip(&other.residues).enumerate() {
            let q = basis.prime(i);
            for (x, y) in a.iter_mut().zip(b) {
                *x = sub_mod(*x, *y, q);
            }
        }
    }

    /// Negates in place.
    pub fn negate(&mut self, basis: &RnsBasis) {
        for (i, a) in self.residues.iter_mut().enumerate() {
            let q = basis.prime(i);
            for x in a.iter_mut() {
                *x = neg_mod(*x, q);
            }
        }
    }

    /// Pointwise product `self *= other`; both must be in NTT form.
    ///
    /// # Panics
    /// Panics if either operand is in coefficient form.
    pub fn mul_assign_pointwise(&mut self, other: &RnsPoly, basis: &RnsBasis) {
        self.check_compatible(other);
        assert!(self.is_ntt, "pointwise product requires NTT form");
        for (i, (a, b)) in self.residues.iter_mut().zip(&other.residues).enumerate() {
            let q = basis.prime(i);
            for (x, y) in a.iter_mut().zip(b) {
                *x = mul_mod(*x, *y, q);
            }
        }
    }

    /// Multiplies every residue by a small scalar.
    pub fn mul_scalar(&mut self, s: u64, basis: &RnsBasis) {
        for (i, a) in self.residues.iter_mut().enumerate() {
            let q = basis.prime(i);
            let sq = s % q;
            for x in a.iter_mut() {
                *x = mul_mod(*x, sq, q);
            }
        }
    }

    /// Drops the last active prime without dividing — the RNS realization of
    /// `modswitch`: the represented small value is unchanged modulo the
    /// shorter prefix. Valid in either domain.
    ///
    /// # Panics
    /// Panics if only one prime is active.
    pub fn drop_last(&mut self) {
        assert!(self.prefix() > 1, "cannot drop the base prime");
        self.residues.pop();
    }

    /// Divides by the last active prime and drops it — the RNS realization
    /// of `rescale`. The result is the rounded quotient (error ≤ 1 per
    /// coefficient). Converts to coefficient domain; the result is left in
    /// coefficient domain.
    ///
    /// # Panics
    /// Panics if only one prime is active.
    pub fn rescale_last(&mut self, basis: &RnsBasis) {
        assert!(self.prefix() > 1, "cannot rescale away the base prime");
        self.to_coeff(basis);
        let c = self.prefix();
        let last = self.residues.pop().expect("non-empty");
        let q_last = basis.prime(c - 1);
        for i in 0..c - 1 {
            let q = basis.prime(i);
            let inv = basis.inv_last_prime(c, i);
            for (x, &l) in self.residues[i].iter_mut().zip(&last) {
                let lifted = RnsBasis::center(l, q_last);
                *x = RnsBasis::div_round_step(*x, lifted, inv, q);
            }
        }
    }

    /// Truncates to the first `c` primes (valid in either domain, since
    /// residues are per-prime independent). Used when encrypting or encoding
    /// at a lower level with key material generated over the full chain.
    ///
    /// # Panics
    /// Panics if `c` is zero or larger than the current prefix.
    pub fn truncate(&mut self, c: usize) {
        assert!(c >= 1 && c <= self.prefix(), "bad truncation length {c}");
        self.residues.truncate(c);
    }

    /// Applies the Galois automorphism `X ↦ X^g` (g odd, coefficient
    /// domain). Used for slot rotations and conjugation.
    ///
    /// # Panics
    /// Panics if in NTT form or if `g` is even.
    pub fn automorphism(&self, g: usize, basis: &RnsBasis) -> RnsPoly {
        assert!(!self.is_ntt, "automorphism requires coefficient form");
        assert_eq!(g % 2, 1, "Galois element must be odd");
        let n = basis.degree();
        let two_n = 2 * n;
        let mut out = RnsPoly::zero(basis, self.prefix(), false);
        for (i, r) in self.residues.iter().enumerate() {
            let q = basis.prime(i);
            for (j, &v) in r.iter().enumerate() {
                let idx = (j * g) % two_n;
                if idx < n {
                    out.residues[i][idx] = v;
                } else {
                    out.residues[i][idx - n] = neg_mod(v, q);
                }
            }
        }
        out
    }

    /// Applies a Galois automorphism in the evaluation domain, given its
    /// slot permutation from [`crate::ntt::NttTable::galois_permutation`].
    /// The permutation is prime-independent, so one `perm` serves every
    /// limb. Exactly equal (bit for bit) to converting to coefficient
    /// form, applying [`RnsPoly::automorphism`], and converting back.
    ///
    /// # Panics
    /// Panics if in coefficient form or if `perm.len()` differs from the
    /// ring degree.
    pub fn automorphism_ntt(&self, perm: &[usize]) -> RnsPoly {
        assert!(self.is_ntt, "automorphism_ntt requires NTT form");
        let residues = self
            .residues
            .iter()
            .map(|r| {
                assert_eq!(perm.len(), r.len(), "permutation/degree mismatch");
                perm.iter().map(|&p| r[p]).collect()
            })
            .collect();
        RnsPoly {
            residues,
            is_ntt: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn basis() -> RnsBasis {
        RnsBasis::generate(64, 40, 30, 3, 40)
    }

    fn random_poly(basis: &RnsBasis, c: usize, seed: u64) -> RnsPoly {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let coeffs: Vec<i64> = (0..basis.degree())
            .map(|_| rng.next_below(2001) as i64 - 1000)
            .collect();
        RnsPoly::from_signed_coeffs(basis, c, &coeffs)
    }

    #[test]
    fn ntt_roundtrip_preserves_poly() {
        let b = basis();
        let p0 = random_poly(&b, 3, 1);
        let mut p = p0.clone();
        p.to_ntt(&b);
        assert!(p.is_ntt());
        p.to_coeff(&b);
        assert_eq!(p, p0);
    }

    #[test]
    fn add_sub_cancel() {
        let b = basis();
        let mut p = random_poly(&b, 3, 2);
        let q = random_poly(&b, 3, 3);
        let orig = p.clone();
        p.add_assign(&q, &b);
        p.sub_assign(&q, &b);
        assert_eq!(p, orig);
    }

    #[test]
    fn negate_twice_is_identity() {
        let b = basis();
        let mut p = random_poly(&b, 2, 4);
        let orig = p.clone();
        p.negate(&b);
        assert_ne!(p, orig);
        p.negate(&b);
        assert_eq!(p, orig);
    }

    #[test]
    fn pointwise_mul_matches_schoolbook_via_small_case() {
        let b = basis();
        let n = b.degree();
        // p = 3 + 2X, q = 5 + X  →  pq = 15 + 13X + 2X²
        let mut pc = vec![0i64; n];
        pc[0] = 3;
        pc[1] = 2;
        let mut qc = vec![0i64; n];
        qc[0] = 5;
        qc[1] = 1;
        let mut p = RnsPoly::from_signed_coeffs(&b, 2, &pc);
        let mut q = RnsPoly::from_signed_coeffs(&b, 2, &qc);
        p.to_ntt(&b);
        q.to_ntt(&b);
        p.mul_assign_pointwise(&q, &b);
        p.to_coeff(&b);
        assert_eq!(p.residue(0)[0], 15);
        assert_eq!(p.residue(0)[1], 13);
        assert_eq!(p.residue(0)[2], 2);
        assert_eq!(p.residue(0)[3], 0);
    }

    #[test]
    fn rescale_divides_value() {
        let b = basis();
        // Encode constant v ≈ q_2 · 1000 so that rescaling by q_2 gives ≈1000.
        let q2 = b.prime(2);
        let n = b.degree();
        let mut coeffs = vec![0i128; n];
        coeffs[0] = q2 as i128 * 1000;
        let mut p = RnsPoly::from_i128_coeffs(&b, 3, &coeffs);
        p.rescale_last(&b);
        assert_eq!(p.prefix(), 2);
        let rec = b.reconstructor(2);
        let rs: Vec<u64> = (0..2).map(|i| p.residue(i)[0]).collect();
        let v = rec.reconstruct_centered_f64(&rs, 0.0);
        assert!((v - 1000.0).abs() <= 1.0, "got {v}");
    }

    #[test]
    fn drop_last_keeps_small_value() {
        let b = basis();
        let mut p = random_poly(&b, 3, 5);
        let before = b
            .reconstructor(3)
            .reconstruct_centered_f64(&(0..3).map(|i| p.residue(i)[7]).collect::<Vec<_>>(), 0.0);
        p.drop_last();
        let after = b
            .reconstructor(2)
            .reconstruct_centered_f64(&(0..2).map(|i| p.residue(i)[7]).collect::<Vec<_>>(), 0.0);
        assert_eq!(before, after, "small values survive modswitch");
    }

    #[test]
    fn automorphism_identity_and_composition() {
        let b = basis();
        let p = random_poly(&b, 2, 6);
        assert_eq!(p.automorphism(1, &b), p);
        // g=5 applied then g=77: X -> X^5 -> X^385; 385 mod 128 = 1, and
        // 5·77 = 385 ≡ X^{385 mod 2N} with sign handling — composition must
        // equal the single automorphism with g = 5·77 mod 2N.
        let g1 = 5usize;
        let g2 = 77usize;
        let composed = p.automorphism(g1, &b).automorphism(g2, &b);
        let direct = p.automorphism((g1 * g2) % (2 * b.degree()), &b);
        assert_eq!(composed, direct);
    }

    #[test]
    fn automorphism_negates_on_wrap() {
        let b = basis();
        let n = b.degree();
        // p = X^{N-1}; under X ↦ X^3: X^{3(N-1)} = X^{3N-3} = X^{N-3}·(X^N)^2...
        // compute: 3(N-1) mod 2N = 3N-3-2N = N-3 ≥ N? For N=64: 189 mod 128 = 61 < 64,
        // wraps once through X^{2N} (sign +) — verify against direct evaluation instead.
        let mut coeffs = vec![0i64; n];
        coeffs[n - 1] = 1;
        let p = RnsPoly::from_signed_coeffs(&b, 1, &coeffs);
        let out = p.automorphism(3, &b);
        let q = b.prime(0);
        // 3(N-1) = 3N-3; mod 2N = N-3 (for N≥3), which is ≥... for N=64: 189-128=61, 61<64 → index 61, sign +.
        let target = (3 * (n - 1)) % (2 * n);
        if target < n {
            assert_eq!(out.residue(0)[target], 1);
        } else {
            assert_eq!(out.residue(0)[target - n], q - 1);
        }
    }

    #[test]
    fn ntt_domain_automorphism_matches_coefficient_domain() {
        let b = basis();
        let p = random_poly(&b, 3, 8);
        for g in [3usize, 5, 2 * b.degree() - 1] {
            let perm = b.ntt(0).galois_permutation(g);
            let mut via_coeff = p.automorphism(g, &b);
            via_coeff.to_ntt(&b);
            let mut pn = p.clone();
            pn.to_ntt(&b);
            assert_eq!(pn.automorphism_ntt(&perm), via_coeff, "g = {g}");
        }
    }

    #[test]
    fn jobs_variants_are_bit_identical() {
        let b = basis();
        for jobs in [1usize, 2, 3, 8] {
            let mut p = random_poly(&b, 3, 9);
            let mut q = p.clone();
            p.to_ntt(&b);
            q.to_ntt_jobs(&b, jobs);
            assert_eq!(p, q, "forward, jobs = {jobs}");
            p.to_coeff(&b);
            q.to_coeff_jobs(&b, jobs);
            assert_eq!(p, q, "backward, jobs = {jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "base prime")]
    fn rescale_base_prime_panics() {
        let b = basis();
        let mut p = random_poly(&b, 1, 7);
        p.rescale_last(&b);
    }
}
