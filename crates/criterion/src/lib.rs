//! An offline, in-tree stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate, covering the subset of its API the bench harness
//! uses: `Criterion::default().sample_size(..)`, benchmark groups,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Each benchmark runs `sample_size` timed samples after one warm-up
//! iteration and prints mean and minimum wall-clock time. There is no
//! statistical analysis, outlier rejection, or HTML report.

#![forbid(unsafe_code)]

use std::time::Instant;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
        }
    }

    /// Benchmarks a function directly (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        run_one(&format!("{id}"), self.sample_size, f);
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
    }

    /// Ends the group (printing nothing; provided for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples_us: Vec::with_capacity(samples),
    };
    // One warm-up, then the timed samples.
    f(&mut b);
    b.samples_us.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    let n = b.samples_us.len().max(1) as f64;
    let mean = b.samples_us.iter().sum::<f64>() / n;
    let min = b.samples_us.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("  {label:<40} mean {mean:>12.1}µs  min {min:>12.1}µs  ({samples} samples)");
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples_us: Vec<f64>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        let out = f();
        self.samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(out);
    }
}

/// Declares a benchmark group function composed of bench targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
