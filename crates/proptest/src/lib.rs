//! An offline, in-tree stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset of its API this workspace uses.
//!
//! The build environment has no network access and no registry cache, so
//! the real crate cannot be fetched. This stub keeps the property-test
//! suites compiling and *running* with the same semantics — deterministic
//! pseudo-random generation over strategies, a configurable case count,
//! assumption-based rejection — minus shrinking: a failing case reports its
//! case index and seed instead of a minimized input.
//!
//! Supported surface:
//!
//! - [`proptest!`] with an optional `#![proptest_config(...)]` header;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`];
//! - [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], ranges
//!   over the primitive numeric types, tuples, and weighted unions;
//! - [`collection::vec`] with a fixed size or a size range;
//! - [`arbitrary::any`] for primitive integers and `bool`.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Runner configuration (`cases` is the only knob the stub honours).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; 64 keeps offline CI fast while still
            // exercising a meaningful sample.
            Config { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic splitmix64-based generator seeding each case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for the given case seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A value generator. The stub generates eagerly and never shrinks.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn pick(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// A type-erased strategy (used by [`prop_oneof!`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Erases a strategy's type.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        BoxedStrategy {
            f: Rc::new(move |rng| s.pick(rng)),
        }
    }

    /// A weighted union of strategies over one value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union drawing each arm with probability proportional to its
        /// weight.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.below(self.total);
            for (w, s) in &self.arms {
                if roll < *w as u64 {
                    return s.pick(rng);
                }
                roll -= *w as u64;
            }
            self.arms.last().expect("non-empty union").1.pick(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn pick(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.pick(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Anything usable as a `vec` size: a fixed length or a half-open
    /// range of lengths.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            let span = (self.end - self.start).max(1) as u64;
            self.start + rng.below(span) as usize
        }
    }

    /// A strategy generating `Vec`s of `element` with the given size.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Strategy generating any `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test that draws `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with $cfg; $($rest)*);
    };
    (@with $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg = $cfg;
                let mut done: u32 = 0;
                let mut attempt: u64 = 0;
                while done < cfg.cases {
                    attempt += 1;
                    if attempt > cfg.cases as u64 * 20 {
                        panic!("property '{}' rejected too many cases (prop_assume too strict)", stringify!($name));
                    }
                    let mut rng = $crate::test_runner::TestRng::from_seed(attempt);
                    $(let $arg = $crate::strategy::Strategy::pick(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body; Ok(()) })();
                    match outcome {
                        Ok(()) => done += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property '{}' failed on case {} (seed {}): {}",
                                   stringify!($name), done, attempt, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with <$crate::test_runner::Config as ::std::default::Default>::default(); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A strategy choosing among several strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}
