//! Property-based tests of homomorphic correctness: for random messages,
//! the decrypted results of encrypted operations match plaintext
//! arithmetic within CKKS noise bounds.

use hecate_ckks::{
    CkksEncoder, CkksParams, Decryptor, Encryptor, EvalKeys, Evaluator, KeyGenerator,
};
use proptest::prelude::*;

struct Fixture {
    enc: CkksEncoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    eval: Evaluator,
    slots: usize,
}

fn fixture(seed: u64) -> Fixture {
    let params = CkksParams::new(64, 45, 30, 2, false).unwrap();
    let enc = CkksEncoder::new(&params);
    let mut kg = KeyGenerator::new(&params, seed);
    let pk = kg.public_key();
    let keys = EvalKeys::generate(&mut kg, &[1, 2, 3], &[(1, 3), (2, 3)]);
    Fixture {
        slots: params.slots(),
        encryptor: Encryptor::new(&params, pk, seed.wrapping_add(1)),
        decryptor: Decryptor::new(&params, kg.secret_key().clone()),
        eval: Evaluator::new(&params, keys),
        enc,
    }
}

fn msg() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-4.0f64..4.0, 1..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn addition_is_homomorphic(a in msg(), b in msg(), seed in 0u64..50) {
        let mut f = fixture(seed);
        let ca = f.encryptor.encrypt(&f.enc.encode(&a, 30.0, 0).unwrap());
        let cb = f.encryptor.encrypt(&f.enc.encode(&b, 30.0, 0).unwrap());
        let out = f.enc.decode(&f.decryptor.decrypt(&f.eval.add(&ca, &cb).unwrap()));
        for i in 0..a.len().max(b.len()) {
            let expect = a.get(i).unwrap_or(&0.0) + b.get(i).unwrap_or(&0.0);
            prop_assert!((out[i] - expect).abs() < 1e-3, "slot {i}: {} vs {expect}", out[i]);
        }
    }

    #[test]
    fn multiplication_is_homomorphic(a in msg(), b in msg(), seed in 0u64..50) {
        let mut f = fixture(seed);
        let ca = f.encryptor.encrypt(&f.enc.encode(&a, 30.0, 0).unwrap());
        let cb = f.encryptor.encrypt(&f.enc.encode(&b, 30.0, 0).unwrap());
        let prod = f.eval.rescale(&f.eval.mul(&ca, &cb).unwrap()).unwrap();
        let out = f.enc.decode(&f.decryptor.decrypt(&prod));
        for i in 0..a.len().max(b.len()) {
            let expect = a.get(i).unwrap_or(&0.0) * b.get(i).unwrap_or(&0.0);
            prop_assert!((out[i] - expect).abs() < 1e-2, "slot {i}: {} vs {expect}", out[i]);
        }
    }

    #[test]
    fn rotation_composes(a in proptest::collection::vec(-2.0f64..2.0, 32), seed in 0u64..20) {
        let mut f = fixture(seed);
        let ct = f.encryptor.encrypt(&f.enc.encode(&a, 30.0, 0).unwrap());
        // rotate(rotate(x,1),2) == rotate(x,3)? We generated keys for 1,2
        // only; compose 1 then 2 and compare against plain rotation by 3.
        let r1 = f.eval.rotate(&ct, 1).unwrap();
        let r12 = f.eval.rotate(&r1, 2).unwrap();
        let out = f.enc.decode(&f.decryptor.decrypt(&r12));
        for i in 0..f.slots {
            let expect = a.get((i + 3) % f.slots).copied().unwrap_or(0.0);
            prop_assert!((out[i] - expect).abs() < 1e-2, "slot {i}");
        }
    }

    #[test]
    fn modswitch_then_ops_still_correct(a in msg(), seed in 0u64..20) {
        let mut f = fixture(seed);
        let ct = f.encryptor.encrypt(&f.enc.encode(&a, 30.0, 0).unwrap());
        let ms = f.eval.mod_switch(&ct).unwrap();
        let doubled = f.eval.add(&ms, &ms).unwrap();
        let out = f.enc.decode(&f.decryptor.decrypt(&doubled));
        for (i, v) in a.iter().enumerate() {
            prop_assert!((out[i] - 2.0 * v).abs() < 1e-3);
        }
    }

    #[test]
    fn plain_cipher_mixed_expression(a in msg(), k in -3.0f64..3.0, seed in 0u64..20) {
        // (a + k)·k under encryption.
        let mut f = fixture(seed);
        let ct = f.encryptor.encrypt(&f.enc.encode(&a, 30.0, 0).unwrap());
        let pk_add = f.enc.encode(&[k], 30.0, 0).unwrap();
        // The constant must broadcast: encode k into every used slot.
        let kvec = vec![k; f.slots];
        let pk_add = { let _ = pk_add; f.enc.encode(&kvec, 30.0, 0).unwrap() };
        let sum = f.eval.add_plain(&ct, &pk_add).unwrap();
        let pk_mul = f.enc.encode(&kvec, 30.0, 0).unwrap();
        let prod = f.eval.rescale(&f.eval.mul_plain(&sum, &pk_mul).unwrap()).unwrap();
        let out = f.enc.decode(&f.decryptor.decrypt(&prod));
        for i in 0..a.len() {
            let expect = (a[i] + k) * k;
            prop_assert!((out[i] - expect).abs() < 1e-2, "slot {i}: {} vs {expect}", out[i]);
        }
    }
}
