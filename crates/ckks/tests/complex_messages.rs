//! CKKS's native complex message space: encoding, homomorphic arithmetic,
//! and conjugation.

use hecate_ckks::{
    CkksEncoder, CkksParams, Decryptor, Encryptor, EvalKeys, Evaluator, KeyGenerator,
};
use hecate_math::fft::Complex64;

struct Fixture {
    enc: CkksEncoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    eval: Evaluator,
}

fn setup() -> Fixture {
    let params = CkksParams::new(128, 45, 30, 1, false).unwrap();
    let enc = CkksEncoder::new(&params);
    let mut kg = KeyGenerator::new(&params, 21);
    let pk = kg.public_key();
    let mut keys = EvalKeys::generate(&mut kg, &[1, 2], &[]);
    keys.add_conjugation(&mut kg, &[1, 2]);
    Fixture {
        encryptor: Encryptor::new(&params, pk, 22),
        decryptor: Decryptor::new(&params, kg.secret_key().clone()),
        eval: Evaluator::new(&params, keys),
        enc,
    }
}

fn msg() -> Vec<Complex64> {
    vec![
        Complex64::new(1.0, 2.0),
        Complex64::new(-0.5, 0.25),
        Complex64::new(0.0, -3.0),
        Complex64::new(2.0, 0.0),
    ]
}

#[test]
fn complex_roundtrip() {
    let f = setup();
    let vals = msg();
    let pt = f.enc.encode_complex(&vals, 30.0, 0).unwrap();
    let out = f.enc.decode_complex(&pt);
    for (o, v) in out.iter().zip(&vals) {
        assert!((*o - *v).abs() < 1e-6, "{o:?} vs {v:?}");
    }
}

#[test]
fn complex_multiplication_is_homomorphic() {
    let mut f = setup();
    let a = msg();
    let b: Vec<Complex64> = a.iter().map(|z| z.conj().scale(0.5)).collect();
    let ca = f
        .encryptor
        .encrypt(&f.enc.encode_complex(&a, 30.0, 0).unwrap());
    let cb = f
        .encryptor
        .encrypt(&f.enc.encode_complex(&b, 30.0, 0).unwrap());
    let prod = f.eval.rescale(&f.eval.mul(&ca, &cb).unwrap()).unwrap();
    let out = f.enc.decode_complex(&f.decryptor.decrypt(&prod));
    for i in 0..a.len() {
        let expect = a[i] * b[i];
        assert!(
            (out[i] - expect).abs() < 1e-2,
            "slot {i}: {:?} vs {expect:?}",
            out[i]
        );
    }
}

#[test]
fn conjugation_flips_imaginary_parts() {
    let mut f = setup();
    let vals = msg();
    let ct = f
        .encryptor
        .encrypt(&f.enc.encode_complex(&vals, 30.0, 0).unwrap());
    let conj = f.eval.conjugate(&ct).unwrap();
    assert_eq!(conj.level, ct.level);
    assert_eq!(conj.scale_bits, ct.scale_bits);
    let out = f.enc.decode_complex(&f.decryptor.decrypt(&conj));
    for (o, v) in out.iter().zip(&vals) {
        assert!((*o - v.conj()).abs() < 1e-2, "{o:?} vs {:?}", v.conj());
    }
}

#[test]
fn real_part_extraction_via_conjugation() {
    // Re(z) = (z + conj(z)) / 2 — the standard CKKS idiom.
    let mut f = setup();
    let vals = msg();
    let ct = f
        .encryptor
        .encrypt(&f.enc.encode_complex(&vals, 30.0, 0).unwrap());
    let conj = f.eval.conjugate(&ct).unwrap();
    let sum = f.eval.add(&ct, &conj).unwrap();
    let half = f.enc.encode(&vec![0.5; 64], 30.0, 0).unwrap();
    let re = f
        .eval
        .rescale(&f.eval.mul_plain(&sum, &half).unwrap())
        .unwrap();
    let out = f.enc.decode_complex(&f.decryptor.decrypt(&re));
    for (o, v) in out.iter().zip(&vals) {
        assert!((o.re - v.re).abs() < 1e-2, "{} vs {}", o.re, v.re);
        assert!(o.im.abs() < 1e-2, "imaginary residue {}", o.im);
    }
}

#[test]
fn missing_conjugation_key_reported() {
    let params = CkksParams::new(64, 45, 30, 1, false).unwrap();
    let enc = CkksEncoder::new(&params);
    let mut kg = KeyGenerator::new(&params, 31);
    let pk = kg.public_key();
    let keys = EvalKeys::generate(&mut kg, &[], &[]);
    let mut encryptor = Encryptor::new(&params, pk, 32);
    let eval = Evaluator::new(&params, keys);
    let ct = encryptor.encrypt(&enc.encode(&[1.0], 30.0, 0).unwrap());
    assert!(matches!(
        eval.conjugate(&ct),
        Err(hecate_ckks::eval::EvalError::MissingKey { .. })
    ));
}
