//! Compile-time thread-safety audit.
//!
//! The serving layer (`hecate-runtime`) shares parameters, keys, and
//! evaluators across worker threads by reference and moves ciphertexts
//! between them. That is sound because nothing in this crate uses
//! interior mutability or thread-bound state — parameters share their
//! RNS basis through `Arc`, and the only mutable state (the RNGs inside
//! `KeyGenerator` and `Encryptor`) is owned, requiring `&mut` access.
//! These assertions turn that audit into a compile-time contract: adding
//! an `Rc` or a `Cell` to any of these types breaks the build here, not
//! in a data race.

use hecate_ckks::{
    Ciphertext, CkksEncoder, CkksParams, Decryptor, Encryptor, EvalKeys, Evaluator, KeyGenerator,
    Plaintext, PublicKey, SecretKey,
};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn ckks_types_are_send_sync() {
    // Data that crosses threads.
    assert_send_sync::<Ciphertext>();
    assert_send_sync::<Plaintext>();
    // Shared-by-reference context.
    assert_send_sync::<CkksParams>();
    assert_send_sync::<CkksEncoder>();
    assert_send_sync::<Evaluator>();
    assert_send_sync::<EvalKeys>();
    assert_send_sync::<Decryptor>();
    // Key material.
    assert_send_sync::<SecretKey>();
    assert_send_sync::<PublicKey>();
    // Owned per-thread state (Send suffices for handing off; these are
    // also Sync because their RNG state needs `&mut` to advance).
    assert_send_sync::<KeyGenerator>();
    assert_send_sync::<Encryptor>();
}
