//! Plaintext and ciphertext containers.
//!
//! Both carry the two properties the HECATE type system reasons about: the
//! *scale* (tracked exactly, in log2 bits, as EVA does) and the *level*
//! (number of consumed rescale primes). The polynomial payload lives in RNS
//! form over the active prime prefix.

use hecate_math::poly::RnsPoly;

/// An encoded (but unencrypted) CKKS message.
#[derive(Debug, Clone)]
pub struct Plaintext {
    /// The encoded polynomial over the active prefix.
    pub poly: RnsPoly,
    /// Exact scale in log2 bits.
    pub scale_bits: f64,
    /// Rescaling level (consumed primes).
    pub level: usize,
}

/// An RLWE ciphertext `(c0, c1)` with `c0 + c1·s ≈ m`.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    /// The constant component.
    pub c0: RnsPoly,
    /// The `s`-linear component.
    pub c1: RnsPoly,
    /// Exact scale in log2 bits.
    pub scale_bits: f64,
    /// Rescaling level (consumed primes).
    pub level: usize,
}

impl Ciphertext {
    /// Number of active RNS primes.
    pub fn prefix(&self) -> usize {
        self.c0.prefix()
    }
}

impl Plaintext {
    /// Number of active RNS primes.
    pub fn prefix(&self) -> usize {
        self.poly.prefix()
    }
}
