//! Slot-range packing for cross-request batching.
//!
//! Slot batching serves `B` tenants from one ciphertext by giving each
//! tenant a contiguous *block* of `slots / B` slots. Inside its block a
//! tenant's logical `width`-element vector is tiled exactly like the solo
//! executor's full-vector replication (`slot j` holds `data[j % width]`),
//! so the same replicated plaintext constants act correctly on every
//! block at once. Rotations smear neighbouring blocks' data into a guard
//! band around each logical window; the compiler's slot-footprint
//! analysis bounds that reach, and [`unpack_block`] reads a tenant's
//! result out of the clean window it leaves behind.
//!
//! These are plain slot-vector helpers — encryption-agnostic, shared by
//! the backend's packed encryptor/demultiplexer and its tests.

/// Packs per-tenant logical vectors into one physical slot vector.
///
/// `tenants[b]` (length ≤ `width`, zero-padded) fills block `b`: slot
/// `b * block + j` holds `tenants[b][j % width]`. Restricted to any one
/// block this is exactly the solo executor's replication layout.
///
/// # Panics
/// Panics if `tenants.len() * block != slots`, `width` doesn't divide
/// `block`, or any tenant vector exceeds `width`.
pub fn pack_blocks(tenants: &[Vec<f64>], width: usize, block: usize, slots: usize) -> Vec<f64> {
    assert_eq!(tenants.len() * block, slots, "blocks must tile the slots");
    assert!(
        width > 0 && block.is_multiple_of(width),
        "width must divide block"
    );
    let mut out = vec![0.0; slots];
    for (b, data) in tenants.iter().enumerate() {
        assert!(data.len() <= width, "tenant vector wider than its window");
        for j in 0..block {
            let k = j % width;
            out[b * block + j] = if k < data.len() { data[k] } else { 0.0 };
        }
    }
    out
}

/// Extracts one tenant's `width`-element logical vector from a decoded
/// slot vector.
///
/// After packed execution the first `back` slots of a block are
/// contaminated by backward-smearing rotations; the clean region still
/// tiles the logical result (`slot block_start + j` holds
/// `result[j % width]` for `j >= back`). This reads each logical element
/// from its first clean occurrence — equivalently, reads `width`
/// consecutive slots starting at `block_start + back` and realigns them
/// by `back % width` in plaintext.
pub fn unpack_block(decoded: &[f64], block_start: usize, back: usize, width: usize) -> Vec<f64> {
    (0..width)
        .map(|k| decoded[block_start + back + (k + width - back % width) % width])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotl(v: &[f64], s: usize) -> Vec<f64> {
        let n = v.len();
        (0..n).map(|i| v[(i + s) % n]).collect()
    }

    #[test]
    fn pack_tiles_each_block_like_solo_replication() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0];
        let packed = pack_blocks(&[a, b], 2, 4, 8);
        assert_eq!(packed, vec![1.0, 2.0, 1.0, 2.0, 3.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn unpack_roundtrips_without_rotation() {
        let tenants = vec![vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 6.0, 7.0, 8.0]];
        let packed = pack_blocks(&tenants, 4, 8, 16);
        assert_eq!(unpack_block(&packed, 0, 0, 4), tenants[0]);
        assert_eq!(unpack_block(&packed, 8, 0, 4), tenants[1]);
    }

    #[test]
    fn unpack_realigns_after_global_rotation() {
        // A logical rotate-left by s on every tenant is realized as one
        // global rotate-left by s (forward smear) or rotate-right by
        // width-s (backward smear). Either way the clean window still
        // holds the rotated result for every tenant.
        let t0 = vec![1.0, 2.0, 3.0, 4.0];
        let t1 = vec![5.0, 6.0, 7.0, 8.0];
        let packed = pack_blocks(&[t0.clone(), t1.clone()], 4, 8, 16);
        for s in 1..4usize {
            // Forward: global rotate-left by s, fwd reach = s, back = 0.
            let fwd = rotl(&packed, s);
            assert_eq!(unpack_block(&fwd, 0, 0, 4), rotl(&t0, s), "fwd s={s}");
            assert_eq!(unpack_block(&fwd, 8, 0, 4), rotl(&t1, s), "fwd s={s}");
            // Backward: global rotate-right by 4-s (== rotate-left by
            // slots-(4-s)), back reach = 4-s.
            let bwd = rotl(&packed, 16 - (4 - s));
            let back = 4 - s;
            assert_eq!(unpack_block(&bwd, 0, back, 4), rotl(&t0, s), "bwd s={s}");
            assert_eq!(unpack_block(&bwd, 8, back, 4), rotl(&t1, s), "bwd s={s}");
        }
    }

    #[test]
    #[should_panic(expected = "blocks must tile")]
    fn pack_rejects_partial_tiling() {
        pack_blocks(&[vec![1.0]], 1, 4, 12);
    }
}
