//! CKKS encoding via the canonical embedding.
//!
//! A real vector `z ∈ R^{N/2}` is mapped to the unique real polynomial
//! `m(X) ∈ R[X]/(X^N+1)` with `m(ζ^{5^j}) = z_j` (and the conjugate
//! constraint at `ζ^{-5^j}`), where `ζ = e^{iπ/N}`. The slot ordering by
//! powers of 5 is what makes `X ↦ X^{5^r}` act as a cyclic rotation of the
//! slot vector.
//!
//! Implementation: evaluations at the odd powers `ζ^{2t+1}` are the plain
//! `N`-point DFT of the ζ-twisted coefficients, so encode = scatter slots to
//! their orbit positions → inverse FFT → untwist → scale and round; decode
//! is the reverse with an exact CRT reconstruction of each coefficient.

use crate::cipher::Plaintext;
use crate::params::CkksParams;
use hecate_math::fft::{Complex64, FftPlan};
use hecate_math::poly::RnsPoly;

/// Errors from encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// More values than slots.
    TooManyValues {
        /// Values provided.
        got: usize,
        /// Slots available.
        slots: usize,
    },
    /// An encoded coefficient overflowed the 128-bit staging integer; the
    /// scale (plus message magnitude) is too large.
    ScaleOverflow {
        /// The offending scale in bits.
        scale_bits: f64,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TooManyValues { got, slots } => {
                write!(f, "{got} values exceed {slots} slots")
            }
            EncodeError::ScaleOverflow { scale_bits } => {
                write!(f, "coefficient overflow at scale 2^{scale_bits:.1}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encoder/decoder for a fixed parameter set.
#[derive(Debug)]
pub struct CkksEncoder {
    params: CkksParams,
    fft: FftPlan,
    /// ζ^j for the twist (forward), j = 0..N.
    twist: Vec<Complex64>,
    /// Position in the odd-power table for slot j: `t_j = (5^j mod 2N − 1)/2`.
    slot_pos: Vec<usize>,
    /// Position of the conjugate of slot j.
    conj_pos: Vec<usize>,
}

impl CkksEncoder {
    /// Builds an encoder for the given parameters.
    pub fn new(params: &CkksParams) -> Self {
        let n = params.degree();
        let two_n = 2 * n;
        let fft = FftPlan::new(n);
        let twist = (0..n)
            .map(|j| Complex64::from_angle(std::f64::consts::PI * j as f64 / n as f64))
            .collect();
        let mut slot_pos = Vec::with_capacity(n / 2);
        let mut conj_pos = Vec::with_capacity(n / 2);
        let mut power = 1usize; // 5^j mod 2N
        for _ in 0..n / 2 {
            slot_pos.push((power - 1) / 2);
            conj_pos.push((two_n - power - 1) / 2);
            power = power * 5 % two_n;
        }
        CkksEncoder {
            params: params.clone(),
            fft,
            twist,
            slot_pos,
            conj_pos,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.params.degree() / 2
    }

    /// Encodes real values into a plaintext at `scale_bits` and `level`.
    ///
    /// Fewer values than slots are zero-padded.
    ///
    /// # Errors
    /// Returns an error if too many values are given or the scale overflows
    /// the 128-bit staging representation.
    pub fn encode(
        &self,
        values: &[f64],
        scale_bits: f64,
        level: usize,
    ) -> Result<Plaintext, EncodeError> {
        let complex: Vec<Complex64> = values.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        self.encode_complex(&complex, scale_bits, level)
    }

    /// Encodes complex slot values — CKKS's native message space.
    ///
    /// # Errors
    /// Same conditions as [`CkksEncoder::encode`].
    pub fn encode_complex(
        &self,
        values: &[Complex64],
        scale_bits: f64,
        level: usize,
    ) -> Result<Plaintext, EncodeError> {
        let slots = self.slots();
        if values.len() > slots {
            return Err(EncodeError::TooManyValues {
                got: values.len(),
                slots,
            });
        }
        let n = self.params.degree();
        // Scatter slots (and conjugates) into the odd-power evaluation table.
        let mut evals = vec![Complex64::default(); n];
        for (j, &z) in values.iter().enumerate() {
            evals[self.slot_pos[j]] = z;
            evals[self.conj_pos[j]] = z.conj();
        }
        // Evaluations at ζ^{2t+1} are Σ_j (a_j ζ^j)·ω^{+jt} (ω = e^{2πi/N}),
        // so the twisted coefficients are the forward DFT of the
        // evaluations divided by N.
        self.fft.forward(&mut evals);
        let scale = scale_bits.exp2() / n as f64;
        let mut coeffs = vec![0i128; n];
        let limit = 2f64.powi(124);
        for (j, e) in evals.iter().enumerate() {
            let c = (*e * self.twist[j].conj()).re * scale;
            if !c.is_finite() || c.abs() >= limit {
                return Err(EncodeError::ScaleOverflow { scale_bits });
            }
            coeffs[j] = c.round() as i128;
        }
        let prefix = self.params.prefix_at_level(level);
        let poly = RnsPoly::from_i128_coeffs(self.params.basis(), prefix, &coeffs);
        Ok(Plaintext {
            poly,
            scale_bits,
            level,
        })
    }

    /// Decodes a plaintext back to real slot values (imaginary parts are
    /// discarded; use [`CkksEncoder::decode_complex`] to keep them).
    ///
    /// The plaintext may be in either domain; decoding does not mutate it.
    pub fn decode(&self, pt: &Plaintext) -> Vec<f64> {
        self.decode_complex(pt).into_iter().map(|z| z.re).collect()
    }

    /// Decodes a plaintext back to complex slot values.
    pub fn decode_complex(&self, pt: &Plaintext) -> Vec<Complex64> {
        let mut poly = pt.poly.clone();
        poly.to_coeff(self.params.basis());
        let n = self.params.degree();
        let c = poly.prefix();
        let rec = self.params.basis().reconstructor(c);
        let mut evals = vec![Complex64::default(); n];
        let mut rs = vec![0u64; c];
        for j in 0..n {
            for (i, r) in rs.iter_mut().enumerate() {
                *r = poly.residue(i)[j];
            }
            let v = rec.reconstruct_centered_f64(&rs, pt.scale_bits);
            // Pre-scale by N to cancel the plan's 1/N normalization: the
            // evaluations are the ω^{+jt} transform *without* normalization.
            evals[j] = (Complex64::new(v, 0.0) * self.twist[j]).scale(n as f64);
        }
        self.fft.inverse(&mut evals);
        (0..self.slots()).map(|j| evals[self.slot_pos[j]]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CkksParams, CkksEncoder) {
        let params = CkksParams::new(64, 45, 30, 2, false).unwrap();
        let enc = CkksEncoder::new(&params);
        (params, enc)
    }

    #[test]
    fn roundtrip_small_vector() {
        let (_, enc) = setup();
        let vals = vec![1.0, -2.5, 3.25, 0.0, 0.125];
        let pt = enc.encode(&vals, 30.0, 0).unwrap();
        let out = enc.decode(&pt);
        for (i, &v) in vals.iter().enumerate() {
            assert!((out[i] - v).abs() < 1e-6, "slot {i}: {} vs {v}", out[i]);
        }
        for o in &out[vals.len()..] {
            assert!(o.abs() < 1e-6);
        }
    }

    #[test]
    fn roundtrip_full_slots_random() {
        let (_, enc) = setup();
        let mut rng = hecate_math::rng::Xoshiro256::seed_from_u64(1);
        let vals: Vec<f64> = (0..enc.slots())
            .map(|_| rng.next_range_f64(-10.0, 10.0))
            .collect();
        let pt = enc.encode(&vals, 35.0, 0).unwrap();
        let out = enc.decode(&pt);
        for (o, v) in out.iter().zip(&vals) {
            assert!((o - v).abs() < 1e-6);
        }
    }

    #[test]
    fn encode_at_lower_level_uses_shorter_prefix() {
        let (params, enc) = setup();
        let pt0 = enc.encode(&[1.0], 30.0, 0).unwrap();
        let pt2 = enc.encode(&[1.0], 30.0, 2).unwrap();
        assert_eq!(pt0.prefix(), params.prefix_at_level(0));
        assert_eq!(pt2.prefix(), params.prefix_at_level(2));
        assert!((enc.decode(&pt2)[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_scale_bits_supported() {
        // downscale needs plaintexts at non-power-of-two scales.
        let (_, enc) = setup();
        let pt = enc.encode(&[2.0, -4.0], 27.531, 0).unwrap();
        let out = enc.decode(&pt);
        assert!((out[0] - 2.0).abs() < 1e-5);
        assert!((out[1] + 4.0).abs() < 1e-5);
    }

    #[test]
    fn too_many_values_error() {
        let (_, enc) = setup();
        let vals = vec![0.0; enc.slots() + 1];
        assert!(matches!(
            enc.encode(&vals, 30.0, 0),
            Err(EncodeError::TooManyValues { .. })
        ));
    }

    #[test]
    fn scale_overflow_error() {
        let (_, enc) = setup();
        assert!(matches!(
            enc.encode(&[1.0], 130.0, 0),
            Err(EncodeError::ScaleOverflow { .. })
        ));
    }

    #[test]
    fn encoding_is_additively_homomorphic() {
        let (params, enc) = setup();
        let a = enc.encode(&[1.5, 2.0], 30.0, 0).unwrap();
        let b = enc.encode(&[0.25, -1.0], 30.0, 0).unwrap();
        let mut sum = a.poly.clone();
        sum.add_assign(&b.poly, params.basis());
        let pt = Plaintext {
            poly: sum,
            scale_bits: 30.0,
            level: 0,
        };
        let out = enc.decode(&pt);
        assert!((out[0] - 1.75).abs() < 1e-6);
        assert!((out[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rotation_via_automorphism_rotates_slots() {
        // The 5^r automorphism on the encoded polynomial must rotate slots
        // left by r — this is the property the evaluator's rotate relies on.
        let (params, enc) = setup();
        let vals: Vec<f64> = (0..enc.slots()).map(|i| i as f64).collect();
        let pt = enc.encode(&vals, 30.0, 0).unwrap();
        let r = 3usize;
        let g = {
            let two_n = 2 * params.degree();
            let mut g = 1usize;
            for _ in 0..r {
                g = g * 5 % two_n;
            }
            g
        };
        let rotated = Plaintext {
            poly: pt.poly.automorphism(g, params.basis()),
            scale_bits: pt.scale_bits,
            level: 0,
        };
        let out = enc.decode(&rotated);
        for j in 0..enc.slots() {
            let expect = vals[(j + r) % enc.slots()];
            assert!((out[j] - expect).abs() < 1e-6, "slot {j}");
        }
    }
}
