//! Non-consuming decrypt probes for auditing intermediate ciphertexts.
//!
//! An audit run wants to look at a ciphertext *mid-program* — decrypt it,
//! decode it, and compare against the plaintext reference — without
//! perturbing the computation. CKKS makes this safe: decryption is a
//! read-only inner product with the secret key (`Decryptor::decrypt`
//! takes `&self` and `&Ciphertext`), so probing never mutates the
//! ciphertext or the evaluator state, and a probed run stays bit-identical
//! to an unprobed one.
//!
//! [`DecryptProbe`] packages a borrowed decryptor and encoder into the
//! one-call interface the audit driver threads through the executor's
//! per-op observer.

use crate::cipher::Ciphertext;
use crate::encoder::CkksEncoder;
use crate::encrypt::Decryptor;

/// A read-only window into ciphertext contents: decrypt + decode without
/// consuming or mutating anything.
///
/// Holds references only — the probe borrows the engine's decryptor and
/// encoder for the duration of an audited run.
#[derive(Debug)]
pub struct DecryptProbe<'a> {
    decryptor: &'a Decryptor,
    encoder: &'a CkksEncoder,
}

impl<'a> DecryptProbe<'a> {
    /// A probe over the given decryptor and encoder.
    pub fn new(decryptor: &'a Decryptor, encoder: &'a CkksEncoder) -> Self {
        DecryptProbe { decryptor, encoder }
    }

    /// Decrypts and decodes `ct` into its slot vector (all slots; callers
    /// truncate to the logical vector width themselves).
    pub fn decode(&self, ct: &Ciphertext) -> Vec<f64> {
        self.encoder.decode(&self.decryptor.decrypt(ct))
    }

    /// Root-mean-square error between the decrypted slots of `ct` and
    /// `expected`, compared over the first `expected.len()` slots.
    ///
    /// This is the *measured* decoded-domain error an audit sets against
    /// the noise model's predicted RMS.
    pub fn rms_error(&self, ct: &Ciphertext, expected: &[f64]) -> f64 {
        let got = self.decode(ct);
        let n = expected.len().min(got.len());
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = expected
            .iter()
            .zip(&got)
            .take(n)
            .map(|(e, g)| (e - g) * (e - g))
            .sum();
        (sum / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encrypt::Encryptor;
    use crate::eval::{EvalKeys, Evaluator};
    use crate::keys::KeyGenerator;
    use crate::params::CkksParams;

    #[test]
    fn probe_reads_without_perturbing() {
        let params = CkksParams::new(128, 45, 30, 1, false).unwrap();
        let encoder = CkksEncoder::new(&params);
        let mut kg = KeyGenerator::new(&params, 42);
        let pk = kg.public_key();
        let keys = EvalKeys::generate(&mut kg, &[2], &[]);
        let decryptor = Decryptor::new(&params, kg.secret_key().clone());
        let eval = Evaluator::new(&params, keys);
        let mut enc = Encryptor::new(&params, pk, 7);

        let a = enc.encrypt(&encoder.encode(&[3.0], 30.0, 0).unwrap());
        let b = enc.encrypt(&encoder.encode(&[2.0], 30.0, 0).unwrap());
        let product = eval.rescale(&eval.mul(&a, &b).unwrap()).unwrap();

        let probe = DecryptProbe::new(&decryptor, &encoder);
        // Snapshot the ciphertext, probe it, and verify nothing moved.
        let before = product.clone();
        let slots = probe.decode(&product);
        assert!((slots[0] - 6.0).abs() < 1e-3);
        let err = probe.rms_error(&product, &[6.0]);
        assert!(err < 1e-3, "measured rms {err}");
        assert_eq!(product.scale_bits.to_bits(), before.scale_bits.to_bits());
        assert_eq!(product.level, before.level);
        for (x, y) in product
            .c0
            .residue(0)
            .iter()
            .zip(before.c0.residue(0).iter())
        {
            assert_eq!(x, y, "probe mutated ciphertext bits");
        }
        // Probing twice gives identical answers (read-only, deterministic).
        let again = probe.rms_error(&product, &[6.0]);
        assert_eq!(err.to_bits(), again.to_bits());
    }

    #[test]
    fn rms_error_edge_cases() {
        let params = CkksParams::new(64, 45, 30, 0, false).unwrap();
        let encoder = CkksEncoder::new(&params);
        let mut kg = KeyGenerator::new(&params, 1);
        let pk = kg.public_key();
        let decryptor = Decryptor::new(&params, kg.secret_key().clone());
        let mut enc = Encryptor::new(&params, pk, 2);
        let ct = enc.encrypt(&encoder.encode(&[1.0, 2.0], 30.0, 0).unwrap());
        let probe = DecryptProbe::new(&decryptor, &encoder);
        assert_eq!(probe.rms_error(&ct, &[]), 0.0, "empty expectation");
        // A deliberately wrong expectation reports a large error.
        assert!(probe.rms_error(&ct, &[100.0, 2.0]) > 10.0);
    }
}
