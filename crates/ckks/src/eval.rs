//! The levelled homomorphic evaluator.
//!
//! Implements the RNS-CKKS operation set the HECATE compiler targets:
//! ciphertext/plaintext addition and multiplication, negation, slot
//! rotation, `rescale` (divide by the last active prime, level +1) and
//! `modswitch` (drop the last active prime, level +1). The evaluator
//! enforces the paper's operand constraints at runtime — matching levels
//! for binary operations (C3) and matching scales for addition — so a
//! miscompiled program fails loudly rather than decrypting garbage.
//!
//! Ciphertexts are kept in NTT form between operations; `rescale`,
//! `modswitch`, rotation, and relinearization convert internally as needed.
//! This matches how SEAL executes CKKS and gives operations the latency
//! structure the paper's cost model describes: an operation at level `k`
//! touches `L+1−k` primes, so deeper levels are cheaper.

use crate::cipher::{Ciphertext, Plaintext};
use crate::keys::{
    galois_element, hoisted_decompose, key_switch_hoisted, key_switch_jobs, HoistedDecomp,
    KeyGenerator, KeySwitchKey,
};
use crate::params::CkksParams;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Tolerance (in log2 bits) when requiring two scales to be equal.
pub const SCALE_EQ_TOLERANCE_BITS: f64 = 1e-6;

/// Errors from homomorphic evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Binary operation on operands at different levels (violates C3).
    LevelMismatch {
        /// Left operand level.
        lhs: usize,
        /// Right operand level.
        rhs: usize,
    },
    /// Addition of operands with different scales.
    ScaleMismatch {
        /// Left operand scale (log2 bits).
        lhs: f64,
        /// Right operand scale (log2 bits).
        rhs: f64,
    },
    /// A relinearization or Galois key for this prefix was not generated.
    MissingKey {
        /// Description of the missing key.
        what: String,
    },
    /// Rescale or modswitch at the bottom of the modulus chain.
    BottomOfChain,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::LevelMismatch { lhs, rhs } => {
                write!(f, "operand levels differ: {lhs} vs {rhs}")
            }
            EvalError::ScaleMismatch { lhs, rhs } => {
                write!(f, "operand scales differ: 2^{lhs:.3} vs 2^{rhs:.3}")
            }
            EvalError::MissingKey { what } => write!(f, "missing evaluation key: {what}"),
            EvalError::BottomOfChain => write!(f, "no rescale prime left to consume"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The evaluation keys a program needs: relinearization keys per prefix and
/// Galois keys per `(rotation step, prefix)`.
#[derive(Debug, Default)]
pub struct EvalKeys {
    relin: HashMap<usize, KeySwitchKey>,
    galois: HashMap<(usize, usize), KeySwitchKey>,
    conj: HashMap<usize, KeySwitchKey>,
}

impl EvalKeys {
    /// Generates exactly the requested keys.
    ///
    /// * `relin_prefixes` — prefix lengths at which ct×ct multiplication
    ///   occurs;
    /// * `rotations` — `(step, prefix)` pairs at which rotation occurs.
    ///
    /// Rotation steps are canonicalized modulo the slot count before
    /// generation, so wrapped steps (`slots + k`) share one key with
    /// their canonical form `k` and full rotations (`step ≡ 0`) generate
    /// no key at all — they are the identity.
    pub fn generate(
        kg: &mut KeyGenerator,
        relin_prefixes: &[usize],
        rotations: &[(usize, usize)],
    ) -> Self {
        let mut keys = EvalKeys::default();
        for &c in relin_prefixes {
            keys.relin.entry(c).or_insert_with(|| kg.relin_key(c));
        }
        for &(step, c) in rotations {
            let step = kg.params().canonical_step(step);
            if step == 0 {
                continue;
            }
            keys.galois
                .entry((step, c))
                .or_insert_with(|| kg.galois_key(step, c));
        }
        keys
    }

    /// Number of distinct Galois keys held (diagnostic: canonicalization
    /// must keep this at one per distinct `(step mod slots, prefix)`).
    pub fn galois_key_count(&self) -> usize {
        self.galois.len()
    }

    /// Adds conjugation keys for the given prefixes.
    pub fn add_conjugation(&mut self, kg: &mut KeyGenerator, prefixes: &[usize]) {
        for &c in prefixes {
            self.conj.entry(c).or_insert_with(|| kg.conjugation_key(c));
        }
    }

    /// Merges another key set into this one.
    pub fn extend(&mut self, other: EvalKeys) {
        self.relin.extend(other.relin);
        self.galois.extend(other.galois);
        self.conj.extend(other.conj);
    }
}

/// The homomorphic evaluator.
#[derive(Debug)]
pub struct Evaluator {
    params: CkksParams,
    keys: EvalKeys,
    /// Scoped threads for the per-limb kernel inner loops (`1` = serial).
    kernel_jobs: usize,
    /// Galois slot permutations by Galois element; prime-independent, so
    /// one entry serves every limb of every ciphertext.
    perms: Mutex<HashMap<usize, Arc<Vec<usize>>>>,
}

impl Evaluator {
    /// Creates an evaluator over the given parameters and keys.
    pub fn new(params: &CkksParams, keys: EvalKeys) -> Self {
        Evaluator {
            params: params.clone(),
            keys,
            kernel_jobs: 1,
            perms: Mutex::new(HashMap::new()),
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Sets the per-limb kernel parallelism (`1` = serial). Results are
    /// bit-identical at every job count; this only trades wall-clock
    /// time for threads.
    pub fn set_kernel_jobs(&mut self, jobs: usize) {
        self.kernel_jobs = jobs.max(1);
    }

    /// The configured per-limb kernel parallelism.
    pub fn kernel_jobs(&self) -> usize {
        self.kernel_jobs
    }

    /// The cached Galois slot permutation for element `g`.
    fn galois_perm(&self, g: usize) -> Arc<Vec<usize>> {
        let mut cache = self.perms.lock().unwrap_or_else(|e| e.into_inner());
        cache
            .entry(g)
            .or_insert_with(|| Arc::new(self.params.basis().ntt(0).galois_permutation(g)))
            .clone()
    }

    fn check_levels(a: usize, b: usize) -> Result<(), EvalError> {
        if a != b {
            return Err(EvalError::LevelMismatch { lhs: a, rhs: b });
        }
        Ok(())
    }

    fn check_scales(a: f64, b: f64) -> Result<(), EvalError> {
        if (a - b).abs() > SCALE_EQ_TOLERANCE_BITS {
            return Err(EvalError::ScaleMismatch { lhs: a, rhs: b });
        }
        Ok(())
    }

    /// Homomorphic ciphertext addition. Requires equal levels and scales.
    ///
    /// # Errors
    /// Returns [`EvalError::LevelMismatch`] or [`EvalError::ScaleMismatch`].
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        Self::check_levels(a.level, b.level)?;
        Self::check_scales(a.scale_bits, b.scale_bits)?;
        let basis = self.params.basis();
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        c0.add_assign(&b.c0, basis);
        c1.add_assign(&b.c1, basis);
        Ok(Ciphertext {
            c0,
            c1,
            scale_bits: a.scale_bits,
            level: a.level,
        })
    }

    /// Homomorphic ciphertext subtraction (same constraints as [`add`]).
    ///
    /// [`add`]: Evaluator::add
    ///
    /// # Errors
    /// Returns [`EvalError::LevelMismatch`] or [`EvalError::ScaleMismatch`].
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        let mut neg = b.clone();
        neg.c0.negate(self.params.basis());
        neg.c1.negate(self.params.basis());
        self.add(a, &neg)
    }

    /// Negates a ciphertext.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let basis = self.params.basis();
        let mut out = a.clone();
        out.c0.negate(basis);
        out.c1.negate(basis);
        out
    }

    /// Adds a plaintext to a ciphertext (equal level and scale required).
    ///
    /// # Errors
    /// Returns [`EvalError::LevelMismatch`] or [`EvalError::ScaleMismatch`].
    pub fn add_plain(&self, a: &Ciphertext, p: &Plaintext) -> Result<Ciphertext, EvalError> {
        Self::check_levels(a.level, p.level)?;
        Self::check_scales(a.scale_bits, p.scale_bits)?;
        let basis = self.params.basis();
        let mut m = p.poly.clone();
        m.to_ntt(basis);
        let mut c0 = a.c0.clone();
        c0.add_assign(&m, basis);
        Ok(Ciphertext {
            c0,
            c1: a.c1.clone(),
            scale_bits: a.scale_bits,
            level: a.level,
        })
    }

    /// Multiplies a ciphertext by a plaintext. Scales multiply (bits add);
    /// levels must match.
    ///
    /// # Errors
    /// Returns [`EvalError::LevelMismatch`].
    pub fn mul_plain(&self, a: &Ciphertext, p: &Plaintext) -> Result<Ciphertext, EvalError> {
        Self::check_levels(a.level, p.level)?;
        let basis = self.params.basis();
        let mut m = p.poly.clone();
        m.to_ntt(basis);
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        c0.mul_assign_pointwise(&m, basis);
        c1.mul_assign_pointwise(&m, basis);
        Ok(Ciphertext {
            c0,
            c1,
            scale_bits: a.scale_bits + p.scale_bits,
            level: a.level,
        })
    }

    /// Multiplies two ciphertexts and relinearizes. Scales multiply (bits
    /// add); levels must match; the result is *not* rescaled.
    ///
    /// # Errors
    /// Returns [`EvalError::LevelMismatch`] if levels differ or
    /// [`EvalError::MissingKey`] if no relinearization key was generated for
    /// this prefix.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, EvalError> {
        Self::check_levels(a.level, b.level)?;
        let c = a.prefix();
        let rk = self
            .keys
            .relin
            .get(&c)
            .ok_or_else(|| EvalError::MissingKey {
                what: format!("relin key at prefix {c}"),
            })?;
        let basis = self.params.basis();
        // (c0, c1)·(d0, d1) = (c0d0, c0d1 + c1d0, c1d1)
        let mut t0 = a.c0.clone();
        t0.mul_assign_pointwise(&b.c0, basis);
        let mut t1a = a.c0.clone();
        t1a.mul_assign_pointwise(&b.c1, basis);
        let mut t1b = a.c1.clone();
        t1b.mul_assign_pointwise(&b.c0, basis);
        t1a.add_assign(&t1b, basis);
        let mut t2 = a.c1.clone();
        t2.mul_assign_pointwise(&b.c1, basis);
        // Relinearize the quadratic component.
        t2.to_coeff_jobs(basis, self.kernel_jobs);
        let (kb, ka) = key_switch_jobs(&t2, rk, &self.params, self.kernel_jobs);
        let mut kb = kb;
        let mut ka = ka;
        kb.to_ntt_jobs(basis, self.kernel_jobs);
        ka.to_ntt_jobs(basis, self.kernel_jobs);
        t0.add_assign(&kb, basis);
        t1a.add_assign(&ka, basis);
        Ok(Ciphertext {
            c0: t0,
            c1: t1a,
            scale_bits: a.scale_bits + b.scale_bits,
            level: a.level,
        })
    }

    /// Squares a ciphertext (same as [`mul`] with itself).
    ///
    /// [`mul`]: Evaluator::mul
    ///
    /// # Errors
    /// Returns [`EvalError::MissingKey`] if no relinearization key exists.
    pub fn square(&self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        self.mul(a, a)
    }

    /// Rescales: divides by the last active prime and increases the level.
    /// The exact scale decreases by `log2(q_dropped)`.
    ///
    /// # Errors
    /// Returns [`EvalError::BottomOfChain`] at the end of the chain.
    pub fn rescale(&self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        if a.prefix() <= 1 {
            return Err(EvalError::BottomOfChain);
        }
        let basis = self.params.basis();
        let dropped_bits = (basis.prime(a.prefix() - 1) as f64).log2();
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        c0.rescale_last(basis);
        c1.rescale_last(basis);
        c0.to_ntt(basis);
        c1.to_ntt(basis);
        Ok(Ciphertext {
            c0,
            c1,
            scale_bits: a.scale_bits - dropped_bits,
            level: a.level + 1,
        })
    }

    /// Switches modulus down: drops the last active prime, increasing the
    /// level without changing the scale.
    ///
    /// # Errors
    /// Returns [`EvalError::BottomOfChain`] at the end of the chain.
    pub fn mod_switch(&self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        if a.prefix() <= 1 {
            return Err(EvalError::BottomOfChain);
        }
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        c0.drop_last();
        c1.drop_last();
        Ok(Ciphertext {
            c0,
            c1,
            scale_bits: a.scale_bits,
            level: a.level + 1,
        })
    }

    /// Rotates slot vectors left by `step` (cyclic over `N/2` slots).
    ///
    /// # Errors
    /// Returns [`EvalError::MissingKey`] if no Galois key was generated for
    /// `(step, prefix)`.
    pub fn rotate(&self, a: &Ciphertext, step: usize) -> Result<Ciphertext, EvalError> {
        let step = self.params.canonical_step(step);
        if step == 0 {
            return Ok(a.clone());
        }
        let gk = self.galois_key_for(step, a.prefix())?;
        let basis = self.params.basis();
        let g = galois_element(&self.params, step);
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        c0.to_coeff_jobs(basis, self.kernel_jobs);
        c1.to_coeff_jobs(basis, self.kernel_jobs);
        let c0_rot = c0.automorphism(g, basis);
        let c1_rot = c1.automorphism(g, basis);
        let (kb, ka) = key_switch_jobs(&c1_rot, gk, &self.params, self.kernel_jobs);
        let mut out0 = c0_rot;
        out0.add_assign(&kb, basis);
        out0.to_ntt_jobs(basis, self.kernel_jobs);
        let mut out1 = ka;
        out1.to_ntt_jobs(basis, self.kernel_jobs);
        Ok(Ciphertext {
            c0: out0,
            c1: out1,
            scale_bits: a.scale_bits,
            level: a.level,
        })
    }

    /// The Galois key for a canonical step at a prefix.
    fn galois_key_for(&self, step: usize, c: usize) -> Result<&KeySwitchKey, EvalError> {
        self.keys
            .galois
            .get(&(step, c))
            .ok_or_else(|| EvalError::MissingKey {
                what: format!("galois key for step {step} at prefix {c}"),
            })
    }

    /// Precomputes the shared (Halevi–Shoup hoisted) part of rotating
    /// `a`: the RNS digit decomposition of `c1` over the extended basis.
    /// One decomposition serves every [`rotate_hoisted`] of the same
    /// ciphertext — the decomposition's `c·(c+1)` forward NTTs, which
    /// dominate a rotation, are paid once instead of once per step.
    ///
    /// [`rotate_hoisted`]: Evaluator::rotate_hoisted
    pub fn hoist(&self, a: &Ciphertext) -> HoistedDecomp {
        let mut c1 = a.c1.clone();
        c1.to_coeff_jobs(self.params.basis(), self.kernel_jobs);
        hoisted_decompose(&c1, &self.params, self.kernel_jobs)
    }

    /// Rotates using a decomposition precomputed by [`Evaluator::hoist`]
    /// on the *same* ciphertext. Bit-identical to [`Evaluator::rotate`]:
    /// digit decomposition commutes with the Galois automorphism, which
    /// acts on the evaluation domain as a pure slot permutation, so the
    /// key-switch accumulator sees exactly the same limb values in the
    /// same order.
    ///
    /// # Errors
    /// Returns [`EvalError::MissingKey`] if no Galois key was generated
    /// for `(step, prefix)`.
    ///
    /// # Panics
    /// Panics if `hd` was hoisted at a different prefix than `a`.
    pub fn rotate_hoisted(
        &self,
        a: &Ciphertext,
        hd: &HoistedDecomp,
        step: usize,
    ) -> Result<Ciphertext, EvalError> {
        let step = self.params.canonical_step(step);
        if step == 0 {
            return Ok(a.clone());
        }
        let c = a.prefix();
        assert_eq!(hd.prefix(), c, "hoisted decomposition prefix mismatch");
        let gk = self.galois_key_for(step, c)?;
        let basis = self.params.basis();
        let g = galois_element(&self.params, step);
        let perm = self.galois_perm(g);
        let (kb, ka) = key_switch_hoisted(hd, &perm, gk, &self.params, self.kernel_jobs);
        // c0 rotates in the evaluation domain directly — same permutation,
        // no coefficient-domain round trip.
        let mut out0 = a.c0.automorphism_ntt(&perm);
        let mut kb = kb;
        kb.to_ntt_jobs(basis, self.kernel_jobs);
        out0.add_assign(&kb, basis);
        let mut out1 = ka;
        out1.to_ntt_jobs(basis, self.kernel_jobs);
        Ok(Ciphertext {
            c0: out0,
            c1: out1,
            scale_bits: a.scale_bits,
            level: a.level,
        })
    }

    /// Complex-conjugates every slot (the Galois automorphism `X ↦ X^{2N−1}`).
    ///
    /// # Errors
    /// Returns [`EvalError::MissingKey`] if no conjugation key was generated
    /// for this prefix (see [`EvalKeys::add_conjugation`]).
    pub fn conjugate(&self, a: &Ciphertext) -> Result<Ciphertext, EvalError> {
        let c = a.prefix();
        let ck = self
            .keys
            .conj
            .get(&c)
            .ok_or_else(|| EvalError::MissingKey {
                what: format!("conjugation key at prefix {c}"),
            })?;
        let basis = self.params.basis();
        let g = 2 * self.params.degree() - 1;
        let mut c0 = a.c0.clone();
        let mut c1 = a.c1.clone();
        c0.to_coeff_jobs(basis, self.kernel_jobs);
        c1.to_coeff_jobs(basis, self.kernel_jobs);
        let c0_conj = c0.automorphism(g, basis);
        let c1_conj = c1.automorphism(g, basis);
        let (kb, ka) = key_switch_jobs(&c1_conj, ck, &self.params, self.kernel_jobs);
        let mut out0 = c0_conj;
        out0.add_assign(&kb, basis);
        out0.to_ntt_jobs(basis, self.kernel_jobs);
        let mut out1 = ka;
        out1.to_ntt_jobs(basis, self.kernel_jobs);
        Ok(Ciphertext {
            c0: out0,
            c1: out1,
            scale_bits: a.scale_bits,
            level: a.level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::CkksEncoder;
    use crate::encrypt::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;

    struct Fixture {
        params: CkksParams,
        enc: CkksEncoder,
        encryptor: Encryptor,
        decryptor: Decryptor,
        eval: Evaluator,
    }

    fn setup(levels: usize, rotations: &[usize]) -> Fixture {
        let params = CkksParams::new(128, 45, 30, levels, false).unwrap();
        let enc = CkksEncoder::new(&params);
        let mut kg = KeyGenerator::new(&params, 11);
        let pk = kg.public_key();
        let relin: Vec<usize> = (1..=params.basis().chain_len()).collect();
        let rots: Vec<(usize, usize)> = rotations
            .iter()
            .flat_map(|&s| (1..=params.basis().chain_len()).map(move |c| (s, c)))
            .collect();
        let keys = EvalKeys::generate(&mut kg, &relin, &rots);
        Fixture {
            enc,
            encryptor: Encryptor::new(&params, pk, 13),
            decryptor: Decryptor::new(&params, kg.secret_key().clone()),
            eval: Evaluator::new(&params, keys),
            params,
        }
    }

    fn roundtrip(f: &Fixture, ct: &Ciphertext) -> Vec<f64> {
        f.enc.decode(&f.decryptor.decrypt(ct))
    }

    #[test]
    fn add_and_sub() {
        let mut f = setup(2, &[]);
        let a = f
            .encryptor
            .encrypt(&f.enc.encode(&[1.0, 2.0], 30.0, 0).unwrap());
        let b = f
            .encryptor
            .encrypt(&f.enc.encode(&[0.5, -1.0], 30.0, 0).unwrap());
        let sum = f.eval.add(&a, &b).unwrap();
        let out = roundtrip(&f, &sum);
        assert!((out[0] - 1.5).abs() < 1e-3 && (out[1] - 1.0).abs() < 1e-3);
        let diff = f.eval.sub(&a, &b).unwrap();
        let out = roundtrip(&f, &diff);
        assert!((out[0] - 0.5).abs() < 1e-3 && (out[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn negate_flips_sign() {
        let mut f = setup(1, &[]);
        let a = f.encryptor.encrypt(&f.enc.encode(&[2.5], 30.0, 0).unwrap());
        let out = roundtrip(&f, &f.eval.negate(&a));
        assert!((out[0] + 2.5).abs() < 1e-3);
    }

    #[test]
    fn plain_ops() {
        let mut f = setup(2, &[]);
        let a = f.encryptor.encrypt(&f.enc.encode(&[3.0], 30.0, 0).unwrap());
        let p_add = f.enc.encode(&[1.5], 30.0, 0).unwrap();
        let out = roundtrip(&f, &f.eval.add_plain(&a, &p_add).unwrap());
        assert!((out[0] - 4.5).abs() < 1e-3);

        let p_mul = f.enc.encode(&[2.0], 30.0, 0).unwrap();
        let prod = f.eval.mul_plain(&a, &p_mul).unwrap();
        assert!((prod.scale_bits - 60.0).abs() < 1e-9);
        let out = roundtrip(&f, &prod);
        assert!((out[0] - 6.0).abs() < 1e-3);
    }

    #[test]
    fn mul_then_rescale() {
        let mut f = setup(2, &[]);
        let a = f
            .encryptor
            .encrypt(&f.enc.encode(&[3.0, -1.5], 30.0, 0).unwrap());
        let b = f
            .encryptor
            .encrypt(&f.enc.encode(&[2.0, 4.0], 30.0, 0).unwrap());
        let prod = f.eval.mul(&a, &b).unwrap();
        assert_eq!(prod.level, 0);
        assert!((prod.scale_bits - 60.0).abs() < 1e-9);
        let rs = f.eval.rescale(&prod).unwrap();
        assert_eq!(rs.level, 1);
        // Exact scale is 60 − log2(q_dropped) ≈ 30.
        assert!((rs.scale_bits - 30.0).abs() < 0.1);
        let out = roundtrip(&f, &rs);
        assert!((out[0] - 6.0).abs() < 1e-3, "{}", out[0]);
        assert!((out[1] + 6.0).abs() < 1e-3, "{}", out[1]);
    }

    #[test]
    fn deep_multiplication_chain() {
        // x^8 via three squarings with rescales: exercises every level.
        let mut f = setup(3, &[]);
        let x = f.encryptor.encrypt(&f.enc.encode(&[1.1], 30.0, 0).unwrap());
        let mut cur = x;
        for _ in 0..3 {
            cur = f.eval.rescale(&f.eval.square(&cur).unwrap()).unwrap();
        }
        assert_eq!(cur.level, 3);
        let out = roundtrip(&f, &cur);
        let expect = 1.1f64.powi(8);
        assert!((out[0] - expect).abs() < 2e-2, "{} vs {expect}", out[0]);
    }

    #[test]
    fn modswitch_preserves_value_and_scale() {
        let mut f = setup(2, &[]);
        let a = f
            .encryptor
            .encrypt(&f.enc.encode(&[7.25], 30.0, 0).unwrap());
        let ms = f.eval.mod_switch(&a).unwrap();
        assert_eq!(ms.level, 1);
        assert_eq!(ms.scale_bits, 30.0);
        let out = roundtrip(&f, &ms);
        assert!((out[0] - 7.25).abs() < 1e-3);
    }

    #[test]
    fn rotation_rotates_slots() {
        let mut f = setup(1, &[1, 5]);
        let slots = f.params.slots();
        let vals: Vec<f64> = (0..slots).map(|i| (i % 7) as f64).collect();
        let ct = f.encryptor.encrypt(&f.enc.encode(&vals, 30.0, 0).unwrap());
        for step in [1usize, 5] {
            let rot = f.eval.rotate(&ct, step).unwrap();
            let out = roundtrip(&f, &rot);
            for j in 0..slots {
                let expect = vals[(j + step) % slots];
                assert!(
                    (out[j] - expect).abs() < 1e-2,
                    "step {step} slot {j}: {} vs {expect}",
                    out[j]
                );
            }
        }
    }

    #[test]
    fn rotate_by_full_slot_count_is_identity() {
        let mut f = setup(1, &[]);
        let slots = f.params.slots();
        let ct = f.encryptor.encrypt(&f.enc.encode(&[4.0], 30.0, 0).unwrap());
        // No Galois keys were generated at all: a full rotation must not
        // need one (its canonical step is 0).
        let rot = f.eval.rotate(&ct, slots).unwrap();
        assert_eq!(rot.c0, ct.c0);
        assert_eq!(rot.c1, ct.c1);
        let double = f.eval.rotate(&ct, 2 * slots).unwrap();
        assert_eq!(double.c0, ct.c0);
    }

    #[test]
    fn rotate_wrapped_step_equals_canonical_step() {
        // Keys requested under the *wrapped* step must be found when
        // rotating by either form, and the results must be bit-identical.
        let params = CkksParams::new(128, 45, 30, 1, false).unwrap();
        let slots = params.slots();
        let enc = CkksEncoder::new(&params);
        let mut kg = KeyGenerator::new(&params, 11);
        let pk = kg.public_key();
        let chain: Vec<usize> = (1..=params.basis().chain_len()).collect();
        // Request step 3 twice — once wrapped — plus a full rotation.
        let rots: Vec<(usize, usize)> = chain
            .iter()
            .flat_map(|&c| [(slots + 3, c), (3, c), (slots, c)])
            .collect();
        let keys = EvalKeys::generate(&mut kg, &[], &rots);
        assert_eq!(
            keys.galois_key_count(),
            chain.len(),
            "wrapped and zero-equivalent steps must not generate redundant keys"
        );
        let eval = Evaluator::new(&params, keys);
        let mut encryptor = Encryptor::new(&params, pk, 13);
        let vals: Vec<f64> = (0..slots).map(|i| (i % 5) as f64).collect();
        let ct = encryptor.encrypt(&enc.encode(&vals, 30.0, 0).unwrap());
        let canonical = eval.rotate(&ct, 3).unwrap();
        let wrapped = eval.rotate(&ct, slots + 3).unwrap();
        assert_eq!(wrapped.c0, canonical.c0, "rotate(slots+3) == rotate(3)");
        assert_eq!(wrapped.c1, canonical.c1);
    }

    #[test]
    fn hoisted_rotation_is_bit_identical_to_plain_rotation() {
        for jobs in [1usize, 2, 4] {
            let mut f = setup(1, &[1, 5]);
            f.eval.set_kernel_jobs(jobs);
            let slots = f.params.slots();
            let vals: Vec<f64> = (0..slots).map(|i| (i % 7) as f64).collect();
            let ct = f.encryptor.encrypt(&f.enc.encode(&vals, 30.0, 0).unwrap());
            let hd = f.eval.hoist(&ct);
            for step in [1usize, 5, slots + 1] {
                let plain = f.eval.rotate(&ct, step).unwrap();
                let hoisted = f.eval.rotate_hoisted(&ct, &hd, step).unwrap();
                assert_eq!(hoisted.c0, plain.c0, "jobs {jobs} step {step}");
                assert_eq!(hoisted.c1, plain.c1, "jobs {jobs} step {step}");
                assert_eq!(hoisted.scale_bits, plain.scale_bits);
                assert_eq!(hoisted.level, plain.level);
            }
        }
    }

    #[test]
    fn kernel_jobs_do_not_change_mul_or_rotate() {
        let mut base = setup(2, &[1]);
        let vals = [1.5f64, -0.25, 3.0];
        let a = base
            .encryptor
            .encrypt(&base.enc.encode(&vals, 30.0, 0).unwrap());
        let seq_mul = base.eval.mul(&a, &a).unwrap();
        let seq_rot = base.eval.rotate(&a, 1).unwrap();
        for jobs in [2usize, 4] {
            base.eval.set_kernel_jobs(jobs);
            let par_mul = base.eval.mul(&a, &a).unwrap();
            let par_rot = base.eval.rotate(&a, 1).unwrap();
            assert_eq!(par_mul.c0, seq_mul.c0, "jobs = {jobs}");
            assert_eq!(par_mul.c1, seq_mul.c1, "jobs = {jobs}");
            assert_eq!(par_rot.c0, seq_rot.c0, "jobs = {jobs}");
            assert_eq!(par_rot.c1, seq_rot.c1, "jobs = {jobs}");
        }
        base.eval.set_kernel_jobs(1);
    }

    #[test]
    fn rotate_by_zero_is_identity() {
        let mut f = setup(1, &[]);
        let ct = f.encryptor.encrypt(&f.enc.encode(&[9.0], 30.0, 0).unwrap());
        let rot = f.eval.rotate(&ct, 0).unwrap();
        let out = roundtrip(&f, &rot);
        assert!((out[0] - 9.0).abs() < 1e-3);
    }

    #[test]
    fn constraint_violations_reported() {
        let mut f = setup(2, &[]);
        let a = f.encryptor.encrypt(&f.enc.encode(&[1.0], 30.0, 0).unwrap());
        let b = f.encryptor.encrypt(&f.enc.encode(&[1.0], 30.0, 1).unwrap());
        assert!(matches!(
            f.eval.add(&a, &b),
            Err(EvalError::LevelMismatch { .. })
        ));
        let c = f.encryptor.encrypt(&f.enc.encode(&[1.0], 31.0, 0).unwrap());
        assert!(matches!(
            f.eval.add(&a, &c),
            Err(EvalError::ScaleMismatch { .. })
        ));
        let rot_err = f.eval.rotate(&a, 3);
        assert!(matches!(rot_err, Err(EvalError::MissingKey { .. })));
    }

    #[test]
    fn bottom_of_chain_reported() {
        let mut f = setup(1, &[]);
        let a = f.encryptor.encrypt(&f.enc.encode(&[1.0], 30.0, 1).unwrap());
        assert!(matches!(f.eval.rescale(&a), Err(EvalError::BottomOfChain)));
        assert!(matches!(
            f.eval.mod_switch(&a),
            Err(EvalError::BottomOfChain)
        ));
    }

    #[test]
    fn relative_error_stays_below_error_bound() {
        // The paper's accepted error bound is 2^-8; a single mul+rescale at
        // waterline 30 must be far below it.
        let mut f = setup(1, &[]);
        let vals = [0.5f64, 1.0, -0.75];
        let a = f.encryptor.encrypt(&f.enc.encode(&vals, 30.0, 0).unwrap());
        let sq = f.eval.rescale(&f.eval.square(&a).unwrap()).unwrap();
        let out = roundtrip(&f, &sq);
        for (o, v) in out.iter().zip(&vals) {
            let err = (o - v * v).abs();
            assert!(err < 2f64.powi(-8), "error {err}");
        }
    }
}
