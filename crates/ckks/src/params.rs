//! CKKS encryption parameters and the 128-bit security table.
//!
//! A parameter set fixes the ring degree `N`, the RNS modulus chain
//! `q_0, …, q_L` (one large *base* prime that carries the decoded message
//! plus `L` rescale primes near `2^{S_f}`), and the special key-switching
//! prime `P`. The homomorphicencryption.org standard bounds the total
//! modulus size for a given degree at 128-bit security; the compiler's
//! parameter selection consults the same table.

use hecate_math::rns::RnsBasis;
use std::sync::Arc;

/// Maximum total modulus bits (chain + special prime) for 128-bit security
/// with ternary secrets, per the homomorphicencryption.org standard.
///
/// Returns `None` for degrees outside the table.
///
/// # Example
/// ```
/// use hecate_ckks::params::max_modulus_bits_128;
/// assert_eq!(max_modulus_bits_128(8192), Some(218));
/// assert_eq!(max_modulus_bits_128(1000), None);
/// ```
pub fn max_modulus_bits_128(degree: usize) -> Option<u32> {
    match degree {
        1024 => Some(27),
        2048 => Some(54),
        4096 => Some(109),
        8192 => Some(218),
        16384 => Some(438),
        32768 => Some(881),
        _ => None,
    }
}

/// Smallest standard ring degree whose 128-bit security bound admits
/// `total_bits` of modulus, if any.
///
/// This is the degree-selection rule EVA and HECATE use: pick the cheapest
/// ring that is still secure for the required modulus chain.
pub fn min_secure_degree(total_bits: u32) -> Option<usize> {
    for degree in [1024usize, 2048, 4096, 8192, 16384, 32768] {
        if let Some(max) = max_modulus_bits_128(degree) {
            if total_bits <= max {
                return Some(degree);
            }
        }
    }
    None
}

/// Errors from parameter construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// The requested degree is not a supported power of two.
    BadDegree(usize),
    /// The modulus chain exceeds the 128-bit security bound for the degree.
    Insecure {
        /// Ring degree requested.
        degree: usize,
        /// Total modulus bits requested.
        total_bits: u32,
        /// Maximum allowed by the security table.
        max_bits: u32,
    },
    /// A prime size was out of the supported range.
    BadPrimeBits(u32),
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::BadDegree(n) => write!(f, "unsupported ring degree {n}"),
            ParamsError::Insecure {
                degree,
                total_bits,
                max_bits,
            } => write!(
                f,
                "modulus of {total_bits} bits exceeds the 128-bit security bound of {max_bits} bits for degree {degree}"
            ),
            ParamsError::BadPrimeBits(b) => write!(f, "prime size {b} bits out of range"),
        }
    }
}

impl std::error::Error for ParamsError {}

/// A complete CKKS parameter set: ring degree plus RNS basis.
///
/// Cheap to clone (the basis is shared behind an [`Arc`]).
#[derive(Debug, Clone)]
pub struct CkksParams {
    basis: Arc<RnsBasis>,
    degree: usize,
    levels: usize,
    secure: bool,
}

impl CkksParams {
    /// Builds a parameter set.
    ///
    /// * `degree` — ring degree `N` (power of two, ≥ 8);
    /// * `base_prime_bits` — size of `q_0`, which must exceed the largest
    ///   output scale;
    /// * `rescale_prime_bits` — size of the `L` rescale primes (the rescale
    ///   factor `S_f`);
    /// * `levels` — number of rescale primes `L` (maximum rescaling level);
    /// * `enforce_security` — when `true`, reject chains beyond the 128-bit
    ///   bound for `degree`; tests use `false` with small rings.
    ///
    /// The special prime is sized like the largest chain prime.
    ///
    /// # Errors
    /// Returns [`ParamsError`] if the degree or prime sizes are unsupported,
    /// or if `enforce_security` is set and the chain is too large.
    pub fn new(
        degree: usize,
        base_prime_bits: u32,
        rescale_prime_bits: u32,
        levels: usize,
        enforce_security: bool,
    ) -> Result<Self, ParamsError> {
        if !degree.is_power_of_two() || degree < 8 {
            return Err(ParamsError::BadDegree(degree));
        }
        for b in [base_prime_bits, rescale_prime_bits] {
            if !(20..=61).contains(&b) {
                return Err(ParamsError::BadPrimeBits(b));
            }
        }
        let special_bits = base_prime_bits.max(rescale_prime_bits);
        let total_bits = base_prime_bits + rescale_prime_bits * levels as u32 + special_bits;
        let secure = max_modulus_bits_128(degree).is_some_and(|max| total_bits <= max);
        if enforce_security && !secure {
            let max_bits = max_modulus_bits_128(degree).unwrap_or(0);
            return Err(ParamsError::Insecure {
                degree,
                total_bits,
                max_bits,
            });
        }
        let basis = RnsBasis::generate(
            degree,
            base_prime_bits,
            rescale_prime_bits,
            levels + 1,
            special_bits,
        );
        Ok(CkksParams {
            basis: Arc::new(basis),
            degree,
            levels,
            secure,
        })
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of message slots (`N/2`).
    pub fn slots(&self) -> usize {
        self.degree / 2
    }

    /// The canonical left-rotation step: rotations act on `N/2` slots,
    /// so every step is equivalent to `step mod N/2`. All key lookup and
    /// key generation must go through this one reduction so that wrapped
    /// steps (e.g. `slots + k`) share keys with their canonical form.
    pub fn canonical_step(&self, step: usize) -> usize {
        step % self.slots()
    }

    /// Maximum rescaling level `L` (number of rescale primes).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The shared RNS basis.
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    /// Whether this parameter set satisfies the 128-bit security table.
    pub fn is_secure_128(&self) -> bool {
        self.secure
    }

    /// Active prime count for rescaling level `k` (level 0 = full chain).
    ///
    /// # Panics
    /// Panics if `level > L`.
    pub fn prefix_at_level(&self, level: usize) -> usize {
        assert!(level <= self.levels, "level {level} beyond chain");
        self.levels + 1 - level
    }

    /// Exact log2 of the prime consumed by a rescale *from* level `k`
    /// (that is, the last active prime at level `k`).
    pub fn rescale_bits_at_level(&self, level: usize) -> f64 {
        let c = self.prefix_at_level(level);
        (self.basis.prime(c - 1) as f64).log2()
    }

    /// Exact log2 of the modulus available at level `k` (the C1 bound).
    pub fn modulus_bits_at_level(&self, level: usize) -> f64 {
        self.basis.prefix_log2(self.prefix_at_level(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_table_monotone() {
        let mut prev = 0;
        for d in [1024usize, 2048, 4096, 8192, 16384, 32768] {
            let m = max_modulus_bits_128(d).unwrap();
            assert!(m > prev);
            prev = m;
        }
    }

    #[test]
    fn min_secure_degree_picks_cheapest() {
        assert_eq!(min_secure_degree(27), Some(1024));
        assert_eq!(min_secure_degree(28), Some(2048));
        assert_eq!(min_secure_degree(200), Some(8192));
        assert_eq!(min_secure_degree(438), Some(16384));
        assert_eq!(min_secure_degree(882), None);
    }

    #[test]
    fn params_build_and_expose_chain() {
        let p = CkksParams::new(64, 45, 30, 3, false).unwrap();
        assert_eq!(p.degree(), 64);
        assert_eq!(p.slots(), 32);
        assert_eq!(p.levels(), 3);
        assert_eq!(p.basis().chain_len(), 4);
        assert_eq!(p.prefix_at_level(0), 4);
        assert_eq!(p.prefix_at_level(3), 1);
        // Rescale from level 0 consumes the last chain prime (≈ 30 bits).
        assert!((p.rescale_bits_at_level(0) - 30.0).abs() < 0.1);
        // Modulus at level 3 is just the 45-bit base prime.
        assert!((p.modulus_bits_at_level(3) - 45.0).abs() < 0.1);
    }

    #[test]
    fn insecure_params_rejected_when_enforcing() {
        // 60 + 40·10 + 60 = 520 bits needs degree ≥ 32768.
        let err = CkksParams::new(4096, 60, 40, 10, true).unwrap_err();
        assert!(matches!(err, ParamsError::Insecure { .. }));
        // Same chain allowed without enforcement, flagged insecure.
        let p = CkksParams::new(4096, 60, 40, 10, false).unwrap();
        assert!(!p.is_secure_128());
    }

    #[test]
    fn secure_params_flagged() {
        let p = CkksParams::new(8192, 40, 40, 3, true).unwrap();
        assert!(p.is_secure_128());
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(matches!(
            CkksParams::new(100, 40, 30, 2, false),
            Err(ParamsError::BadDegree(100))
        ));
        assert!(matches!(
            CkksParams::new(64, 62, 30, 2, false),
            Err(ParamsError::BadPrimeBits(62))
        ));
    }

    #[test]
    #[should_panic(expected = "beyond chain")]
    fn prefix_beyond_chain_panics() {
        let p = CkksParams::new(64, 45, 30, 2, false).unwrap();
        p.prefix_at_level(3);
    }
}
