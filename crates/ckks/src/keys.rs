//! Key generation: secret, public, relinearization, and Galois keys.
//!
//! Key switching uses the RNS digit decomposition with a single special
//! prime `P` (the SEAL approach): a ciphertext component `d` over the
//! active primes `q_0..q_{c-1}` is split into its per-prime residues
//! `d_j = [d]_{q_j}`, and digit `j` of the key encrypts
//! `P · Ẽ_j · s_target` over the extended modulus `Q_c · P`, where `Ẽ_j` is
//! the CRT idempotent of `q_j` in `Q_c`. Then
//! `Σ_j d_j · ksk_j ≈ P · d · s_target` and a final division by `P`
//! (mod-down) returns to `Q_c` while shrinking the noise by `P`.
//!
//! Because the idempotents depend on the active prefix, keys are generated
//! *per prefix length*; callers request exactly the `(kind, prefix)` pairs
//! their program needs.

use crate::params::CkksParams;
use hecate_math::modular::{add_mod, mul_mod, neg_mod, reduce_i64, sub_mod};
use hecate_math::ntt::NttTable;
use hecate_math::poly::RnsPoly;
use hecate_math::rng::Xoshiro256;

/// A polynomial over an extended basis: the first `c` chain primes plus the
/// special prime as the last row. Always stored in NTT form.
#[derive(Debug, Clone)]
pub struct ExtPoly {
    /// One residue vector per modulus; the last row is the special prime.
    pub rows: Vec<Vec<u64>>,
}

/// One key-switching key: `prefix` digits of `(b, a)` pairs over the
/// extended basis.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// Active prefix length this key was generated for.
    pub prefix: usize,
    /// Per-digit key pairs `(b_j, a_j)` with
    /// `b_j = -(a_j·s) + e_j + P·Ẽ_j·s_target`.
    pub digits: Vec<(ExtPoly, ExtPoly)>,
}

/// The ternary CKKS secret key.
///
/// Holds the raw ternary coefficients so residues modulo any prime
/// (including the special prime) can be derived.
#[derive(Debug, Clone)]
pub struct SecretKey {
    coeffs: Vec<i64>,
}

impl SecretKey {
    /// The secret as an NTT-form polynomial over the first `c` primes.
    pub fn poly(&self, params: &CkksParams, c: usize) -> RnsPoly {
        let mut p = RnsPoly::from_signed_coeffs(params.basis(), c, &self.coeffs);
        p.to_ntt(params.basis());
        p
    }

    /// The secret reduced modulo one modulus, in NTT form.
    fn residue_ntt(&self, q: u64, table: &NttTable) -> Vec<u64> {
        let mut r: Vec<u64> = self.coeffs.iter().map(|&v| reduce_i64(v, q)).collect();
        table.forward(&mut r);
        r
    }

    /// Raw ternary coefficients (test/diagnostic use).
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }
}

/// The public encryption key `(b, a)` with `b = -(a·s) + e` over the full
/// chain, in NTT form.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// The masked component.
    pub b: RnsPoly,
    /// The uniform component.
    pub a: RnsPoly,
}

/// Generates all key material from a seed.
#[derive(Debug)]
pub struct KeyGenerator {
    params: CkksParams,
    secret: SecretKey,
    rng: Xoshiro256,
}

impl KeyGenerator {
    /// Samples a fresh ternary secret from the seed.
    pub fn new(params: &CkksParams, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let coeffs = rng.sample_ternary(params.degree());
        KeyGenerator {
            params: params.clone(),
            secret: SecretKey { coeffs },
            rng,
        }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.secret
    }

    /// Generates the public encryption key over the full chain.
    pub fn public_key(&mut self) -> PublicKey {
        let basis = self.params.basis();
        let chain = basis.chain_len();
        let n = self.params.degree();
        let s = self.secret.poly(&self.params, chain);
        // Uniform a in NTT form.
        let mut a = RnsPoly::zero(basis, chain, true);
        for i in 0..chain {
            self.rng.fill_uniform_mod(a.residue_mut(i), basis.prime(i));
        }
        let e = self.rng.sample_noise(n);
        let mut b = a.clone();
        b.mul_assign_pointwise(&s, basis);
        b.negate(basis);
        let mut e_poly = RnsPoly::from_signed_coeffs(basis, chain, &e);
        e_poly.to_ntt(basis);
        b.add_assign(&e_poly, basis);
        PublicKey { b, a }
    }

    /// Generates a relinearization key (target `s²`) for the given prefix.
    pub fn relin_key(&mut self, prefix: usize) -> KeySwitchKey {
        let chain = self.params.basis().chain_len();
        let s = self.secret.poly(&self.params, chain);
        let mut s2 = s.clone();
        s2.mul_assign_pointwise(&s, self.params.basis());
        s2.to_coeff(self.params.basis());
        // Recover s² as centered signed coefficients (|s²| ≤ N, exact under
        // any 20+-bit prime).
        let q0 = self.params.basis().prime(0);
        let coeffs: Vec<i64> = s2
            .residue(0)
            .iter()
            .map(|&v| hecate_math::rns::RnsBasis::center(v, q0))
            .collect();
        self.keyswitch_key(&coeffs, prefix)
    }

    /// Generates a Galois key for left-rotation by `step` slots at the given
    /// prefix (target `s(X^g)` with `g = 5^step mod 2N`).
    pub fn galois_key(&mut self, step: usize, prefix: usize) -> KeySwitchKey {
        let g = self.galois_element(step);
        let rotated = apply_automorphism_signed(&self.secret.coeffs, g, self.params.degree());
        self.keyswitch_key(&rotated, prefix)
    }

    /// Generates the conjugation key (target `s(X^{2N−1})`, the Galois
    /// element of complex conjugation) for the given prefix.
    pub fn conjugation_key(&mut self, prefix: usize) -> KeySwitchKey {
        let g = 2 * self.params.degree() - 1;
        let conj = apply_automorphism_signed(&self.secret.coeffs, g, self.params.degree());
        self.keyswitch_key(&conj, prefix)
    }

    /// The Galois element `5^step mod 2N` for a left rotation by `step`.
    pub fn galois_element(&self, step: usize) -> usize {
        let two_n = 2 * self.params.degree();
        let mut g = 1usize;
        for _ in 0..step % (self.params.degree() / 2) {
            g = g * 5 % two_n;
        }
        g
    }

    /// Generates a key-switching key from `s_target` (given as signed
    /// coefficients) to the secret, for prefix length `prefix`.
    fn keyswitch_key(&mut self, target: &[i64], prefix: usize) -> KeySwitchKey {
        let basis = self.params.basis();
        let n = self.params.degree();
        let special = basis.special_prime();
        let moduli: Vec<u64> = basis.primes()[..prefix]
            .iter()
            .copied()
            .chain(std::iter::once(special))
            .collect();
        let tables: Vec<&NttTable> = (0..prefix)
            .map(|i| basis.ntt(i))
            .chain(std::iter::once(basis.special_ntt()))
            .collect();
        let s_rows: Vec<Vec<u64>> = moduli
            .iter()
            .zip(&tables)
            .map(|(&q, t)| self.secret.residue_ntt(q, t))
            .collect();
        let target_rows: Vec<Vec<u64>> = moduli
            .iter()
            .zip(&tables)
            .map(|(&q, t)| {
                let mut r: Vec<u64> = target.iter().map(|&v| reduce_i64(v, q)).collect();
                t.forward(&mut r);
                r
            })
            .collect();

        let digits = (0..prefix)
            .map(|j| {
                // a uniform, e noise; b = -(a·s) + e + P·Ẽ_j·s_target per row.
                let e = self.rng.sample_noise(n);
                let mut a_rows = Vec::with_capacity(moduli.len());
                let mut b_rows = Vec::with_capacity(moduli.len());
                for (m_idx, (&q, t)) in moduli.iter().zip(&tables).enumerate() {
                    let mut a_row = vec![0u64; n];
                    self.rng.fill_uniform_mod(&mut a_row, q);
                    let mut e_row: Vec<u64> = e.iter().map(|&v| reduce_i64(v, q)).collect();
                    t.forward(&mut e_row);
                    // P·Ẽ_j mod q (zero on the special row since P | P·Ẽ_j).
                    let factor = if m_idx == moduli.len() - 1 {
                        0
                    } else {
                        mul_mod(special % q, basis.crt_idempotent_mod(prefix, j, q), q)
                    };
                    let s_row = &s_rows[m_idx];
                    let t_row = &target_rows[m_idx];
                    let b_row: Vec<u64> = (0..n)
                        .map(|idx| {
                            let neg_as = neg_mod(mul_mod(a_row[idx], s_row[idx], q), q);
                            let keyed = mul_mod(factor, t_row[idx], q);
                            add_mod(add_mod(neg_as, e_row[idx], q), keyed, q)
                        })
                        .collect();
                    a_rows.push(a_row);
                    b_rows.push(b_row);
                }
                (ExtPoly { rows: b_rows }, ExtPoly { rows: a_rows })
            })
            .collect();
        KeySwitchKey { prefix, digits }
    }
}

/// Applies `X ↦ X^g` to a signed coefficient vector over `X^N + 1`.
pub(crate) fn apply_automorphism_signed(coeffs: &[i64], g: usize, n: usize) -> Vec<i64> {
    let two_n = 2 * n;
    let mut out = vec![0i64; n];
    for (j, &v) in coeffs.iter().enumerate() {
        let idx = j * g % two_n;
        if idx < n {
            out[idx] = v;
        } else {
            out[idx - n] = -v;
        }
    }
    out
}

/// Switches the key of a single polynomial `d` (coefficient domain, over
/// `prefix` primes) from `s_target` to `s`, returning `(b, a)` in
/// coefficient domain such that `b + a·s ≈ d·s_target`.
///
/// # Panics
/// Panics if `d` is in NTT form or its prefix differs from the key's.
pub fn key_switch(d: &RnsPoly, key: &KeySwitchKey, params: &CkksParams) -> (RnsPoly, RnsPoly) {
    assert!(!d.is_ntt(), "key_switch expects coefficient domain");
    let c = d.prefix();
    assert_eq!(c, key.prefix, "key prefix mismatch");
    let basis = params.basis();
    let n = params.degree();
    let special = basis.special_prime();
    let moduli: Vec<u64> = basis.primes()[..c]
        .iter()
        .copied()
        .chain(std::iter::once(special))
        .collect();
    let tables: Vec<&NttTable> = (0..c)
        .map(|i| basis.ntt(i))
        .chain(std::iter::once(basis.special_ntt()))
        .collect();

    // Accumulate Σ_j digit_j · ksk_j over the extended basis, in NTT form.
    let mut acc_b = vec![vec![0u64; n]; moduli.len()];
    let mut acc_a = vec![vec![0u64; n]; moduli.len()];
    for j in 0..c {
        let qj = basis.prime(j);
        // Centered digit lift keeps the key-switch noise at ~q_max/2.
        let digit: Vec<i64> = d
            .residue(j)
            .iter()
            .map(|&v| hecate_math::rns::RnsBasis::center(v, qj))
            .collect();
        let (kb, ka) = &key.digits[j];
        for (m_idx, (&q, t)) in moduli.iter().zip(&tables).enumerate() {
            let mut row: Vec<u64> = digit.iter().map(|&v| reduce_i64(v, q)).collect();
            t.forward(&mut row);
            let (bb, aa) = (&kb.rows[m_idx], &ka.rows[m_idx]);
            for idx in 0..n {
                acc_b[m_idx][idx] = add_mod(acc_b[m_idx][idx], mul_mod(row[idx], bb[idx], q), q);
                acc_a[m_idx][idx] = add_mod(acc_a[m_idx][idx], mul_mod(row[idx], aa[idx], q), q);
            }
        }
    }
    // Back to coefficient domain, then divide by P (mod-down).
    for (m_idx, t) in tables.iter().enumerate() {
        t.backward(&mut acc_b[m_idx]);
        t.backward(&mut acc_a[m_idx]);
    }
    let mod_down = |mut rows: Vec<Vec<u64>>| -> RnsPoly {
        let special_row = rows.pop().expect("extended basis");
        let mut out = RnsPoly::zero(basis, c, false);
        for i in 0..c {
            let q = basis.prime(i);
            let inv_p = basis.inv_special(i);
            let dst = out.residue_mut(i);
            for idx in 0..n {
                let lifted = hecate_math::rns::RnsBasis::center(special_row[idx], special);
                let l = reduce_i64(lifted, q);
                dst[idx] = mul_mod(sub_mod(rows[i][idx], l, q), inv_p, q);
            }
        }
        out
    };
    (mod_down(acc_b), mod_down(acc_a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn params() -> CkksParams {
        CkksParams::new(64, 45, 30, 2, false).unwrap()
    }

    #[test]
    fn secret_is_ternary_and_deterministic() {
        let p = params();
        let k1 = KeyGenerator::new(&p, 5);
        let k2 = KeyGenerator::new(&p, 5);
        assert_eq!(k1.secret_key().coeffs(), k2.secret_key().coeffs());
        assert!(k1
            .secret_key()
            .coeffs()
            .iter()
            .all(|v| (-1..=1).contains(v)));
        let k3 = KeyGenerator::new(&p, 6);
        assert_ne!(k1.secret_key().coeffs(), k3.secret_key().coeffs());
    }

    #[test]
    fn public_key_decrypts_to_small_noise() {
        // b + a·s = e must be small.
        let p = params();
        let mut kg = KeyGenerator::new(&p, 7);
        let pk = kg.public_key();
        let s = kg.secret_key().poly(&p, p.basis().chain_len());
        let mut check = pk.a.clone();
        check.mul_assign_pointwise(&s, p.basis());
        check.add_assign(&pk.b, p.basis());
        check.to_coeff(p.basis());
        let c = p.basis().chain_len();
        let rec = p.basis().reconstructor(c);
        for idx in 0..p.degree() {
            let rs: Vec<u64> = (0..c).map(|i| check.residue(i)[idx]).collect();
            let v = rec.reconstruct_centered_f64(&rs, 0.0);
            assert!(v.abs() < 64.0, "noise too large: {v}");
        }
    }

    #[test]
    fn galois_element_composes() {
        let p = params();
        let kg = KeyGenerator::new(&p, 8);
        assert_eq!(kg.galois_element(0), 1);
        let g1 = kg.galois_element(1);
        let g2 = kg.galois_element(2);
        assert_eq!(g2, g1 * g1 % (2 * p.degree()));
    }

    #[test]
    fn key_switch_reproduces_target_product() {
        // d·s_target ≈ b + a·s after switching. Use s_target = s² (relin).
        let p = params();
        let mut kg = KeyGenerator::new(&p, 9);
        let prefix = p.basis().chain_len();
        let rk = kg.relin_key(prefix);
        assert_eq!(rk.digits.len(), prefix);

        // Small test polynomial d.
        let mut rng = hecate_math::rng::Xoshiro256::seed_from_u64(77);
        let d_coeffs: Vec<i64> = (0..p.degree())
            .map(|_| rng.next_below(1000) as i64 - 500)
            .collect();
        let d = RnsPoly::from_signed_coeffs(p.basis(), prefix, &d_coeffs);

        let (b, a) = key_switch(&d, &rk, &p);
        // Compute b + a·s and d·s² and compare coefficient-wise.
        let s = kg.secret_key().poly(&p, prefix);
        let mut lhs = a.clone();
        lhs.to_ntt(p.basis());
        lhs.mul_assign_pointwise(&s, p.basis());
        let mut b_ntt = b.clone();
        b_ntt.to_ntt(p.basis());
        lhs.add_assign(&b_ntt, p.basis());
        lhs.to_coeff(p.basis());

        let mut s2 = s.clone();
        s2.mul_assign_pointwise(&s, p.basis());
        let mut rhs = d.clone();
        rhs.to_ntt(p.basis());
        rhs.mul_assign_pointwise(&s2, p.basis());
        rhs.to_coeff(p.basis());

        let rec = p.basis().reconstructor(prefix);
        for idx in 0..p.degree() {
            let l: Vec<u64> = (0..prefix).map(|i| lhs.residue(i)[idx]).collect();
            let r: Vec<u64> = (0..prefix).map(|i| rhs.residue(i)[idx]).collect();
            let diff =
                rec.reconstruct_centered_f64(&l, 0.0) - rec.reconstruct_centered_f64(&r, 0.0);
            // Key-switch noise ≈ c·N·q_max/(2P) plus mod-down rounding — tiny
            // relative to any working scale; bound loosely.
            assert!(diff.abs() < 1e6, "keyswitch error {diff} at coeff {idx}");
        }
    }

    #[test]
    fn automorphism_signed_matches_poly_version() {
        let p = params();
        let coeffs: Vec<i64> = (0..p.degree() as i64).collect();
        let g = 5;
        let signed = apply_automorphism_signed(&coeffs, g, p.degree());
        let poly = RnsPoly::from_signed_coeffs(p.basis(), 1, &coeffs).automorphism(g, p.basis());
        let q = p.basis().prime(0);
        for idx in 0..p.degree() {
            assert_eq!(reduce_i64(signed[idx], q), poly.residue(0)[idx]);
        }
    }
}
