//! Key generation: secret, public, relinearization, and Galois keys.
//!
//! Key switching uses the RNS digit decomposition with a single special
//! prime `P` (the SEAL approach): a ciphertext component `d` over the
//! active primes `q_0..q_{c-1}` is split into its per-prime residues
//! `d_j = [d]_{q_j}`, and digit `j` of the key encrypts
//! `P · Ẽ_j · s_target` over the extended modulus `Q_c · P`, where `Ẽ_j` is
//! the CRT idempotent of `q_j` in `Q_c`. Then
//! `Σ_j d_j · ksk_j ≈ P · d · s_target` and a final division by `P`
//! (mod-down) returns to `Q_c` while shrinking the noise by `P`.
//!
//! Because the idempotents depend on the active prefix, keys are generated
//! *per prefix length*; callers request exactly the `(kind, prefix)` pairs
//! their program needs.

use crate::params::CkksParams;
use hecate_math::modular::{add_mod, mul_mod, neg_mod, reduce_i64, sub_mod};
use hecate_math::ntt::NttTable;
use hecate_math::poly::RnsPoly;
use hecate_math::rng::Xoshiro256;

/// A polynomial over an extended basis: the first `c` chain primes plus the
/// special prime as the last row. Always stored in NTT form.
#[derive(Debug, Clone)]
pub struct ExtPoly {
    /// One residue vector per modulus; the last row is the special prime.
    pub rows: Vec<Vec<u64>>,
}

/// One key-switching key: `prefix` digits of `(b, a)` pairs over the
/// extended basis.
#[derive(Debug, Clone)]
pub struct KeySwitchKey {
    /// Active prefix length this key was generated for.
    pub prefix: usize,
    /// Per-digit key pairs `(b_j, a_j)` with
    /// `b_j = -(a_j·s) + e_j + P·Ẽ_j·s_target`.
    pub digits: Vec<(ExtPoly, ExtPoly)>,
}

/// The ternary CKKS secret key.
///
/// Holds the raw ternary coefficients so residues modulo any prime
/// (including the special prime) can be derived.
#[derive(Debug, Clone)]
pub struct SecretKey {
    coeffs: Vec<i64>,
}

impl SecretKey {
    /// The secret as an NTT-form polynomial over the first `c` primes.
    pub fn poly(&self, params: &CkksParams, c: usize) -> RnsPoly {
        let mut p = RnsPoly::from_signed_coeffs(params.basis(), c, &self.coeffs);
        p.to_ntt(params.basis());
        p
    }

    /// The secret reduced modulo one modulus, in NTT form.
    fn residue_ntt(&self, q: u64, table: &NttTable) -> Vec<u64> {
        let mut r: Vec<u64> = self.coeffs.iter().map(|&v| reduce_i64(v, q)).collect();
        table.forward(&mut r);
        r
    }

    /// Raw ternary coefficients (test/diagnostic use).
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }
}

/// The public encryption key `(b, a)` with `b = -(a·s) + e` over the full
/// chain, in NTT form.
#[derive(Debug, Clone)]
pub struct PublicKey {
    /// The masked component.
    pub b: RnsPoly,
    /// The uniform component.
    pub a: RnsPoly,
}

/// Generates all key material from a seed.
#[derive(Debug)]
pub struct KeyGenerator {
    params: CkksParams,
    secret: SecretKey,
    rng: Xoshiro256,
}

impl KeyGenerator {
    /// Samples a fresh ternary secret from the seed.
    pub fn new(params: &CkksParams, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let coeffs = rng.sample_ternary(params.degree());
        KeyGenerator {
            params: params.clone(),
            secret: SecretKey { coeffs },
            rng,
        }
    }

    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.secret
    }

    /// The parameter set this generator builds keys for.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// Generates the public encryption key over the full chain.
    pub fn public_key(&mut self) -> PublicKey {
        let basis = self.params.basis();
        let chain = basis.chain_len();
        let n = self.params.degree();
        let s = self.secret.poly(&self.params, chain);
        // Uniform a in NTT form.
        let mut a = RnsPoly::zero(basis, chain, true);
        for i in 0..chain {
            self.rng.fill_uniform_mod(a.residue_mut(i), basis.prime(i));
        }
        let e = self.rng.sample_noise(n);
        let mut b = a.clone();
        b.mul_assign_pointwise(&s, basis);
        b.negate(basis);
        let mut e_poly = RnsPoly::from_signed_coeffs(basis, chain, &e);
        e_poly.to_ntt(basis);
        b.add_assign(&e_poly, basis);
        PublicKey { b, a }
    }

    /// Generates a relinearization key (target `s²`) for the given prefix.
    pub fn relin_key(&mut self, prefix: usize) -> KeySwitchKey {
        let chain = self.params.basis().chain_len();
        let s = self.secret.poly(&self.params, chain);
        let mut s2 = s.clone();
        s2.mul_assign_pointwise(&s, self.params.basis());
        s2.to_coeff(self.params.basis());
        // Recover s² as centered signed coefficients (|s²| ≤ N, exact under
        // any 20+-bit prime).
        let q0 = self.params.basis().prime(0);
        let coeffs: Vec<i64> = s2
            .residue(0)
            .iter()
            .map(|&v| hecate_math::rns::RnsBasis::center(v, q0))
            .collect();
        self.keyswitch_key(&coeffs, prefix)
    }

    /// Generates a Galois key for left-rotation by `step` slots at the given
    /// prefix (target `s(X^g)` with `g = 5^step mod 2N`).
    pub fn galois_key(&mut self, step: usize, prefix: usize) -> KeySwitchKey {
        let g = self.galois_element(step);
        let rotated = apply_automorphism_signed(&self.secret.coeffs, g, self.params.degree());
        self.keyswitch_key(&rotated, prefix)
    }

    /// Generates the conjugation key (target `s(X^{2N−1})`, the Galois
    /// element of complex conjugation) for the given prefix.
    pub fn conjugation_key(&mut self, prefix: usize) -> KeySwitchKey {
        let g = 2 * self.params.degree() - 1;
        let conj = apply_automorphism_signed(&self.secret.coeffs, g, self.params.degree());
        self.keyswitch_key(&conj, prefix)
    }

    /// The Galois element `5^step mod 2N` for a left rotation by `step`.
    ///
    /// The step is canonicalized modulo the slot count first, and the
    /// power is taken by square-and-multiply, so this is `O(log step)`
    /// rather than the former `O(step)` repeated multiply.
    pub fn galois_element(&self, step: usize) -> usize {
        galois_element(&self.params, step)
    }

    /// Generates a key-switching key from `s_target` (given as signed
    /// coefficients) to the secret, for prefix length `prefix`.
    fn keyswitch_key(&mut self, target: &[i64], prefix: usize) -> KeySwitchKey {
        let basis = self.params.basis();
        let n = self.params.degree();
        let special = basis.special_prime();
        let moduli: Vec<u64> = basis.primes()[..prefix]
            .iter()
            .copied()
            .chain(std::iter::once(special))
            .collect();
        let tables: Vec<&NttTable> = (0..prefix)
            .map(|i| basis.ntt(i))
            .chain(std::iter::once(basis.special_ntt()))
            .collect();
        let s_rows: Vec<Vec<u64>> = moduli
            .iter()
            .zip(&tables)
            .map(|(&q, t)| self.secret.residue_ntt(q, t))
            .collect();
        let target_rows: Vec<Vec<u64>> = moduli
            .iter()
            .zip(&tables)
            .map(|(&q, t)| {
                let mut r: Vec<u64> = target.iter().map(|&v| reduce_i64(v, q)).collect();
                t.forward(&mut r);
                r
            })
            .collect();

        let digits = (0..prefix)
            .map(|j| {
                // a uniform, e noise; b = -(a·s) + e + P·Ẽ_j·s_target per row.
                let e = self.rng.sample_noise(n);
                let mut a_rows = Vec::with_capacity(moduli.len());
                let mut b_rows = Vec::with_capacity(moduli.len());
                for (m_idx, (&q, t)) in moduli.iter().zip(&tables).enumerate() {
                    let mut a_row = vec![0u64; n];
                    self.rng.fill_uniform_mod(&mut a_row, q);
                    let mut e_row: Vec<u64> = e.iter().map(|&v| reduce_i64(v, q)).collect();
                    t.forward(&mut e_row);
                    // P·Ẽ_j mod q (zero on the special row since P | P·Ẽ_j).
                    let factor = if m_idx == moduli.len() - 1 {
                        0
                    } else {
                        mul_mod(special % q, basis.crt_idempotent_mod(prefix, j, q), q)
                    };
                    let s_row = &s_rows[m_idx];
                    let t_row = &target_rows[m_idx];
                    let b_row: Vec<u64> = (0..n)
                        .map(|idx| {
                            let neg_as = neg_mod(mul_mod(a_row[idx], s_row[idx], q), q);
                            let keyed = mul_mod(factor, t_row[idx], q);
                            add_mod(add_mod(neg_as, e_row[idx], q), keyed, q)
                        })
                        .collect();
                    a_rows.push(a_row);
                    b_rows.push(b_row);
                }
                (ExtPoly { rows: b_rows }, ExtPoly { rows: a_rows })
            })
            .collect();
        KeySwitchKey { prefix, digits }
    }
}

/// The Galois element `5^step mod 2N` for a left rotation by `step`
/// (canonicalized modulo the slot count). Free-function form shared by
/// key generation and the evaluator, so both sides derive the element —
/// and therefore the key identity — from the same reduction.
pub fn galois_element(params: &CkksParams, step: usize) -> usize {
    let two_n = 2 * params.degree();
    let s = params.canonical_step(step);
    hecate_math::modular::pow_mod(5, s as u64, two_n as u64) as usize
}

/// Applies `X ↦ X^g` to a signed coefficient vector over `X^N + 1`.
pub(crate) fn apply_automorphism_signed(coeffs: &[i64], g: usize, n: usize) -> Vec<i64> {
    let two_n = 2 * n;
    let mut out = vec![0i64; n];
    for (j, &v) in coeffs.iter().enumerate() {
        let idx = j * g % two_n;
        if idx < n {
            out[idx] = v;
        } else {
            out[idx - n] = -v;
        }
    }
    out
}

/// The extended-basis moduli (active chain primes then the special
/// prime) and their NTT tables for prefix length `c`.
fn extended_basis(params: &CkksParams, c: usize) -> (Vec<u64>, Vec<&NttTable>) {
    let basis = params.basis();
    let moduli = basis.primes()[..c]
        .iter()
        .copied()
        .chain(std::iter::once(basis.special_prime()))
        .collect();
    let tables = (0..c)
        .map(|i| basis.ntt(i))
        .chain(std::iter::once(basis.special_ntt()))
        .collect();
    (moduli, tables)
}

/// The centered digit lifts `center([d]_{q_j})` for every active prime.
/// Centering keeps the key-switch noise at ~`q_max/2`.
fn centered_digits(d: &RnsPoly, params: &CkksParams) -> Vec<Vec<i64>> {
    (0..d.prefix())
        .map(|j| {
            let qj = params.basis().prime(j);
            d.residue(j)
                .iter()
                .map(|&v| hecate_math::rns::RnsBasis::center(v, qj))
                .collect()
        })
        .collect()
}

/// Divides an extended-basis accumulator (coefficient domain, special
/// row last) by the special prime `P`, returning a poly over the chain
/// prefix. This is the SEAL-style mod-down that ends every key switch.
fn mod_down(mut rows: Vec<Vec<u64>>, c: usize, params: &CkksParams) -> RnsPoly {
    let basis = params.basis();
    let special = basis.special_prime();
    let n = params.degree();
    let special_row = rows.pop().expect("extended basis");
    let mut out = RnsPoly::zero(basis, c, false);
    for (i, row) in rows.iter().enumerate().take(c) {
        let q = basis.prime(i);
        let inv_p = basis.inv_special(i);
        let dst = out.residue_mut(i);
        for idx in 0..n {
            let lifted = hecate_math::rns::RnsBasis::center(special_row[idx], special);
            let l = reduce_i64(lifted, q);
            dst[idx] = mul_mod(sub_mod(row[idx], l, q), inv_p, q);
        }
    }
    for row in rows {
        hecate_math::scratch::recycle(row);
    }
    hecate_math::scratch::recycle(special_row);
    out
}

/// Switches the key of a single polynomial `d` (coefficient domain, over
/// `prefix` primes) from `s_target` to `s`, returning `(b, a)` in
/// coefficient domain such that `b + a·s ≈ d·s_target`.
///
/// # Panics
/// Panics if `d` is in NTT form or its prefix differs from the key's.
pub fn key_switch(d: &RnsPoly, key: &KeySwitchKey, params: &CkksParams) -> (RnsPoly, RnsPoly) {
    key_switch_jobs(d, key, params, 1)
}

/// [`key_switch`] with the per-modulus inner loops striped over up to
/// `jobs` scoped threads. Each extended modulus is independent (its
/// accumulator rows are written by exactly one worker, and the digit
/// forward transforms are per-modulus), so the result is bit-identical
/// at every job count.
pub fn key_switch_jobs(
    d: &RnsPoly,
    key: &KeySwitchKey,
    params: &CkksParams,
    jobs: usize,
) -> (RnsPoly, RnsPoly) {
    assert!(!d.is_ntt(), "key_switch expects coefficient domain");
    let c = d.prefix();
    assert_eq!(c, key.prefix, "key prefix mismatch");
    let n = params.degree();
    let (moduli, tables) = extended_basis(params, c);
    let digits = centered_digits(d, params);

    // Accumulate Σ_j digit_j · ksk_j over the extended basis, in NTT
    // form, then return each accumulator row to coefficient domain.
    let mut acc: Vec<(Vec<u64>, Vec<u64>)> = (0..moduli.len())
        .map(|_| {
            (
                hecate_math::scratch::take_zeroed(n),
                hecate_math::scratch::take_zeroed(n),
            )
        })
        .collect();
    hecate_math::par::for_each_limb(&mut acc, jobs, |m_idx, (acc_b, acc_a)| {
        let (q, t) = (moduli[m_idx], tables[m_idx]);
        let mut row = hecate_math::scratch::take_zeroed(n);
        for (j, digit) in digits.iter().enumerate() {
            for (dst, &v) in row.iter_mut().zip(digit) {
                *dst = reduce_i64(v, q);
            }
            t.forward(&mut row);
            let (kb, ka) = &key.digits[j];
            let (bb, aa) = (&kb.rows[m_idx], &ka.rows[m_idx]);
            for idx in 0..n {
                acc_b[idx] = add_mod(acc_b[idx], mul_mod(row[idx], bb[idx], q), q);
                acc_a[idx] = add_mod(acc_a[idx], mul_mod(row[idx], aa[idx], q), q);
            }
        }
        hecate_math::scratch::recycle(row);
        t.backward(acc_b);
        t.backward(acc_a);
    });
    let (acc_b, acc_a): (Vec<_>, Vec<_>) = acc.into_iter().unzip();
    (mod_down(acc_b, c, params), mod_down(acc_a, c, params))
}

/// The hoistable (input-only) part of a rotation's key switch: the RNS
/// digit decomposition of one polynomial, lifted to the extended basis
/// and transformed to NTT form — the `c·(c+1)` forward NTTs that
/// dominate a key switch (Halevi–Shoup hoisting).
///
/// Digit decomposition commutes with the Galois automorphism (centering
/// is odd-symmetric, and in the evaluation domain the automorphism is a
/// pure slot permutation), so one decomposition serves *every* rotation
/// of the same ciphertext: [`key_switch_hoisted`] only permutes these
/// precomputed rows before the multiply-accumulate.
#[derive(Debug, Clone)]
pub struct HoistedDecomp {
    /// Per-digit NTT-form rows over the extended basis.
    digits: Vec<ExtPoly>,
    /// Active prefix length the decomposition was taken at.
    prefix: usize,
}

impl HoistedDecomp {
    /// The prefix length (`c`) this decomposition is valid for.
    pub fn prefix(&self) -> usize {
        self.prefix
    }
}

/// Decomposes `d` (coefficient domain) into centered RNS digits over the
/// extended basis, NTT-transformed, striping the forward transforms over
/// up to `jobs` threads. The expensive shared prefix of [`key_switch`].
pub fn hoisted_decompose(d: &RnsPoly, params: &CkksParams, jobs: usize) -> HoistedDecomp {
    assert!(!d.is_ntt(), "hoisted_decompose expects coefficient domain");
    let c = d.prefix();
    let n = params.degree();
    let (moduli, tables) = extended_basis(params, c);
    let digits = centered_digits(d, params);
    let mut flat: Vec<Vec<u64>> = Vec::with_capacity(c * moduli.len());
    for digit in &digits {
        for &q in &moduli {
            flat.push(digit.iter().map(|&v| reduce_i64(v, q)).collect());
        }
    }
    hecate_math::par::for_each_limb(&mut flat, jobs, |k, row| {
        debug_assert_eq!(row.len(), n);
        tables[k % moduli.len()].forward(row);
    });
    let mut digits_out = Vec::with_capacity(c);
    let mut it = flat.into_iter();
    for _ in 0..c {
        digits_out.push(ExtPoly {
            rows: (&mut it).take(moduli.len()).collect(),
        });
    }
    HoistedDecomp {
        digits: digits_out,
        prefix: c,
    }
}

/// Key switch from a hoisted decomposition: applies the Galois slot
/// permutation `perm` to each precomputed digit row (exactly equivalent
/// to decomposing the rotated polynomial, bit for bit) and runs the
/// multiply-accumulate + mod-down against `key`. Shares all forward
/// digit NTTs across every rotation of the same ciphertext.
///
/// # Panics
/// Panics if the decomposition's prefix differs from the key's.
pub fn key_switch_hoisted(
    hd: &HoistedDecomp,
    perm: &[usize],
    key: &KeySwitchKey,
    params: &CkksParams,
    jobs: usize,
) -> (RnsPoly, RnsPoly) {
    let c = hd.prefix;
    assert_eq!(c, key.prefix, "key prefix mismatch");
    let n = params.degree();
    let (moduli, tables) = extended_basis(params, c);
    let mut acc: Vec<(Vec<u64>, Vec<u64>)> = (0..moduli.len())
        .map(|_| {
            (
                hecate_math::scratch::take_zeroed(n),
                hecate_math::scratch::take_zeroed(n),
            )
        })
        .collect();
    hecate_math::par::for_each_limb(&mut acc, jobs, |m_idx, (acc_b, acc_a)| {
        let (q, t) = (moduli[m_idx], tables[m_idx]);
        let mut row = hecate_math::scratch::take_zeroed(n);
        for j in 0..c {
            let src = &hd.digits[j].rows[m_idx];
            for (dst, &p) in row.iter_mut().zip(perm) {
                *dst = src[p];
            }
            let (kb, ka) = &key.digits[j];
            let (bb, aa) = (&kb.rows[m_idx], &ka.rows[m_idx]);
            for idx in 0..n {
                acc_b[idx] = add_mod(acc_b[idx], mul_mod(row[idx], bb[idx], q), q);
                acc_a[idx] = add_mod(acc_a[idx], mul_mod(row[idx], aa[idx], q), q);
            }
        }
        hecate_math::scratch::recycle(row);
        t.backward(acc_b);
        t.backward(acc_a);
    });
    let (acc_b, acc_a): (Vec<_>, Vec<_>) = acc.into_iter().unzip();
    (mod_down(acc_b, c, params), mod_down(acc_a, c, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn params() -> CkksParams {
        CkksParams::new(64, 45, 30, 2, false).unwrap()
    }

    #[test]
    fn secret_is_ternary_and_deterministic() {
        let p = params();
        let k1 = KeyGenerator::new(&p, 5);
        let k2 = KeyGenerator::new(&p, 5);
        assert_eq!(k1.secret_key().coeffs(), k2.secret_key().coeffs());
        assert!(k1
            .secret_key()
            .coeffs()
            .iter()
            .all(|v| (-1..=1).contains(v)));
        let k3 = KeyGenerator::new(&p, 6);
        assert_ne!(k1.secret_key().coeffs(), k3.secret_key().coeffs());
    }

    #[test]
    fn public_key_decrypts_to_small_noise() {
        // b + a·s = e must be small.
        let p = params();
        let mut kg = KeyGenerator::new(&p, 7);
        let pk = kg.public_key();
        let s = kg.secret_key().poly(&p, p.basis().chain_len());
        let mut check = pk.a.clone();
        check.mul_assign_pointwise(&s, p.basis());
        check.add_assign(&pk.b, p.basis());
        check.to_coeff(p.basis());
        let c = p.basis().chain_len();
        let rec = p.basis().reconstructor(c);
        for idx in 0..p.degree() {
            let rs: Vec<u64> = (0..c).map(|i| check.residue(i)[idx]).collect();
            let v = rec.reconstruct_centered_f64(&rs, 0.0);
            assert!(v.abs() < 64.0, "noise too large: {v}");
        }
    }

    #[test]
    fn galois_element_composes() {
        let p = params();
        let kg = KeyGenerator::new(&p, 8);
        assert_eq!(kg.galois_element(0), 1);
        let g1 = kg.galois_element(1);
        let g2 = kg.galois_element(2);
        assert_eq!(g2, g1 * g1 % (2 * p.degree()));
    }

    #[test]
    fn galois_element_canonicalizes_wrapped_steps() {
        let p = params();
        let kg = KeyGenerator::new(&p, 8);
        let slots = p.slots();
        // Repeated-multiply reference for the raw (unreduced) exponent.
        let reference = |step: usize| {
            let two_n = 2 * p.degree();
            let mut g = 1usize;
            for _ in 0..step % slots {
                g = g * 5 % two_n;
            }
            g
        };
        for step in [
            0usize,
            1,
            3,
            slots - 1,
            slots,
            slots + 1,
            slots + 3,
            5 * slots + 7,
        ] {
            assert_eq!(kg.galois_element(step), reference(step), "step = {step}");
            assert_eq!(
                kg.galois_element(step),
                kg.galois_element(step % slots),
                "step = {step}"
            );
        }
        assert_eq!(kg.galois_element(slots), 1, "full rotation is the identity");
    }

    fn random_coeff_poly(p: &CkksParams, prefix: usize, seed: u64) -> RnsPoly {
        let mut rng = hecate_math::rng::Xoshiro256::seed_from_u64(seed);
        let coeffs: Vec<i64> = (0..p.degree())
            .map(|_| rng.next_below(2001) as i64 - 1000)
            .collect();
        RnsPoly::from_signed_coeffs(p.basis(), prefix, &coeffs)
    }

    #[test]
    fn key_switch_jobs_is_bit_identical_at_every_job_count() {
        let p = params();
        let mut kg = KeyGenerator::new(&p, 13);
        let prefix = p.basis().chain_len();
        let rk = kg.relin_key(prefix);
        let d = random_coeff_poly(&p, prefix, 99);
        let baseline = key_switch(&d, &rk, &p);
        for jobs in [2usize, 3, 8] {
            assert_eq!(
                key_switch_jobs(&d, &rk, &p, jobs),
                baseline,
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn hoisted_key_switch_is_bit_identical_to_baseline() {
        let p = params();
        let mut kg = KeyGenerator::new(&p, 15);
        let prefix = p.basis().chain_len();
        let d = random_coeff_poly(&p, prefix, 101);
        for step in [1usize, 3, 7] {
            let gk = kg.galois_key(step, prefix);
            let g = kg.galois_element(step);
            let baseline = key_switch(&d.automorphism(g, p.basis()), &gk, &p);
            let perm = p.basis().ntt(0).galois_permutation(g);
            for jobs in [1usize, 2, 4] {
                let hd = hoisted_decompose(&d, &p, jobs);
                let hoisted = key_switch_hoisted(&hd, &perm, &gk, &p, jobs);
                assert_eq!(hoisted, baseline, "step = {step}, jobs = {jobs}");
            }
        }
    }

    #[test]
    fn key_switch_reproduces_target_product() {
        // d·s_target ≈ b + a·s after switching. Use s_target = s² (relin).
        let p = params();
        let mut kg = KeyGenerator::new(&p, 9);
        let prefix = p.basis().chain_len();
        let rk = kg.relin_key(prefix);
        assert_eq!(rk.digits.len(), prefix);

        // Small test polynomial d.
        let mut rng = hecate_math::rng::Xoshiro256::seed_from_u64(77);
        let d_coeffs: Vec<i64> = (0..p.degree())
            .map(|_| rng.next_below(1000) as i64 - 500)
            .collect();
        let d = RnsPoly::from_signed_coeffs(p.basis(), prefix, &d_coeffs);

        let (b, a) = key_switch(&d, &rk, &p);
        // Compute b + a·s and d·s² and compare coefficient-wise.
        let s = kg.secret_key().poly(&p, prefix);
        let mut lhs = a.clone();
        lhs.to_ntt(p.basis());
        lhs.mul_assign_pointwise(&s, p.basis());
        let mut b_ntt = b.clone();
        b_ntt.to_ntt(p.basis());
        lhs.add_assign(&b_ntt, p.basis());
        lhs.to_coeff(p.basis());

        let mut s2 = s.clone();
        s2.mul_assign_pointwise(&s, p.basis());
        let mut rhs = d.clone();
        rhs.to_ntt(p.basis());
        rhs.mul_assign_pointwise(&s2, p.basis());
        rhs.to_coeff(p.basis());

        let rec = p.basis().reconstructor(prefix);
        for idx in 0..p.degree() {
            let l: Vec<u64> = (0..prefix).map(|i| lhs.residue(i)[idx]).collect();
            let r: Vec<u64> = (0..prefix).map(|i| rhs.residue(i)[idx]).collect();
            let diff =
                rec.reconstruct_centered_f64(&l, 0.0) - rec.reconstruct_centered_f64(&r, 0.0);
            // Key-switch noise ≈ c·N·q_max/(2P) plus mod-down rounding — tiny
            // relative to any working scale; bound loosely.
            assert!(diff.abs() < 1e6, "keyswitch error {diff} at coeff {idx}");
        }
    }

    #[test]
    fn automorphism_signed_matches_poly_version() {
        let p = params();
        let coeffs: Vec<i64> = (0..p.degree() as i64).collect();
        let g = 5;
        let signed = apply_automorphism_signed(&coeffs, g, p.degree());
        let poly = RnsPoly::from_signed_coeffs(p.basis(), 1, &coeffs).automorphism(g, p.basis());
        let q = p.basis().prime(0);
        for idx in 0..p.degree() {
            assert_eq!(reduce_i64(signed[idx], q), poly.residue(0)[idx]);
        }
    }
}
