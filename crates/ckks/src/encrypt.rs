//! Encryption and decryption.
//!
//! Public-key encryption follows the standard RLWE construction:
//! `ct = (b·u + e_0 + m, a·u + e_1)` for a fresh ternary `u` and
//! centered-binomial noise. Decryption computes `c_0 + c_1·s` and hands the
//! result to the decoder. Ciphertexts are kept in NTT form throughout.

use crate::cipher::{Ciphertext, Plaintext};
use crate::keys::{PublicKey, SecretKey};
use crate::params::CkksParams;
use hecate_math::poly::RnsPoly;
use hecate_math::rng::Xoshiro256;

/// Encrypts plaintexts under a public key.
#[derive(Debug)]
pub struct Encryptor {
    params: CkksParams,
    pk: PublicKey,
    rng: Xoshiro256,
}

impl Encryptor {
    /// Creates an encryptor with its own noise stream.
    pub fn new(params: &CkksParams, pk: PublicKey, seed: u64) -> Self {
        Encryptor {
            params: params.clone(),
            pk,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Encrypts a plaintext, preserving its scale and level.
    pub fn encrypt(&mut self, pt: &Plaintext) -> Ciphertext {
        let basis = self.params.basis();
        let n = self.params.degree();
        let c = pt.prefix();
        let mut u = RnsPoly::from_signed_coeffs(basis, c, &self.rng.sample_ternary(n));
        u.to_ntt(basis);
        let mut e0 = RnsPoly::from_signed_coeffs(basis, c, &self.rng.sample_noise(n));
        e0.to_ntt(basis);
        let mut e1 = RnsPoly::from_signed_coeffs(basis, c, &self.rng.sample_noise(n));
        e1.to_ntt(basis);

        let mut b = self.pk.b.clone();
        b.truncate(c);
        let mut a = self.pk.a.clone();
        a.truncate(c);

        let mut m = pt.poly.clone();
        m.to_ntt(basis);

        let mut c0 = b;
        c0.mul_assign_pointwise(&u, basis);
        c0.add_assign(&e0, basis);
        c0.add_assign(&m, basis);
        let mut c1 = a;
        c1.mul_assign_pointwise(&u, basis);
        c1.add_assign(&e1, basis);

        Ciphertext {
            c0,
            c1,
            scale_bits: pt.scale_bits,
            level: pt.level,
        }
    }
}

/// Decrypts ciphertexts with the secret key.
#[derive(Debug)]
pub struct Decryptor {
    params: CkksParams,
    secret: SecretKey,
}

impl Decryptor {
    /// Creates a decryptor.
    pub fn new(params: &CkksParams, secret: SecretKey) -> Self {
        Decryptor {
            params: params.clone(),
            secret,
        }
    }

    /// Decrypts to a plaintext carrying the ciphertext's scale and level.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let basis = self.params.basis();
        let s = self.secret.poly(&self.params, ct.prefix());
        let mut m = ct.c1.clone();
        let mut c0 = ct.c0.clone();
        m.to_ntt(basis);
        c0.to_ntt(basis);
        m.mul_assign_pointwise(&s, basis);
        m.add_assign(&c0, basis);
        Plaintext {
            poly: m,
            scale_bits: ct.scale_bits,
            level: ct.level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::CkksEncoder;
    use crate::keys::KeyGenerator;

    fn setup() -> (CkksParams, CkksEncoder, Encryptor, Decryptor) {
        let params = CkksParams::new(128, 45, 30, 2, false).unwrap();
        let enc = CkksEncoder::new(&params);
        let mut kg = KeyGenerator::new(&params, 1);
        let pk = kg.public_key();
        let encryptor = Encryptor::new(&params, pk, 2);
        let decryptor = Decryptor::new(&params, kg.secret_key().clone());
        (params, enc, encryptor, decryptor)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (_, enc, mut encryptor, decryptor) = setup();
        let vals = vec![1.0, -2.0, 3.5, 0.25];
        let pt = enc.encode(&vals, 30.0, 0).unwrap();
        let ct = encryptor.encrypt(&pt);
        let out = enc.decode(&decryptor.decrypt(&ct));
        for (o, v) in out.iter().zip(&vals) {
            assert!((o - v).abs() < 1e-4, "{o} vs {v}");
        }
    }

    #[test]
    fn encryption_hides_message() {
        let (_, enc, mut encryptor, _) = setup();
        let pt = enc.encode(&[5.0], 30.0, 0).unwrap();
        let ct = encryptor.encrypt(&pt);
        // Decoding c0 alone (which includes pk masking) must not reveal m.
        let bogus = Plaintext {
            poly: ct.c0.clone(),
            scale_bits: ct.scale_bits,
            level: ct.level,
        };
        let out = enc.decode(&bogus);
        assert!((out[0] - 5.0).abs() > 1.0, "c0 alone should look random");
    }

    #[test]
    fn encrypt_at_level_keeps_prefix() {
        let (params, enc, mut encryptor, decryptor) = setup();
        let pt = enc.encode(&[4.0], 30.0, 1).unwrap();
        let ct = encryptor.encrypt(&pt);
        assert_eq!(ct.prefix(), params.prefix_at_level(1));
        assert_eq!(ct.level, 1);
        let out = enc.decode(&decryptor.decrypt(&ct));
        assert!((out[0] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn fresh_encryptions_differ() {
        let (_, enc, mut encryptor, _) = setup();
        let pt = enc.encode(&[1.0], 30.0, 0).unwrap();
        let ct1 = encryptor.encrypt(&pt);
        let ct2 = encryptor.encrypt(&pt);
        assert_ne!(ct1.c1.residue(0), ct2.c1.residue(0));
    }
}
