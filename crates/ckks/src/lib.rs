//! A from-scratch RNS-CKKS homomorphic encryption scheme.
//!
//! This crate is the execution substrate of the HECATE reproduction,
//! standing in for Microsoft SEAL. It implements the full RNS variant of
//! CKKS (Cheon–Kim–Kim–Song) over `Z_Q[X]/(X^N + 1)`:
//!
//! - [`params`] — parameter sets, modulus chains, 128-bit security table;
//! - [`encoder`] — canonical-embedding encoding of real vectors;
//! - [`keys`] — secret/public keys and RNS-digit key switching with a
//!   special prime (relinearization and Galois keys);
//! - [`encrypt`] — RLWE encryption and decryption;
//! - [`eval`] — the levelled evaluator: add, multiply, rotate, `rescale`,
//!   and `modswitch`, with the paper's operand constraints enforced.
//!
//! The crucial property for the HECATE paper is the *latency structure*: an
//! operation on a ciphertext at rescaling level `k` processes `L+1−k` RNS
//! primes, so computation gets cheaper as the level rises — this is what
//! makes performance-aware scale management profitable.
//!
//! # Example
//!
//! Encrypt two vectors, multiply them, rescale, and decrypt:
//!
//! ```
//! use hecate_ckks::params::CkksParams;
//! use hecate_ckks::encoder::CkksEncoder;
//! use hecate_ckks::keys::KeyGenerator;
//! use hecate_ckks::encrypt::{Encryptor, Decryptor};
//! use hecate_ckks::eval::{EvalKeys, Evaluator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = CkksParams::new(128, 45, 30, 1, false)?; // toy ring, not secure
//! let encoder = CkksEncoder::new(&params);
//! let mut kg = KeyGenerator::new(&params, 42);
//! let pk = kg.public_key();
//! let keys = EvalKeys::generate(&mut kg, &[2], &[]);
//! let mut encryptor = Encryptor::new(&params, pk, 7);
//! let decryptor = Decryptor::new(&params, kg.secret_key().clone());
//! let eval = Evaluator::new(&params, keys);
//!
//! let a = encryptor.encrypt(&encoder.encode(&[3.0], 30.0, 0)?);
//! let b = encryptor.encrypt(&encoder.encode(&[2.0], 30.0, 0)?);
//! let product = eval.rescale(&eval.mul(&a, &b)?)?;
//! let out = encoder.decode(&decryptor.decrypt(&product));
//! assert!((out[0] - 6.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```
//!
//! # Security note
//!
//! The RNG is a seeded xoshiro256++, not a CSPRNG, and small test rings are
//! far below 128-bit security. This crate is a research artifact for
//! reproducing compiler results, not a production cryptography library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cipher;
pub mod encoder;
pub mod encrypt;
pub mod eval;
pub mod keys;
pub mod pack;
pub mod params;
pub mod probe;

pub use cipher::{Ciphertext, Plaintext};
pub use encoder::CkksEncoder;
pub use encrypt::{Decryptor, Encryptor};
pub use eval::{EvalKeys, Evaluator};
pub use keys::{HoistedDecomp, KeyGenerator, PublicKey, SecretKey};
pub use pack::{pack_blocks, unpack_block};
pub use params::CkksParams;
pub use probe::DecryptProbe;
