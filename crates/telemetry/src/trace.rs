//! The span tracer: RAII guards, per-thread buffers, a global sink.
//!
//! # Design
//!
//! Tracing is **off by default**. Every recording entry point first loads
//! one relaxed [`AtomicBool`]; when it reads `false` nothing else happens
//! — no timestamp, no allocation, no lock. Attribute vectors are built
//! through closures ([`span_with`], [`mark_with`], [`complete_with`]) so
//! the disabled path never evaluates them.
//!
//! When tracing is on, events go into a *per-thread* buffer (an
//! uncontended `Mutex<Vec<Event>>` registered in a global list), so
//! recording threads never contend with each other. [`drain`] walks the
//! registered buffers, takes everything, and returns one chronologically
//! sorted stream. Per-thread event order is preserved (the sort is
//! stable and per-thread timestamps are monotonic), which is what makes
//! [`pair_spans`] able to validate begin/end nesting per thread.
//!
//! The buffers are bounded by a configurable high-water mark
//! ([`set_high_water`]): when an exporter stalls and a buffer fills,
//! further events on that thread are dropped and counted
//! (`hecate_trace_dropped_events_total` in the global metrics registry)
//! instead of growing without bound.
//!
//! Every recording entry point also feeds the flight recorder
//! ([`crate::recorder`]) when it is enabled — an independently gated,
//! bounded ring sink for serving mode. A span records to whichever
//! sinks were live at its begin, so begin/end pairs stay balanced in
//! each sink even if a sink is toggled mid-span. Before handing an
//! event to either sink, the recording thread stamps its ambient
//! correlation context ([`push_context`]) onto the event as `req_id` /
//! `batch_id` attributes — this is how one request's spans are found
//! again across worker, coalescer, and kernel threads.
//!
//! Timestamps are nanoseconds since a process-wide [`Instant`] epoch —
//! monotonic, comparable across threads, and immune to wall-clock steps.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One attribute value: integer, float, or string.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A signed integer.
    I64(i64),
    /// A double.
    F64(f64),
    /// A string (allocated only while tracing is enabled).
    Str(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::I64(v as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::I64(v as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::I64(v as i64)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::I64(v as i64)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::I64(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl AttrValue {
    /// The integer payload, if this is an integer attribute.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::I64(v) => Some(*v as f64),
            AttrValue::F64(v) => Some(*v),
            AttrValue::Str(_) => None,
        }
    }

    /// The string payload, if this is a string attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Key/value attributes attached to an event. Keys are static so the hot
/// path never allocates for them.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened (matched by an [`EventKind::End`] on the same
    /// thread).
    Begin,
    /// A span closed.
    End,
    /// A complete span recorded in one event — used when the start
    /// happened on another thread (e.g. queue wait) or before tracing
    /// could observe it. `ts_ns` is the span's *start*.
    Complete {
        /// Span duration, nanoseconds.
        dur_ns: u64,
    },
    /// An instantaneous marker.
    Mark,
}

/// One trace event.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The span or marker name (static: the taxonomy is fixed at compile
    /// time; dynamic context goes in `attrs`).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// The recording thread's trace id (small, sequential).
    pub tid: u64,
    /// Key/value attributes.
    pub attrs: Attrs,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Default per-thread buffer high-water mark, in events.
pub const DEFAULT_HIGH_WATER: usize = 1 << 20;

static HIGH_WATER: AtomicUsize = AtomicUsize::new(DEFAULT_HIGH_WATER);

thread_local! {
    /// The recording thread's small sequential trace id, shared by the
    /// buffered tracer and the flight recorder so one thread reports
    /// one `tid` everywhere.
    static TID: Cell<u64> = const { Cell::new(0) };
    /// Ambient correlation context: `(req_id, batch_id)`, zero = unset.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn thread_tid() -> u64 {
    TID.with(|tid| {
        if tid.get() == 0 {
            tid.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        tid.get()
    })
}

/// Restores the previous correlation context on drop.
#[must_use = "dropping the guard immediately pops the context"]
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

/// Sets the calling thread's correlation context. Every event recorded
/// while the guard lives is stamped with `req_id` / `batch_id` attrs
/// (zero components are omitted). Guards nest; drop restores the outer
/// context. Spawned threads do not inherit the context — capture
/// [`current_context`] and push it on the child thread.
pub fn push_context(req_id: u64, batch_id: u64) -> ContextGuard {
    CONTEXT.with(|c| {
        let prev = c.get();
        c.set((req_id, batch_id));
        ContextGuard { prev }
    })
}

/// The calling thread's current `(req_id, batch_id)` context.
pub fn current_context() -> (u64, u64) {
    CONTEXT.with(Cell::get)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct ThreadBuffer {
    events: Mutex<Vec<Event>>,
}

fn sink() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    static SINK: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());
    &SINK
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuffer>>> = const { RefCell::new(None) };
}

fn dropped_counter() -> &'static crate::metrics::Counter {
    static COUNTER: OnceLock<crate::metrics::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| crate::metrics::global().counter("hecate_trace_dropped_events_total"))
}

/// Bounds each thread's buffered-tracer backlog: once a buffer holds
/// `events` undrained events, further events on that thread are dropped
/// and counted instead of growing the buffer. Does not affect the
/// flight recorder, whose rings are bounded by construction.
pub fn set_high_water(events: usize) {
    HIGH_WATER.store(events.max(1), Ordering::SeqCst);
}

/// The buffered tracer's per-thread high-water mark, in events.
pub fn high_water() -> usize {
    HIGH_WATER.load(Ordering::Relaxed)
}

/// Events dropped at the high-water mark since process start (also
/// exported as `hecate_trace_dropped_events_total`).
pub fn dropped_events() -> u64 {
    dropped_counter().get()
}

fn push_buffered(ev: Event) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuffer {
                events: Mutex::new(Vec::new()),
            });
            sink().lock().unwrap().push(buf.clone());
            buf
        });
        let mut events = buf.events.lock().unwrap();
        if events.len() < HIGH_WATER.load(Ordering::Relaxed) {
            events.push(ev);
        } else {
            dropped_counter().inc();
        }
    });
}

/// Routes one event to the sinks that were live when its span (or
/// marker) was created. The ambient correlation context is stamped on
/// first, so both sinks see identical events.
fn record(kind: EventKind, name: &'static str, ts_ns: u64, mut attrs: Attrs, to: Sinks) {
    let (req_id, batch_id) = current_context();
    if req_id != 0 {
        attrs.push(("req_id", AttrValue::I64(req_id as i64)));
    }
    if batch_id != 0 {
        attrs.push(("batch_id", AttrValue::I64(batch_id as i64)));
    }
    let ev = Event {
        kind,
        name,
        ts_ns,
        tid: thread_tid(),
        attrs,
    };
    match (to.traced, to.recorded) {
        (true, true) => {
            crate::recorder::record(ev.clone());
            push_buffered(ev);
        }
        (true, false) => push_buffered(ev),
        (false, true) => crate::recorder::record(ev),
        (false, false) => {}
    }
}

/// Which sinks an event (or a span's begin/end pair) goes to.
#[derive(Clone, Copy)]
struct Sinks {
    traced: bool,
    recorded: bool,
}

impl Sinks {
    /// The sinks live right now.
    #[inline]
    fn live() -> Sinks {
        Sinks {
            traced: enabled(),
            recorded: crate::recorder::enabled(),
        }
    }

    #[inline]
    fn any(self) -> bool {
        self.traced || self.recorded
    }
}

/// Turns tracing on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether tracing is currently enabled. This is the whole disabled-path
/// cost: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An RAII span guard: records a begin event on creation (when tracing
/// is enabled) and the matching end event on drop. Attributes added via
/// [`Span::attr`] after creation land on the end event — viewers merge
/// begin and end arguments, and [`pair_spans`] does the same.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    name: &'static str,
    to: Sinks,
    end_attrs: Attrs,
}

/// Opens a span with no attributes.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_with(name, Attrs::new)
}

/// Opens a span whose begin attributes are built by `attrs` — the
/// closure runs only when a sink (the tracer or the flight recorder) is
/// enabled, so the disabled path pays nothing for attribute
/// construction.
#[inline]
pub fn span_with<F: FnOnce() -> Attrs>(name: &'static str, attrs: F) -> Span {
    let to = Sinks::live();
    if !to.any() {
        return Span {
            name,
            to,
            end_attrs: Attrs::new(),
        };
    }
    record(EventKind::Begin, name, now_ns(), attrs(), to);
    Span {
        name,
        to,
        end_attrs: Attrs::new(),
    }
}

impl Span {
    /// Attaches an attribute to this span's end event. A no-op when the
    /// span was created with every sink disabled.
    pub fn attr(&mut self, key: &'static str, value: AttrValue) {
        if self.to.any() {
            self.end_attrs.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        // An armed span always records its end to the sinks it began
        // in, even if a sink was switched off mid-span — unbalanced
        // traces are worse than a few extra events.
        if self.to.any() {
            record(
                EventKind::End,
                self.name,
                now_ns(),
                std::mem::take(&mut self.end_attrs),
                self.to,
            );
        }
    }
}

/// Records a complete span that started at `started` and ends now. Used
/// for durations whose start lives on another thread (queue wait) or was
/// measured independently.
pub fn complete_with<F: FnOnce() -> Attrs>(name: &'static str, started: Instant, attrs: F) {
    let to = Sinks::live();
    if !to.any() {
        return;
    }
    let dur_ns = started.elapsed().as_nanos() as u64;
    let ts_ns = now_ns().saturating_sub(dur_ns);
    record(EventKind::Complete { dur_ns }, name, ts_ns, attrs(), to);
}

/// Records an instantaneous marker.
pub fn mark_with<F: FnOnce() -> Attrs>(name: &'static str, attrs: F) {
    let to = Sinks::live();
    if !to.any() {
        return;
    }
    record(EventKind::Mark, name, now_ns(), attrs(), to);
}

/// Takes every buffered event from every thread, returning one stream
/// sorted by timestamp. Per-thread relative order is preserved (stable
/// sort over monotonic per-thread timestamps), so begin/end nesting per
/// `tid` survives the merge.
pub fn drain() -> Vec<Event> {
    let buffers = sink().lock().unwrap();
    let mut all: Vec<Event> = Vec::new();
    for buf in buffers.iter() {
        all.append(&mut buf.events.lock().unwrap());
    }
    drop(buffers);
    all.sort_by_key(|e| e.ts_ns);
    all
}

/// Runs `f` with tracing enabled and returns its result together with
/// exactly the events recorded during the call.
///
/// Captures are serialized through a global lock so concurrent tests (or
/// any two capture sites) cannot steal each other's events; events left
/// over from earlier unscoped tracing are discarded first.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    static CAPTURE: Mutex<()> = Mutex::new(());
    let _guard = CAPTURE.lock().unwrap_or_else(|poison| poison.into_inner());
    drain();
    set_enabled(true);
    let result = f();
    set_enabled(false);
    let events = drain();
    (result, events)
}

/// A begin/end pair (or a complete event) resolved into one span.
#[derive(Debug, Clone)]
pub struct PairedSpan {
    /// Span name.
    pub name: &'static str,
    /// Recording thread.
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Merged begin + end attributes.
    pub attrs: Attrs,
}

impl PairedSpan {
    /// Looks up an attribute by key (end attributes win on duplicates
    /// because they are merged after the begin attributes).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs
            .iter()
            .rev()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Resolves an event stream into paired spans, validating per-thread
/// well-formedness: every end event must match the innermost open begin
/// of its thread, and no span may be left open.
///
/// # Errors
/// Returns a description of the first violation (end without begin, name
/// mismatch at the top of a thread's stack, or an unterminated span).
pub fn pair_spans(events: &[Event]) -> Result<Vec<PairedSpan>, String> {
    let mut stacks: HashMap<u64, Vec<(&'static str, u64, Attrs)>> = HashMap::new();
    let mut spans = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::Begin => {
                stacks
                    .entry(ev.tid)
                    .or_default()
                    .push((ev.name, ev.ts_ns, ev.attrs.clone()));
            }
            EventKind::End => {
                let stack = stacks.entry(ev.tid).or_default();
                let Some((name, ts_ns, mut attrs)) = stack.pop() else {
                    return Err(format!(
                        "end of '{}' on tid {} without a matching begin",
                        ev.name, ev.tid
                    ));
                };
                if name != ev.name {
                    return Err(format!(
                        "end of '{}' on tid {} closes innermost span '{name}'",
                        ev.name, ev.tid
                    ));
                }
                attrs.extend(ev.attrs.iter().cloned());
                spans.push(PairedSpan {
                    name,
                    tid: ev.tid,
                    ts_ns,
                    dur_ns: ev.ts_ns.saturating_sub(ts_ns),
                    attrs,
                });
            }
            EventKind::Complete { dur_ns } => spans.push(PairedSpan {
                name: ev.name,
                tid: ev.tid,
                ts_ns: ev.ts_ns,
                dur_ns: *dur_ns,
                attrs: ev.attrs.clone(),
            }),
            EventKind::Mark => {}
        }
    }
    for (tid, stack) in &stacks {
        if let Some((name, _, _)) = stack.last() {
            return Err(format!("span '{name}' on tid {tid} was never ended"));
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let ((), events) = capture(|| {});
        assert!(events.is_empty());
        // Outside a capture, with tracing off, spans are inert.
        {
            let mut s = span_with("noop", || vec![("k", 1.into())]);
            s.attr("x", 2.into());
        }
        complete_with("noop", Instant::now(), Attrs::new);
        mark_with("noop", Attrs::new);
        let ((), events) = capture(|| {});
        assert!(events.is_empty(), "pre-capture events were discarded");
    }

    #[test]
    fn spans_nest_and_pair() {
        let ((), events) = capture(|| {
            let mut outer = trace_outer();
            {
                let _inner = span("inner");
            }
            outer.attr("done", true.into());
        });
        assert_eq!(events.len(), 4);
        let spans = pair_spans(&events).unwrap();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns);
        assert_eq!(outer.attr("done").and_then(AttrValue::as_i64), Some(1));
        assert_eq!(outer.attr("kind").and_then(AttrValue::as_str), Some("o"));
    }

    fn trace_outer() -> Span {
        span_with("outer", || vec![("kind", "o".into())])
    }

    #[test]
    fn complete_and_mark_events() {
        let ((), events) = capture(|| {
            let t0 = Instant::now();
            std::hint::black_box(0u64);
            complete_with("wait", t0, || vec![("q", 3.into())]);
            mark_with("tick", Attrs::new);
        });
        assert_eq!(events.len(), 2);
        let spans = pair_spans(&events).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "wait");
        assert_eq!(spans[0].attr("q").and_then(AttrValue::as_i64), Some(3));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let end = Event {
            kind: EventKind::End,
            name: "x",
            ts_ns: 1,
            tid: 1,
            attrs: vec![],
        };
        assert!(
            pair_spans(std::slice::from_ref(&end)).is_err(),
            "end without begin"
        );
        let begin = Event {
            kind: EventKind::Begin,
            name: "x",
            ts_ns: 0,
            tid: 1,
            attrs: vec![],
        };
        assert!(
            pair_spans(std::slice::from_ref(&begin)).is_err(),
            "unterminated span"
        );
        let mut wrong = end;
        wrong.name = "y";
        assert!(pair_spans(&[begin, wrong]).is_err(), "name mismatch");
    }

    #[test]
    fn attr_value_conversions() {
        assert_eq!(AttrValue::from(3usize).as_i64(), Some(3));
        assert_eq!(AttrValue::from(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::from(7i64).as_f64(), Some(7.0));
        assert_eq!(AttrValue::from("s").as_str(), Some("s"));
        assert_eq!(AttrValue::from(true).as_i64(), Some(1));
        assert_eq!(AttrValue::from(9u64).as_i64(), Some(9));
        assert!(AttrValue::from("s").as_f64().is_none());
    }
}
