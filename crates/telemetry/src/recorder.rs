//! The flight recorder: always-on bounded tracing with tail-based
//! retention.
//!
//! # Design
//!
//! The span tracer in [`crate::trace`] buffers every event until an
//! exporter drains it — the right shape for a one-shot `--trace` run,
//! and the wrong one for a serving process that must stay up for weeks.
//! The recorder is the serving-mode sink: each thread owns a fixed-size
//! **ring** of events (overwrite-oldest), so recorder memory is bounded
//! by `threads x ring_capacity` no matter how long the process runs.
//! Recording stays lock-cheap — the ring mutex is per-thread and
//! uncontended except during a snapshot or retention scan.
//!
//! Most requests decay out of the ring unobserved. When the runtime
//! decides a request was *interesting* (slow, shed, timed out,
//! guard-failed, panicked), it calls [`retain`] with the request's
//! correlation id: every ring is scanned for events stamped with that
//! `req_id` (or the linking `batch_id`), and the matching span tree is
//! promoted into a bounded **retained-trace store** before the ring
//! overwrites it. This is tail-based sampling: the keep/drop decision is
//! made after the outcome is known, so the store holds exactly the
//! traces worth looking at.
//!
//! Events carry correlation ids because [`crate::trace`] stamps the
//! ambient `(req_id, batch_id)` context (see
//! [`crate::trace::push_context`]) onto every event it routes here —
//! the recorder itself never inspects thread identity beyond the ring
//! it writes to.

use crate::trace::{AttrValue, Event};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Default bound on the retained-trace store, in traces.
pub const DEFAULT_RETAINED_CAPACITY: usize = 64;

/// Recorder sizing knobs. Process-global: the recorder is one shared
/// subsystem, so the last [`configure`] call wins.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Events each thread's ring holds before overwriting the oldest.
    pub ring_capacity: usize,
    /// Retained traces kept before the oldest is evicted.
    pub retained_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring_capacity: DEFAULT_RING_CAPACITY,
            retained_capacity: DEFAULT_RETAINED_CAPACITY,
        }
    }
}

static REC_ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static RETAINED_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RETAINED_CAPACITY);
static OVERWRITTEN: AtomicU64 = AtomicU64::new(0);

/// A fixed-capacity overwrite-oldest event ring. `next` is the slot the
/// next event lands in once the ring is full; until then events append.
struct Ring {
    cap: usize,
    events: Vec<Event>,
    next: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap: cap.max(1),
            events: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            OVERWRITTEN.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events oldest-first (unwraps the ring).
    fn in_order(&self) -> impl Iterator<Item = &Event> {
        self.events[self.next..]
            .iter()
            .chain(self.events[..self.next].iter())
    }

    /// Re-bounds the ring to `cap`, keeping the newest events.
    fn resize(&mut self, cap: usize) {
        let cap = cap.max(1);
        if cap != self.cap {
            let mut kept: Vec<Event> = self.in_order().cloned().collect();
            if kept.len() > cap {
                kept.drain(..kept.len() - cap);
            }
            self.events = kept;
            self.next = 0;
            self.cap = cap;
        }
    }
}

/// One thread's ring, registered in the global segment list so
/// snapshots and retention scans can reach every thread's events.
struct Segment {
    ring: Mutex<Ring>,
}

fn segments() -> &'static Mutex<Vec<Arc<Segment>>> {
    static SEGMENTS: Mutex<Vec<Arc<Segment>>> = Mutex::new(Vec::new());
    &SEGMENTS
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<Segment>>> = const { RefCell::new(None) };
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// A retained span tree: every ring event that carried the request's
/// correlation id at the moment [`retain`] ran.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The request's correlation id.
    pub req_id: u64,
    /// Why the trace was kept (`"slow"`, `"shed"`, `"timed-out"`,
    /// `"guard-failed"`, `"panicked"`, ...).
    pub reason: &'static str,
    /// Nanoseconds since the trace epoch when retention ran.
    pub retained_ns: u64,
    /// The promoted events, sorted by timestamp.
    pub events: Vec<Event>,
}

/// One retained-trace index entry (the trace minus its events).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedSummary {
    /// The request's correlation id.
    pub req_id: u64,
    /// Why the trace was kept.
    pub reason: &'static str,
    /// Nanoseconds since the trace epoch when retention ran.
    pub retained_ns: u64,
    /// How many events the trace holds.
    pub events: usize,
}

fn retained_store() -> &'static Mutex<VecDeque<RetainedTrace>> {
    static RETAINED: Mutex<VecDeque<RetainedTrace>> = Mutex::new(VecDeque::new());
    &RETAINED
}

/// Turns the recorder on or off globally. The runtime reference-counts
/// this across live `Runtime` instances.
pub fn set_enabled(on: bool) {
    REC_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the recorder is accepting events: one relaxed atomic load,
/// the whole disabled-path cost.
#[inline]
pub fn enabled() -> bool {
    REC_ENABLED.load(Ordering::Relaxed)
}

/// Applies `config`. Existing rings are re-bounded in place (keeping
/// their newest events) so tests and reconfiguring runtimes see the new
/// capacity immediately.
pub fn configure(config: &RecorderConfig) {
    RING_CAPACITY.store(config.ring_capacity.max(1), Ordering::SeqCst);
    RETAINED_CAPACITY.store(config.retained_capacity.max(1), Ordering::SeqCst);
    let segs: Vec<Arc<Segment>> = lock(segments()).clone();
    for seg in segs {
        lock(&seg.ring).resize(config.ring_capacity.max(1));
    }
    let mut retained = lock(retained_store());
    while retained.len() > RETAINED_CAPACITY.load(Ordering::Relaxed) {
        retained.pop_front();
    }
}

/// The configured per-thread ring capacity.
pub fn ring_capacity() -> usize {
    RING_CAPACITY.load(Ordering::Relaxed)
}

/// Total events overwritten (decayed) across all rings since process
/// start or the last [`clear`].
pub fn overwritten_events() -> u64 {
    OVERWRITTEN.load(Ordering::Relaxed)
}

/// Routes one event into the calling thread's ring. Called by
/// [`crate::trace`]; the event already carries its correlation attrs.
pub(crate) fn record(ev: Event) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let seg = slot.get_or_insert_with(|| {
            let seg = Arc::new(Segment {
                ring: Mutex::new(Ring::new(ring_capacity())),
            });
            lock(segments()).push(seg.clone());
            seg
        });
        lock(&seg.ring).push(ev);
    });
}

/// Events currently buffered across all rings.
pub fn ring_event_count() -> usize {
    let segs: Vec<Arc<Segment>> = lock(segments()).clone();
    segs.iter().map(|s| lock(&s.ring).events.len()).sum()
}

/// Rings currently registered (one per thread that has recorded).
pub fn segment_count() -> usize {
    lock(segments()).len()
}

/// Copies every ring's events into one timestamp-sorted stream, without
/// consuming them. The rings keep recording; this is a point-in-time
/// view for diagnostics dumps.
pub fn snapshot() -> Vec<Event> {
    let segs: Vec<Arc<Segment>> = lock(segments()).clone();
    let mut all: Vec<Event> = Vec::new();
    for seg in &segs {
        let ring = lock(&seg.ring);
        all.extend(ring.in_order().cloned());
    }
    all.sort_by_key(|e| e.ts_ns);
    all
}

fn attr_matches(attrs: &[(&'static str, AttrValue)], key: &str, want: i64) -> bool {
    attrs
        .iter()
        .any(|(k, v)| *k == key && v.as_i64() == Some(want))
}

/// Promotes every ring event stamped with `req_id` into the retained
/// store under `reason`; returns how many events were kept. Shorthand
/// for [`retain_with`] with no batch link.
pub fn retain(req_id: u64, reason: &'static str) -> usize {
    retain_with(req_id, 0, reason)
}

/// Promotes the span tree for `req_id` — plus, when `batch_id` is
/// nonzero, the shared batch spans stamped with that `batch_id` — into
/// the bounded retained store. Returns the number of events promoted.
///
/// The scan walks every thread's ring, so spans recorded on worker,
/// kernel, and coalescer threads all land in the one retained trace.
pub fn retain_with(req_id: u64, batch_id: u64, reason: &'static str) -> usize {
    let segs: Vec<Arc<Segment>> = lock(segments()).clone();
    let mut events: Vec<Event> = Vec::new();
    for seg in &segs {
        let ring = lock(&seg.ring);
        events.extend(
            ring.in_order()
                .filter(|ev| {
                    attr_matches(&ev.attrs, "req_id", req_id as i64)
                        || (batch_id != 0 && attr_matches(&ev.attrs, "batch_id", batch_id as i64))
                })
                .cloned(),
        );
    }
    events.sort_by_key(|e| e.ts_ns);
    let kept = events.len();
    let trace = RetainedTrace {
        req_id,
        reason,
        retained_ns: crate::trace::now_ns(),
        events,
    };
    let mut retained = lock(retained_store());
    retained.push_back(trace);
    let cap = RETAINED_CAPACITY.load(Ordering::Relaxed).max(1);
    while retained.len() > cap {
        retained.pop_front();
    }
    kept
}

/// The retained-trace index, oldest first.
pub fn retained_index() -> Vec<RetainedSummary> {
    lock(retained_store())
        .iter()
        .map(|t| RetainedSummary {
            req_id: t.req_id,
            reason: t.reason,
            retained_ns: t.retained_ns,
            events: t.events.len(),
        })
        .collect()
}

/// The most recently retained trace for `req_id`, if any.
pub fn retained_trace(req_id: u64) -> Option<RetainedTrace> {
    lock(retained_store())
        .iter()
        .rev()
        .find(|t| t.req_id == req_id)
        .cloned()
}

/// Every retained trace, oldest first.
pub fn retained_traces() -> Vec<RetainedTrace> {
    lock(retained_store()).iter().cloned().collect()
}

/// Empties every ring and the retained store, and zeroes the overwrite
/// counter. For tests; rings stay registered.
pub fn clear() {
    let segs: Vec<Arc<Segment>> = lock(segments()).clone();
    for seg in &segs {
        let mut ring = lock(&seg.ring);
        ring.events.clear();
        ring.next = 0;
    }
    lock(retained_store()).clear();
    OVERWRITTEN.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind;

    fn ev(ts: u64, seq: i64) -> Event {
        Event {
            kind: EventKind::Mark,
            name: "t",
            ts_ns: ts,
            tid: 1,
            attrs: vec![("seq", seq.into())],
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_unwraps_in_order() {
        let mut ring = Ring::new(4);
        for i in 0..10 {
            ring.push(ev(i, i as i64));
        }
        assert_eq!(ring.events.len(), 4);
        let seqs: Vec<i64> = ring
            .in_order()
            .map(|e| e.attrs[0].1.as_i64().unwrap())
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_resize_keeps_newest() {
        let mut ring = Ring::new(8);
        for i in 0..8 {
            ring.push(ev(i, i as i64));
        }
        ring.resize(3);
        let seqs: Vec<i64> = ring
            .in_order()
            .map(|e| e.attrs[0].1.as_i64().unwrap())
            .collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        ring.push(ev(8, 8));
        let seqs: Vec<i64> = ring
            .in_order()
            .map(|e| e.attrs[0].1.as_i64().unwrap())
            .collect();
        assert_eq!(seqs, vec![6, 7, 8]);
    }
}
