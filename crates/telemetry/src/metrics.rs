//! The metrics registry: named counters, gauges, and power-of-two
//! histograms.
//!
//! A [`Registry`] maps names to metric handles. Handles are `Arc`ed
//! atomics: the registry lock is taken only to *resolve* a name, after
//! which recording is a relaxed atomic operation — the same discipline
//! the serving runtime's hand-rolled counters used before they migrated
//! here. [`Registry::prometheus`] renders the whole registry as a
//! Prometheus-style text exposition.
//!
//! Histograms use power-of-two buckets: bucket `k` counts observations
//! in `[2^k, 2^{k+1})` (bucket 0 also absorbs zero), and the last bucket
//! is open-ended. This is exactly the shape the runtime's latency
//! histogram always had, so its JSON snapshot stays byte-compatible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways, with a helper for
/// tracking a high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` (may be negative) and returns the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is higher (atomic max).
    #[inline]
    pub fn record_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A power-of-two histogram: bucket `k` counts observations in
/// `[2^k, 2^{k+1})`, the last bucket is open-ended.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram with `buckets` power-of-two buckets, not attached to
    /// any registry.
    pub fn with_buckets(buckets: usize) -> Self {
        assert!(buckets >= 1, "a histogram needs at least one bucket");
        Histogram(Arc::new(HistogramCore {
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = (64 - value.leading_zeros() as usize)
            .saturating_sub(1)
            .min(self.0.buckets.len() - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, lowest bucket first.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) with linear interpolation inside
    /// the containing power-of-two bucket — see
    /// [`quantile_from_pow2_buckets`]. `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_pow2_buckets(&self.bucket_counts(), q)
    }
}

/// The `q`-quantile of a power-of-two bucketed histogram, interpolated.
///
/// Bucket `k` spans `[2^k, 2^{k+1})` (bucket 0 starts at zero, the last
/// bucket is treated as if it closed at its power-of-two boundary). The
/// target rank is `q · count`, clamped to `[1, count]`; within the bucket
/// that holds it, the value is linearly interpolated between the bucket's
/// bounds by the rank's position among the bucket's observations. The
/// result is exact to within one bucket's width rather than quantized to
/// a power of two — the difference between reporting p99 = 65 536 µs and
/// p99 ≈ 71 000 µs.
///
/// Returns `None` for an empty histogram or a `q` outside `[0, 1]`.
pub fn quantile_from_pow2_buckets(buckets: &[u64], q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) {
        return None;
    }
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return None;
    }
    let target = (q * count as f64).clamp(1.0, count as f64);
    let mut cum = 0u64;
    for (k, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if (cum + c) as f64 >= target {
            let lo = if k == 0 { 0.0 } else { (1u64 << k) as f64 };
            let hi = (1u128 << (k + 1)) as f64;
            // Midpoint convention: the j-th of c observations in a bucket
            // sits at position (j − ½)/c, so a lone observation reads as
            // the bucket midpoint and no rank touches the open bound.
            let frac = ((target - cum as f64 - 0.5) / c as f64).clamp(0.0, 1.0);
            return Some(lo + frac * (hi - lo));
        }
        cum += c;
    }
    // Unreachable while the loop covers every observation, but a safe
    // answer exists: the top of the last nonempty bucket.
    let k = buckets.iter().rposition(|&c| c > 0)?;
    Some((1u128 << (k + 1)) as f64)
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A snapshot of one registered metric, for programmatic export.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets, sum, and count.
    Histogram {
        /// Per-bucket counts, lowest first.
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// A name → metric map with get-or-create registration.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().unwrap();
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Resolves (creating on first use) the counter called `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Resolves (creating on first use) the gauge called `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Resolves (creating on first use) the histogram called `name` with
    /// `buckets` power-of-two buckets.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, buckets: usize) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::with_buckets(buckets))) {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let metrics = self.metrics.lock().unwrap();
        metrics
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        buckets: h.bucket_counts(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Renders the registry as a Prometheus-style text exposition.
    ///
    /// Histogram buckets are cumulative with `le` upper bounds at
    /// `2^(k+1)` and a final `+Inf` bucket, matching the power-of-two
    /// bucket layout.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram {
                    buckets,
                    sum,
                    count,
                } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (k, c) in buckets.iter().enumerate() {
                        cumulative += c;
                        if k + 1 < buckets.len() {
                            let le = 1u128 << (k + 1);
                            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                        }
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    out.push_str(&format!("{name}_sum {sum}\n"));
                    out.push_str(&format!("{name}_count {count}\n"));
                }
            }
        }
        out
    }
}

/// The process-global registry. Compiler- and backend-level metrics land
/// here; per-instance subsystems (one serving runtime among several) own
/// their own [`Registry`] to keep instances from aliasing.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("reqs_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("reqs_total").get(), 5, "same handle by name");
        let g = r.gauge("depth");
        assert_eq!(g.add(3), 3);
        assert_eq!(g.add(-1), 2);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_bucket_math_matches_runtime_stats() {
        let h = Histogram::with_buckets(24);
        // 100 µs lands in bucket 6 ([64,128)), 3 µs in bucket 1 ([2,4)),
        // 0 in bucket 0 — the exact layout RuntimeStats always used.
        h.observe(100);
        h.observe(3);
        h.observe(0);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[6], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[0], 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 103);
        // The last bucket is open-ended.
        h.observe(u64::MAX);
        assert_eq!(h.bucket_counts()[23], 1);
    }

    #[test]
    fn histogram_extreme_values() {
        // Zero lands in bucket 0 ([0,2)): `64 - leading_zeros(0) = 0`,
        // saturating_sub keeps the index at 0 rather than wrapping.
        let h = Histogram::with_buckets(8);
        h.observe(0);
        assert_eq!(h.bucket_counts()[0], 1);
        assert_eq!(h.sum(), 0);
        // u64::MAX clamps into the open-ended last bucket, and the sum
        // tracks it exactly.
        h.observe(u64::MAX);
        assert_eq!(h.bucket_counts()[7], 1);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
        // A single-bucket histogram absorbs everything.
        let one = Histogram::with_buckets(1);
        one.observe(0);
        one.observe(12345);
        one.observe(u64::MAX);
        assert_eq!(one.bucket_counts(), vec![3]);
        // Boundary values land in the bucket whose range opens at them.
        let h2 = Histogram::with_buckets(8);
        h2.observe(1); // [1,2) → bucket 0
        h2.observe(2); // [2,4) → bucket 1
        h2.observe(4); // [4,8) → bucket 2
        let b = h2.bucket_counts();
        assert_eq!((b[0], b[1], b[2]), (1, 1, 1));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 1..=1024 uniformly: every pow2 bucket [2^k, 2^{k+1}) is exactly
        // full, so linear interpolation recovers exact quantiles almost
        // perfectly — the whole point over pow2 quantization.
        let h = Histogram::with_buckets(16);
        for v in 1..=1024u64 {
            h.observe(v);
        }
        let exact = |q: f64| (q * 1024.0).round();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let est = h.quantile(q).unwrap();
            let want = exact(q);
            assert!(
                (est - want).abs() <= want * 0.01 + 2.0,
                "q={q}: interpolated {est} vs exact {want}"
            );
        }
        // Without interpolation p95 would be quantized to 512 or 1024;
        // the interpolated value sits strictly between.
        let p95 = h.quantile(0.95).unwrap();
        assert!(p95 > 520.0 && p95 < 1020.0, "p95={p95} is not quantized");
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::with_buckets(8);
        assert_eq!(h.quantile(0.5), None, "empty histogram");
        h.observe(100);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        // A single observation: every quantile lands in its bucket
        // [64, 128).
        for q in [0.0, 0.5, 1.0] {
            let est = h.quantile(q).unwrap();
            assert!((64.0..128.0).contains(&est), "q={q} gave {est}");
        }
        // A point mass split across two buckets interpolates between
        // them: 3 at bucket [2,4), 1 at bucket [8,16) → p50 inside [2,4).
        let h2 = Histogram::with_buckets(8);
        for _ in 0..3 {
            h2.observe(3);
        }
        h2.observe(9);
        let p50 = h2.quantile(0.5).unwrap();
        assert!((2.0..4.0).contains(&p50), "p50={p50}");
        let p100 = h2.quantile(1.0).unwrap();
        assert!((8.0..=16.0).contains(&p100), "p100={p100}");
        // The free function agrees with the method.
        assert_eq!(
            quantile_from_pow2_buckets(&h2.bucket_counts(), 0.5),
            Some(p50)
        );
    }

    #[test]
    fn counter_saturates_by_wrapping_consistently() {
        // fetch_add wraps on overflow; the counter must not panic and the
        // wrapped value must still be observable (Prometheus semantics
        // treat a counter reset/wrap as a restart, not an error).
        let c = Counter::new();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(3);
        assert_eq!(c.get(), 2, "wrapping add, two past zero");
    }

    #[test]
    fn empty_registry_prometheus_export() {
        let r = Registry::new();
        assert_eq!(r.prometheus(), "", "no metrics, no output");
        assert!(r.snapshot().is_empty());
        // A histogram with zero observations still renders complete
        // cumulative buckets, sum, and count.
        r.histogram("empty_us", 3);
        let text = r.prometheus();
        assert!(text.contains("# TYPE empty_us histogram"));
        assert!(text.contains("empty_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_us_sum 0\n"));
        assert!(text.contains("empty_us_count 0\n"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("a_total").add(2);
        r.gauge("b").set(-3);
        let h = r.histogram("lat_us", 4);
        h.observe(1);
        h.observe(9); // bucket 3 (open end: [8, ∞))
        let text = r.prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 2\n"));
        assert!(text.contains("# TYPE b gauge\nb -3\n"));
        assert!(text.contains("lat_us_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum 10\n"));
        assert!(text.contains("lat_us_count 2\n"));
    }

    #[test]
    fn global_registry_is_shared() {
        global().counter("telemetry_test_global_total").inc();
        assert!(global().counter("telemetry_test_global_total").get() >= 1);
    }
}
