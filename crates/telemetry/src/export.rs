//! Exporters: JSONL, Chrome trace-event JSON, Prometheus text.
//!
//! All three are hand-rolled string builders — this crate takes no
//! dependencies. The Chrome exporter emits the [trace-event format]
//! (`B`/`E` duration events, `X` complete events, `i` instants) that
//! Perfetto and `chrome://tracing` load directly; timestamps convert
//! from the tracer's nanoseconds to the format's microseconds.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::metrics::Registry;
use crate::trace::{AttrValue, Event, EventKind};

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn attr_json(v: &AttrValue) -> String {
    match v {
        AttrValue::I64(i) => i.to_string(),
        AttrValue::F64(f) => {
            if f.is_finite() {
                format!("{f}")
            } else {
                "null".to_string()
            }
        }
        AttrValue::Str(s) => format!("\"{}\"", escape(s)),
    }
}

fn attrs_json(attrs: &[(&'static str, AttrValue)]) -> String {
    let fields: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape(k), attr_json(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders events as one JSON object per line (JSONL) — the raw event
/// stream, for ad-hoc processing with line-oriented tools.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let (kind, dur) = match &ev.kind {
            EventKind::Begin => ("begin", String::new()),
            EventKind::End => ("end", String::new()),
            EventKind::Complete { dur_ns } => ("complete", format!(",\"dur_ns\":{dur_ns}")),
            EventKind::Mark => ("mark", String::new()),
        };
        out.push_str(&format!(
            "{{\"kind\":\"{kind}\",\"name\":\"{}\",\"ts_ns\":{},\"tid\":{}{dur},\"attrs\":{}}}\n",
            escape(ev.name),
            ev.ts_ns,
            ev.tid,
            attrs_json(&ev.attrs)
        ));
    }
    out
}

/// Renders events as a Chrome trace-event JSON array, loadable in
/// Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut records = Vec::with_capacity(events.len());
    for ev in events {
        let ts_us = ev.ts_ns as f64 / 1e3;
        let common = format!(
            "\"name\":\"{}\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":{},\"cat\":\"hecate\",\"args\":{}",
            escape(ev.name),
            ev.tid,
            attrs_json(&ev.attrs)
        );
        let record = match &ev.kind {
            EventKind::Begin => format!("{{\"ph\":\"B\",{common}}}"),
            EventKind::End => format!("{{\"ph\":\"E\",{common}}}"),
            EventKind::Complete { dur_ns } => {
                format!(
                    "{{\"ph\":\"X\",\"dur\":{:.3},{common}}}",
                    *dur_ns as f64 / 1e3
                )
            }
            EventKind::Mark => format!("{{\"ph\":\"i\",\"s\":\"t\",{common}}}"),
        };
        records.push(record);
    }
    format!("[\n{}\n]\n", records.join(",\n"))
}

/// Renders events as one compact JSON array — the embeddable form of
/// [`jsonl`], used by diagnostics snapshots and black-box dumps that
/// inline a retained trace inside a larger JSON document.
pub fn events_json(events: &[Event]) -> String {
    let records: Vec<String> = events
        .iter()
        .map(|ev| {
            let (kind, dur) = match &ev.kind {
                EventKind::Begin => ("begin", String::new()),
                EventKind::End => ("end", String::new()),
                EventKind::Complete { dur_ns } => ("complete", format!(",\"dur_ns\":{dur_ns}")),
                EventKind::Mark => ("mark", String::new()),
            };
            format!(
                "{{\"kind\":\"{kind}\",\"name\":\"{}\",\"ts_ns\":{},\"tid\":{}{dur},\"attrs\":{}}}",
                escape(ev.name),
                ev.ts_ns,
                ev.tid,
                attrs_json(&ev.attrs)
            )
        })
        .collect();
    format!("[{}]", records.join(","))
}

/// Renders a metrics registry as Prometheus-style text exposition
/// (convenience alias for [`Registry::prometheus`]).
pub fn prometheus(registry: &Registry) -> String {
    registry.prometheus()
}

/// Renders a precision trace: one JSON object per line for every
/// `precision`-family mark (`precision`, `precision-probe`) in the event
/// stream, carrying its timestamp, thread, and attributes verbatim.
///
/// This is the noise-budget analogue of [`jsonl`]: the executor's
/// per-op noise-ledger marks become a line-oriented file an operator can
/// grep or load into a dataframe, and the audit driver's decrypt probes
/// interleave in timestamp order.
pub fn precision_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        if !matches!(ev.kind, EventKind::Mark) {
            continue;
        }
        if ev.name != "precision" && ev.name != "precision-probe" {
            continue;
        }
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"ts_ns\":{},\"tid\":{},\"attrs\":{}}}\n",
            escape(ev.name),
            ev.ts_ns,
            ev.tid,
            attrs_json(&ev.attrs)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Attrs;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                kind: EventKind::Begin,
                name: "compile",
                ts_ns: 1_000,
                tid: 1,
                attrs: vec![("scheme", "hecate".into())],
            },
            Event {
                kind: EventKind::Complete { dur_ns: 500 },
                name: "queue-wait",
                ts_ns: 1_200,
                tid: 2,
                attrs: Attrs::new(),
            },
            Event {
                kind: EventKind::Mark,
                name: "tick",
                ts_ns: 1_300,
                tid: 1,
                attrs: vec![("n", 2.into()), ("f", 0.5.into())],
            },
            Event {
                kind: EventKind::End,
                name: "compile",
                ts_ns: 2_000,
                tid: 1,
                attrs: vec![("est_us", 12.5.into())],
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(lines[0].contains("\"kind\":\"begin\""));
        assert!(lines[1].contains("\"dur_ns\":500"));
        assert!(lines[3].contains("\"est_us\":12.5"));
    }

    #[test]
    fn events_json_is_one_compact_array() {
        let json = events_json(&sample_events());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(!json.contains('\n'));
        assert_eq!(json.matches("\"kind\":").count(), 4);
        assert!(json.contains("\"dur_ns\":500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn chrome_trace_has_the_event_phases() {
        let json = chrome_trace(&sample_events());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.000"), "ns converted to µs");
        assert!(json.contains("\"dur\":0.500"));
        assert!(json.contains("\"scheme\":\"hecate\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn precision_jsonl_selects_precision_marks() {
        let mut events = sample_events();
        events.push(Event {
            kind: EventKind::Mark,
            name: "precision",
            ts_ns: 1_400,
            tid: 1,
            attrs: vec![
                ("i", 7.into()),
                ("op", "rescale".into()),
                ("margin_bits", 2.5.into()),
            ],
        });
        events.push(Event {
            kind: EventKind::Mark,
            name: "precision-probe",
            ts_ns: 1_500,
            tid: 1,
            attrs: vec![("measured_rms", 1e-6.into())],
        });
        // A *span* named precision must not leak in — only marks do.
        events.push(Event {
            kind: EventKind::Begin,
            name: "precision",
            ts_ns: 1_600,
            tid: 1,
            attrs: vec![],
        });
        let text = precision_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "only the two precision marks: {text}");
        assert!(lines[0].contains("\"kind\":\"precision\""));
        assert!(lines[0].contains("\"margin_bits\":2.5"));
        assert!(lines[1].contains("\"kind\":\"precision-probe\""));
        assert!(lines[1].contains("\"measured_rms\":0.000001"));
        for line in &lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn strings_are_escaped() {
        let ev = Event {
            kind: EventKind::Mark,
            name: "m",
            ts_ns: 0,
            tid: 1,
            attrs: vec![("msg", "a\"b\\c\nd\u{1}".into())],
        };
        let line = jsonl(&[ev]);
        assert!(line.contains("a\\\"b\\\\c\\nd\\u0001"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = Event {
            kind: EventKind::Mark,
            name: "m",
            ts_ns: 0,
            tid: 1,
            attrs: vec![("x", f64::NAN.into())],
        };
        assert!(jsonl(&[ev]).contains("\"x\":null"));
    }
}
