//! Zero-dependency tracing and metrics for HECATE.
//!
//! Production systems are operated through traces and metrics, and the
//! paper's own headline result (a 1.3% geomean estimation error, Fig. 8)
//! rests on comparing the static estimator against *measured* per-op
//! latencies. This crate is the substrate for both:
//!
//! - [`trace`] — a span tracer: RAII [`trace::Span`] guards with
//!   monotonic timestamps and key/value attributes, buffered in
//!   lock-cheap per-thread buffers and drained into a global sink. When
//!   tracing is disabled the hot path is a single relaxed atomic load —
//!   measured at a few nanoseconds per call, versus tens of microseconds
//!   for the cheapest homomorphic kernel.
//! - [`metrics`] — a metrics registry generalizing the runtime's ad-hoc
//!   atomics: named [`metrics::Counter`]s, [`metrics::Gauge`]s, and
//!   power-of-two [`metrics::Histogram`]s, all shared via `Arc`ed atomics
//!   so recording never takes the registry lock.
//! - [`export`] — three exporters: a JSONL event stream, Chrome
//!   trace-event JSON (loadable in Perfetto or `chrome://tracing`), and a
//!   Prometheus-style text exposition of a registry.
//! - [`recorder`] — the flight recorder: bounded per-thread event rings
//!   (overwrite-oldest) that stay enabled in serving mode forever, with
//!   tail-based retention promoting the span trees of interesting
//!   requests (slow, shed, timed out, guard-failed, panicked) into a
//!   bounded store, keyed by the correlation ids the tracer stamps via
//!   [`trace::push_context`].
//!
//! The crate deliberately depends on nothing, not even other HECATE
//! crates, so every layer of the workspace (compiler, backend, serving
//! runtime, benchmark harness) can emit into the same sink. The
//! aggregation that folds execution spans back into a measured cost table
//! lives in `hecate_compiler::estimator`, next to the type it produces.
//!
//! # Example
//!
//! ```
//! use hecate_telemetry::trace;
//!
//! let ((), events) = trace::capture(|| {
//!     let mut outer = trace::span("compile");
//!     {
//!         let _inner = trace::span_with("pass", || vec![("n", 3.into())]);
//!     }
//!     outer.attr("est_us", 125.0.into());
//! });
//! let spans = trace::pair_spans(&events).unwrap();
//! assert_eq!(spans.len(), 2);
//! let json = hecate_telemetry::export::chrome_trace(&events);
//! assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{quantile_from_pow2_buckets, Counter, Gauge, Histogram, Registry};
pub use recorder::{RecorderConfig, RetainedSummary, RetainedTrace};
pub use trace::{AttrValue, Attrs, Event, EventKind, PairedSpan, Span};
