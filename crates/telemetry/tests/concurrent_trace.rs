//! Tracer contract under concurrency: spans recorded from many threads
//! at once produce a well-formed trace (every end matches a begin,
//! nesting is valid per thread), and the disabled path records nothing
//! while costing almost nothing.

use hecate_telemetry::trace::{self, Attrs};
use std::time::Instant;

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 200;

#[test]
fn concurrent_spans_from_eight_threads_are_well_formed() {
    let ((), events) = trace::capture(|| {
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..SPANS_PER_THREAD {
                        let mut outer = trace::span_with("work", || {
                            vec![("thread", t.into()), ("i", i.into())]
                        });
                        {
                            let _inner = trace::span("inner");
                            std::hint::black_box(t * i);
                        }
                        outer.attr("done", true.into());
                    }
                });
            }
        });
    });

    // Two begin/end pairs per span per thread.
    assert_eq!(events.len(), THREADS * SPANS_PER_THREAD * 2 * 2);

    // pair_spans validates per-thread begin/end matching and flags
    // unterminated spans; a mis-nested or torn trace fails here.
    let spans = trace::pair_spans(&events).expect("well-formed trace");
    assert_eq!(spans.len(), THREADS * SPANS_PER_THREAD * 2);

    let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
    assert_eq!(tids.len(), THREADS, "each thread records under its own tid");

    // Nesting: every inner span lies within some work span of its tid.
    for inner in spans.iter().filter(|s| s.name == "inner") {
        assert!(
            spans.iter().any(|outer| {
                outer.name == "work"
                    && outer.tid == inner.tid
                    && outer.ts_ns <= inner.ts_ns
                    && outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns
            }),
            "inner span at {} on tid {} has no enclosing work span",
            inner.ts_ns,
            inner.tid
        );
    }

    // The merged stream is globally sorted by timestamp.
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
}

#[test]
fn disabled_tracer_records_nothing_and_is_near_free() {
    // Nothing recorded: spans, completes, and marks outside a capture
    // (tracing off) must leave the sink empty.
    {
        let mut s = trace::span_with("off", || vec![("k", 1.into())]);
        s.attr("x", 2.into());
    }
    trace::complete_with("off", Instant::now(), Attrs::new);
    trace::mark_with("off", Attrs::new);
    let ((), events) = trace::capture(|| {});
    assert!(events.is_empty(), "disabled tracer must record nothing");

    // Near-free: the disabled span path is one relaxed atomic load. The
    // bound here is deliberately loose (100 ns/call averaged over 1M
    // calls — two orders of magnitude above the real cost) so the test
    // cannot flake on a loaded CI machine while still catching any
    // accidental allocation, lock, or syscall on the disabled path.
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..CALLS {
        let _s = trace::span_with("off", || vec![("i", i.into())]);
    }
    let per_call_ns = t0.elapsed().as_nanos() as f64 / CALLS as f64;
    assert!(
        per_call_ns < 100.0,
        "disabled span costs {per_call_ns:.1} ns/call; expected ~1 ns"
    );
}
