//! Flight-recorder contract: bounded per-thread rings that overwrite
//! oldest-first under concurrent load without tearing events, tail-based
//! retention that promotes exactly the correlated span tree, a bounded
//! retained store, and the buffered tracer's high-water drop policy.
//!
//! The recorder (like the tracer) is process-global, so every test here
//! serializes on one mutex and filters by event names unique to itself.

use hecate_telemetry::trace::{self, AttrValue};
use hecate_telemetry::{recorder, RecorderConfig};
use std::sync::Mutex;

/// Serializes tests: recorder/tracer state is process-global.
static GLOBAL: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn attr_i64(ev: &trace::Event, key: &str) -> Option<i64> {
    ev.attrs
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.as_i64())
}

const THREADS: usize = 8;
const EVENTS_PER_THREAD: usize = 10_000;
const RING_CAP: usize = 256;

#[test]
fn concurrent_overwrite_keeps_a_consistent_suffix_per_thread() {
    let _g = locked();
    recorder::clear();
    recorder::configure(&RecorderConfig {
        ring_capacity: RING_CAP,
        retained_capacity: 64,
    });
    recorder::set_enabled(true);
    assert!(
        !trace::enabled(),
        "tracer must stay off: recorder-only path"
    );

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    // The check attr ties thread and sequence together;
                    // a torn or misfiled event breaks the equation.
                    trace::mark_with("ring-load", || {
                        vec![
                            ("thread", (t as u64).into()),
                            ("seq", (i as u64).into()),
                            ("check", ((t * EVENTS_PER_THREAD + i) as u64).into()),
                        ]
                    });
                }
            });
        }
    });
    recorder::set_enabled(false);

    let all = recorder::snapshot();
    let mine: Vec<_> = all.iter().filter(|e| e.name == "ring-load").collect();

    // Group by the thread attr: each writer had its own ring, so each
    // group must be exactly the newest RING_CAP events of that thread,
    // in order, untorn.
    for t in 0..THREADS as i64 {
        let mut seqs: Vec<i64> = mine
            .iter()
            .filter(|e| attr_i64(e, "thread") == Some(t))
            .map(|e| {
                let seq = attr_i64(e, "seq").expect("seq attr");
                let check = attr_i64(e, "check").expect("check attr");
                assert_eq!(
                    check,
                    t * EVENTS_PER_THREAD as i64 + seq,
                    "torn event: thread {t} seq {seq} carries check {check}"
                );
                seq
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs.len(), RING_CAP, "thread {t} ring holds exactly cap");
        let first = EVENTS_PER_THREAD as i64 - RING_CAP as i64;
        let want: Vec<i64> = (first..EVENTS_PER_THREAD as i64).collect();
        assert_eq!(seqs, want, "thread {t} must keep the newest suffix");
    }

    assert!(
        recorder::overwritten_events() >= (THREADS * (EVENTS_PER_THREAD - RING_CAP)) as u64,
        "overwrites must be counted"
    );
    recorder::clear();
}

#[test]
fn retention_promotes_request_and_batch_linked_events() {
    let _g = locked();
    recorder::clear();
    recorder::configure(&RecorderConfig {
        ring_capacity: 4096,
        retained_capacity: 64,
    });
    recorder::set_enabled(true);

    let req_id = 777_001u64;
    let batch_id = 888_001u64;
    {
        let _ctx = trace::push_context(req_id, 0);
        let mut span = trace::span_with("retained-req", || vec![("k", 1.into())]);
        span.attr("ok", true.into());
    }
    {
        // Shared batch work carries only the batch id; a member mark
        // carries the explicit req_id linking it back.
        let _ctx = trace::push_context(0, batch_id);
        trace::mark_with("retained-member", || vec![("req_id", req_id.into())]);
        let _span = trace::span_with("retained-batch", || vec![("occupancy", 2.into())]);
    }
    // Uncorrelated noise must not be promoted.
    trace::mark_with("retained-noise", || vec![("k", 2.into())]);
    recorder::set_enabled(false);

    let kept = recorder::retain_with(req_id, batch_id, "slow");
    let trace_for = recorder::retained_trace(req_id).expect("trace retained");
    assert_eq!(trace_for.reason, "slow");
    assert_eq!(trace_for.events.len(), kept);
    let names: Vec<&str> = trace_for.events.iter().map(|e| e.name).collect();
    assert!(names.contains(&"retained-req"), "req events promoted");
    assert!(names.contains(&"retained-member"), "member mark promoted");
    assert!(names.contains(&"retained-batch"), "batch-linked promoted");
    assert!(!names.contains(&"retained-noise"), "noise must stay out");
    // Both Begin and End of the request span survive.
    assert_eq!(
        names.iter().filter(|n| **n == "retained-req").count(),
        2,
        "span begin + end both promoted"
    );
    assert!(
        trace_for
            .events
            .windows(2)
            .all(|w| w[0].ts_ns <= w[1].ts_ns),
        "retained events are time-sorted"
    );
    let index = recorder::retained_index();
    assert!(index
        .iter()
        .any(|s| s.req_id == req_id && s.reason == "slow" && s.events == kept));
    recorder::clear();
}

#[test]
fn retained_store_is_bounded_and_keeps_newest() {
    let _g = locked();
    recorder::clear();
    recorder::configure(&RecorderConfig {
        ring_capacity: 4096,
        retained_capacity: 4,
    });
    recorder::set_enabled(true);
    for i in 0..10u64 {
        let id = 555_000 + i;
        let _ctx = trace::push_context(id, 0);
        trace::mark_with("bounded-store", Vec::new);
        drop(_ctx);
        recorder::retain(id, "slow");
    }
    recorder::set_enabled(false);
    let index = recorder::retained_index();
    assert_eq!(index.len(), 4, "retained store respects its bound");
    let ids: Vec<u64> = index.iter().map(|s| s.req_id).collect();
    assert_eq!(ids, vec![555_006, 555_007, 555_008, 555_009]);
    assert!(
        recorder::retained_trace(555_000).is_none(),
        "oldest evicted"
    );
    recorder::clear();
    // Restore defaults for whichever test runs next.
    recorder::configure(&RecorderConfig::default());
}

#[test]
fn configure_rebounds_existing_rings_keeping_newest() {
    let _g = locked();
    recorder::clear();
    recorder::configure(&RecorderConfig {
        ring_capacity: 64,
        retained_capacity: 64,
    });
    recorder::set_enabled(true);
    for i in 0..40u64 {
        trace::mark_with("rebound", || vec![("seq", i.into())]);
    }
    // Shrink below the current population: the newest 8 must survive.
    recorder::configure(&RecorderConfig {
        ring_capacity: 8,
        retained_capacity: 64,
    });
    recorder::set_enabled(false);
    let mut seqs: Vec<i64> = recorder::snapshot()
        .iter()
        .filter(|e| e.name == "rebound")
        .map(|e| attr_i64(e, "seq").expect("seq"))
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (32..40).collect::<Vec<i64>>());
    recorder::clear();
    recorder::configure(&RecorderConfig::default());
}

#[test]
fn high_water_drops_and_counts_instead_of_growing() {
    let _g = locked();
    let prev = trace::high_water();
    trace::set_high_water(100);
    let _ = trace::drain();
    let dropped_before = trace::dropped_events();
    trace::set_enabled(true);
    for i in 0..500u64 {
        trace::mark_with("hw-flood", || vec![("i", i.into())]);
    }
    trace::set_enabled(false);
    let events = trace::drain();
    trace::set_high_water(prev);
    let flood: Vec<_> = events.iter().filter(|e| e.name == "hw-flood").collect();
    assert_eq!(flood.len(), 100, "buffer capped at the high-water mark");
    // The survivors are the oldest (drop-new policy: the bound protects
    // memory; the recorder covers the tail).
    assert_eq!(attr_i64(flood[0], "i"), Some(0));
    assert_eq!(attr_i64(flood[99], "i"), Some(99));
    assert_eq!(
        trace::dropped_events() - dropped_before,
        400,
        "drops are counted"
    );
}

#[test]
fn recorder_disabled_records_nothing() {
    let _g = locked();
    recorder::clear();
    assert!(!recorder::enabled());
    trace::mark_with("recorder-off", || vec![("k", AttrValue::I64(1))]);
    assert!(
        !recorder::snapshot()
            .iter()
            .any(|e| e.name == "recorder-off"),
        "disabled recorder must not record"
    );
}
