//! Flight-recorder integration: correlation ids on responses, tail-based
//! retention for every interesting-request class (slow, shed, timed-out,
//! guard-failed, panicked), the live diagnostics snapshot, the crash
//! black box, and the bounded-memory soak.
//!
//! The recorder is process-global (the runtime refcounts enablement), so
//! every test here serializes on one mutex and clears recorder state
//! before it starts — retained traces are then attributable to this
//! test alone.

use hecate_compiler::{CompileOptions, Scheme};
use hecate_ir::FunctionBuilder;
use hecate_runtime::{
    ChaosKind, ChaosOptions, DiagOptions, RecorderOptions, Request, Runtime, RuntimeConfig,
    RuntimeError,
};
use hecate_telemetry::recorder;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests: recorder state is process-global.
static GLOBAL: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn sample_func(vec: usize) -> hecate_ir::Function {
    let mut b = FunctionBuilder::new("flightrec", vec);
    let x = b.input_cipher("x");
    let sq = b.square(x);
    b.output(sq);
    b.finish()
}

fn sample_inputs(vec: usize) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert("x".to_string(), (0..vec).map(|i| i as f64 * 0.1).collect());
    m
}

fn options() -> CompileOptions {
    let mut o = CompileOptions::with_waterline(22.0);
    o.degree = Some(128);
    o
}

fn request(session: u64) -> Request {
    Request {
        session,
        func: sample_func(8),
        scheme: Scheme::Pars,
        options: options(),
        inputs: sample_inputs(8),
        deadline: None,
        max_retries: 0,
    }
}

/// Recorder options that retain every *successful* request too
/// (threshold zero makes every latency "slow"), so tests can look up a
/// trace by the response's req_id.
fn retain_everything() -> RecorderOptions {
    RecorderOptions {
        slow_threshold: Some(Duration::ZERO),
        ..RecorderOptions::default()
    }
}

/// With no slow threshold (the default), a healthy request leaves
/// nothing behind: the ring decays it, the retained store stays empty.
#[test]
fn ok_requests_are_not_retained_by_default() {
    let _g = locked();
    recorder::clear();
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let resp = rt.run_batch(vec![request(session)]).remove(0).unwrap();
    assert!(resp.req_id > 0, "every admitted request gets a req_id");
    assert!(
        recorder::retained_trace(resp.req_id).is_none(),
        "healthy fast requests must not be promoted"
    );
    rt.shutdown();
}

/// A request over the slow threshold is promoted with its full span
/// tree, looked up by the correlation id the response carries.
#[test]
fn slow_request_retains_the_full_span_tree() {
    let _g = locked();
    recorder::clear();
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        recorder: Some(retain_everything()),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let resp = rt.run_batch(vec![request(session)]).remove(0).unwrap();
    let trace = recorder::retained_trace(resp.req_id).expect("slow trace retained");
    assert_eq!(trace.reason, "slow");
    assert_eq!(trace.req_id, resp.req_id);
    let names: Vec<&str> = trace.events.iter().map(|e| e.name).collect();
    assert_eq!(
        names.iter().filter(|n| **n == "request").count(),
        2,
        "request span begin + end both promoted: {names:?}"
    );
    assert!(
        names.contains(&"execute"),
        "backend executor spans carry the correlation id: {names:?}"
    );
    assert!(
        names.contains(&"queue-wait"),
        "queue-wait complete event carries the correlation id: {names:?}"
    );
    assert!(
        trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "retained events are time-sorted"
    );
    rt.shutdown();
}

/// Every failure class is promoted under its own reason, without any
/// slow threshold configured.
#[test]
fn failure_classes_are_retained_under_their_reason() {
    let _g = locked();

    // Shed: admission prices out a known plan.
    recorder::clear();
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        admission_budget_us: Some(1.0),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    rt.run_batch(vec![request(session)]).remove(0).unwrap();
    let err = rt.submit(request(session)).unwrap_err();
    assert!(matches!(err, RuntimeError::Shed { .. }), "{err:?}");
    let shed: Vec<_> = recorder::retained_index()
        .into_iter()
        .filter(|s| s.reason == "shed")
        .collect();
    assert_eq!(shed.len(), 1, "the shed request was promoted");
    let trace = recorder::retained_trace(shed[0].req_id).unwrap();
    assert!(
        trace.events.iter().any(|e| e.name == "shed"),
        "the shed mark itself is in the retained trace"
    );
    rt.shutdown();

    // Timed out: an already-expired deadline.
    recorder::clear();
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let mut req = request(session);
    req.deadline = Some(Duration::ZERO);
    let err = rt.run_batch(vec![req]).remove(0).unwrap_err();
    assert!(matches!(err, RuntimeError::TimedOut { .. }), "{err:?}");
    assert!(
        recorder::retained_index()
            .iter()
            .any(|s| s.reason == "timed-out"),
        "timed-out requests are promoted"
    );
    rt.shutdown();

    // Guard-failed: an injected transient fault with no retry budget.
    recorder::clear();
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        chaos: Some(ChaosOptions::only(ChaosKind::Fault, 1)),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let err = rt.run_batch(vec![request(session)]).remove(0).unwrap_err();
    assert!(matches!(err, RuntimeError::Exec(_)), "{err:?}");
    assert!(
        recorder::retained_index()
            .iter()
            .any(|s| s.reason == "guard-failed"),
        "guard failures are promoted"
    );
    rt.shutdown();
}

/// A panicking request writes a black box before the worker recycles:
/// the dump names the request, carries its retained span tree, and
/// embeds a full diagnostics report. Shutdown then leaves a final
/// periodic snapshot behind.
#[test]
fn panicked_request_writes_a_black_box() {
    let _g = locked();
    recorder::clear();
    let dir = std::env::temp_dir().join(format!("hecate-blackbox-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        chaos: Some(ChaosOptions::only(ChaosKind::Panic, 2)),
        diag: Some(DiagOptions {
            dir: dir.clone(),
            // Longer than the test: only the final shutdown dump fires.
            interval: Duration::from_secs(3600),
        }),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let err = rt.run_batch(vec![request(session)]).remove(0).unwrap_err();
    assert!(matches!(err, RuntimeError::Panicked { .. }), "{err:?}");

    let panicked: Vec<_> = recorder::retained_index()
        .into_iter()
        .filter(|s| s.reason == "panicked")
        .collect();
    assert_eq!(panicked.len(), 1, "the panicked request was promoted");
    let req_id = panicked[0].req_id;

    let path = dir.join(format!("blackbox-req{req_id}.json"));
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("black box missing at {}: {e}", path.display()));
    assert!(body.starts_with(&format!("{{\"req_id\":{req_id},\"reason\":\"panicked\"")));
    assert!(
        body.contains("injected worker panic"),
        "the panic message is in the dump"
    );
    assert!(
        body.contains("\"trace\":[{"),
        "the retained span tree is in the dump (non-empty)"
    );
    assert!(
        body.contains("\"name\":\"request\""),
        "the request span is in the dumped trace"
    );
    assert!(
        body.contains("\"diagnostics\":{\"generated_ns\":"),
        "a full diagnostics report is embedded"
    );

    rt.shutdown();
    // Drop raised the dumper's stop flag; it writes one last snapshot.
    let final_dump = dir.join("diag-000000.json");
    let body = std::fs::read_to_string(&final_dump)
        .unwrap_or_else(|e| panic!("final diag dump missing at {}: {e}", final_dump.display()));
    assert!(body.starts_with("{\"generated_ns\":"));
    assert!(body.contains("\"recorder\":{"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Runtime::diagnose` reflects live state: queue geometry, plan cache,
/// per-session margins, recorder occupancy, and SLO burn.
#[test]
fn diagnose_reports_live_state() {
    let _g = locked();
    recorder::clear();
    let workers = 2;
    let rt = Runtime::new(RuntimeConfig {
        workers,
        // Absurdly loose objective: burn must come out far below 1.
        slo_target_us: Some(60_000_000.0),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let reqs: Vec<Request> = (0..3).map(|_| request(session)).collect();
    for r in rt.run_batch(reqs) {
        r.unwrap();
    }
    let d = rt.diagnose();
    assert_eq!(d.workers, workers);
    assert_eq!(d.shard_depths.len(), workers, "one shard per worker");
    assert_eq!(d.shard_depths.iter().sum::<usize>(), 0, "queue drained");
    assert_eq!(d.stats.completed, 3);
    assert_eq!(d.plan_cache.entries.len(), 1, "one cached plan");
    assert!(d.plan_cache.entries[0].estimated_latency_us > 0.0);
    assert_eq!(d.sessions.len(), 1);
    assert_eq!(d.sessions[0].session, session);
    assert!(d.recorder.enabled, "recorder is on while the runtime lives");
    assert!(d.recorder.ring_events > 0, "the rings saw this traffic");
    assert_eq!(d.slo.window, 3);
    let p99 = d.slo.p99_us.expect("p99 over a non-empty window");
    let burn = d.slo.burn.expect("burn with a target configured");
    assert!(burn > 0.0 && burn < 1.0, "p99 {p99} µs vs 60 s target");
    let json = d.to_json();
    assert!(json.starts_with("{\"generated_ns\":"));
    assert!(json.contains("\"stats\":{"));
    rt.shutdown();
}

/// Opting out (`recorder: None`) really disables the recorder once no
/// other runtime holds it open.
#[test]
fn recorder_opt_out_disables_recording() {
    let _g = locked();
    recorder::clear();
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        recorder: None,
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let resp = rt.run_batch(vec![request(session)]).remove(0).unwrap();
    assert!(
        recorder::snapshot().is_empty(),
        "no runtime enabled the recorder, so the rings stay empty"
    );
    assert!(recorder::retained_trace(resp.req_id).is_none());
    rt.shutdown();
}

/// The acceptance soak: 10k requests through an always-on recorder.
/// Memory stays bounded — the rings never exceed their per-thread
/// capacity, the retained store never exceeds its bound — and every
/// request still succeeds. Run explicitly (CI does, in the
/// flight-recorder job):
/// `cargo test -p hecate-runtime --test flight_recorder -- --ignored`.
#[test]
#[ignore = "soak run; exercised by the CI flight-recorder job"]
fn recorder_soak_10k_stays_bounded() {
    let _g = locked();
    recorder::clear();
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        recorder: Some(RecorderOptions {
            ring_capacity: 1024,
            retained_capacity: 32,
            slow_threshold: None,
        }),
        ..RuntimeConfig::default()
    });
    let sessions = [rt.open_session(), rt.open_session()];
    const TOTAL: usize = 10_000;
    const CHUNK: usize = 500;
    let mut ok = 0usize;
    for chunk in 0..TOTAL / CHUNK {
        let reqs: Vec<Request> = (0..CHUNK)
            .map(|i| request(sessions[(chunk * CHUNK + i) % 2]))
            .collect();
        for r in rt.run_batch(reqs) {
            r.unwrap();
            ok += 1;
        }
        // The bound must hold *throughout* the soak, not just at the end.
        assert!(
            recorder::ring_event_count() <= recorder::segment_count() * recorder::ring_capacity(),
            "rings exceeded their bound mid-soak"
        );
    }
    assert_eq!(ok, TOTAL);
    assert_eq!(rt.stats().completed, TOTAL as u64);
    assert!(
        recorder::overwritten_events() > 0,
        "10k requests must have decayed events out of 1024-slot rings"
    );
    assert!(
        recorder::retained_index().len() <= 32,
        "retained store respects its bound"
    );
    assert!(
        recorder::retained_index().is_empty(),
        "healthy traffic with no slow threshold promotes nothing"
    );
    rt.shutdown();
}
