//! Scheduler-level slot batching: coalescing compatible requests into one
//! packed execution, demux correctness against the plaintext reference,
//! stats accounting, and the degradation paths (chaos member, expired
//! deadline, infeasible footprint).

use hecate_compiler::{CompileOptions, Scheme};
use hecate_ir::interp::interpret;
use hecate_ir::FunctionBuilder;
use hecate_runtime::{ChaosKind, ChaosOptions, Request, Runtime, RuntimeConfig, RuntimeError};
use std::collections::HashMap;
use std::time::Duration;

/// A small rotation-bearing pipeline (the rotate exercises the packed
/// guard bands end to end).
fn batched_func() -> hecate_ir::Function {
    let mut b = FunctionBuilder::new("batched", 8);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let r = b.rotate(x, 1);
    let s = b.add(x, r);
    let y2 = b.square(y);
    let m = b.add(s, y2);
    b.output(m);
    b.finish()
}

fn options() -> CompileOptions {
    let mut o = CompileOptions::with_waterline(22.0);
    // Degree 256 gives 128 slots: occupancy 4 leaves 32-slot blocks,
    // comfortably above the plan's 9-slot footprint.
    o.degree = Some(256);
    o
}

/// Per-member inputs: member `t` rotates the base vectors by `t`, so
/// members are distinct but share the magnitude profile.
fn member_inputs(t: usize) -> HashMap<String, Vec<f64>> {
    let base_x: Vec<f64> = (0..8).map(|i| 0.1 * i as f64 - 0.3).collect();
    let base_y: Vec<f64> = (0..8).map(|i| 0.7 - 0.05 * i as f64).collect();
    let rot = |v: &[f64]| {
        let mut v = v.to_vec();
        let by = t % v.len();
        v.rotate_left(by);
        v
    };
    let mut m = HashMap::new();
    m.insert("x".to_string(), rot(&base_x));
    m.insert("y".to_string(), rot(&base_y));
    m
}

fn request(session: u64, t: usize) -> Request {
    Request {
        session,
        func: batched_func(),
        scheme: Scheme::Pars,
        options: options(),
        inputs: member_inputs(t),
        deadline: None,
        max_retries: 2,
    }
}

fn batching_config(max_batch: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers: 1, // one worker makes the coalescing deterministic
        max_batch,
        batch_window: Duration::from_millis(200),
        ..RuntimeConfig::default()
    }
}

#[test]
fn coalesced_batch_serves_every_member_correctly() {
    let rt = Runtime::new(batching_config(4));
    let sessions: Vec<u64> = (0..4).map(|_| rt.open_session()).collect();
    let reqs: Vec<Request> = sessions
        .iter()
        .enumerate()
        .map(|(t, &s)| request(s, t))
        .collect();
    let responses = rt.run_batch(reqs);
    for (t, resp) in responses.into_iter().enumerate() {
        let resp = resp.unwrap_or_else(|e| panic!("member {t}: {e}"));
        assert_eq!(resp.batch_occupancy, 4, "member {t} not batched");
        let truth = interpret(&batched_func(), &member_inputs(t)).unwrap();
        for (name, expected) in &truth {
            let got = &resp.run.outputs[name];
            let rms = hecate_backend::rms_error(&got[..expected.len()], expected);
            assert!(rms < 1e-2, "member {t} output {name}: rms {rms}");
        }
    }
    let snap = rt.stats();
    assert_eq!(snap.completed, 4);
    assert_eq!(snap.batched_requests, 4);
    assert_eq!(snap.batches_executed, 1);
    assert_eq!(snap.batch_occupancy_buckets[2], 1, "one occupancy-4 batch");
    rt.shutdown();
}

#[test]
fn default_config_stays_solo() {
    let rt = Runtime::new(RuntimeConfig::default());
    let s = rt.open_session();
    let responses = rt.run_batch(vec![request(s, 0), request(s, 1)]);
    for resp in responses {
        assert_eq!(resp.unwrap().batch_occupancy, 1);
    }
    let snap = rt.stats();
    assert_eq!(snap.batched_requests, 0);
    assert_eq!(snap.batches_executed, 0);
    rt.shutdown();
}

/// One member draws an injected panic at collection: it fails alone with
/// a typed `Panicked` response while the remaining members still complete
/// (two batched, one solo — 3 does not make a power-of-two batch).
#[test]
fn chaos_member_degrades_without_poisoning_the_batch() {
    let rt = Runtime::new(RuntimeConfig {
        chaos: Some(ChaosOptions::only(ChaosKind::Panic, 4)),
        ..batching_config(4)
    });
    let sessions: Vec<u64> = (0..4).map(|_| rt.open_session()).collect();
    let reqs: Vec<Request> = sessions
        .iter()
        .enumerate()
        .map(|(t, &s)| request(s, t))
        .collect();
    let responses = rt.run_batch(reqs);
    let mut panicked = 0;
    let mut occupancies = Vec::new();
    for resp in responses {
        match resp {
            Ok(r) => occupancies.push(r.batch_occupancy),
            Err(RuntimeError::Panicked { .. }) => panicked += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    occupancies.sort_unstable();
    assert_eq!(panicked, 1, "exactly the injected member fails");
    assert_eq!(occupancies, vec![1, 2, 2], "two batched, one solo");
    let snap = rt.stats();
    assert_eq!(snap.completed, 3);
    assert_eq!(snap.failed, 1);
    assert_eq!(snap.panics, 1);
    assert_eq!(snap.batches_executed, 1);
    assert_eq!(snap.batched_requests, 2);
    rt.shutdown();
}

/// A member whose deadline expired in the queue fails fast with a typed
/// timeout and never holds the batch its peers form.
#[test]
fn expired_member_times_out_while_peers_complete() {
    let rt = Runtime::new(batching_config(4));
    let sessions: Vec<u64> = (0..4).map(|_| rt.open_session()).collect();
    let reqs: Vec<Request> = sessions
        .iter()
        .enumerate()
        .map(|(t, &s)| {
            let mut r = request(s, t);
            if t == 3 {
                r.deadline = Some(Duration::ZERO);
            }
            r
        })
        .collect();
    let responses = rt.run_batch(reqs);
    let mut timed_out = 0;
    let mut ok = 0;
    for resp in responses {
        match resp {
            Ok(_) => ok += 1,
            Err(RuntimeError::TimedOut { .. }) => timed_out += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(timed_out, 1);
    assert_eq!(ok, 3);
    let snap = rt.stats();
    assert_eq!(snap.timeouts, 1);
    assert_eq!(snap.batches_executed, 1);
    rt.shutdown();
}

/// A plan whose slot footprint cannot fit any packed block degrades every
/// member to correct solo service instead of failing or miscomputing.
#[test]
fn infeasible_footprint_degrades_to_solo() {
    // width 16 with rotate(8): the footprint needs 24 slots per block,
    // but degree 64 (32 slots) at occupancy 2 leaves 16-slot blocks.
    let mut b = FunctionBuilder::new("wide", 16);
    let x = b.input_cipher("x");
    let r = b.rotate(x, 8);
    let s = b.add(x, r);
    b.output(s);
    let func = b.finish();
    let mut opts = CompileOptions::with_waterline(22.0);
    opts.degree = Some(64);
    let inputs: HashMap<String, Vec<f64>> =
        [("x".to_string(), (0..16).map(|i| 0.05 * i as f64).collect())].into();

    let rt = Runtime::new(batching_config(2));
    let s1 = rt.open_session();
    let s2 = rt.open_session();
    let make = |session| Request {
        session,
        func: func.clone(),
        scheme: Scheme::Pars,
        options: opts.clone(),
        inputs: inputs.clone(),
        deadline: None,
        max_retries: 0,
    };
    let responses = rt.run_batch(vec![make(s1), make(s2)]);
    for resp in responses {
        let resp = resp.unwrap();
        assert_eq!(resp.batch_occupancy, 1, "infeasible plan must run solo");
        let truth = interpret(&func, &inputs).unwrap();
        let got = &resp.run.outputs["out0"];
        assert!(hecate_backend::rms_error(&got[..16], &truth["out0"]) < 1e-2);
    }
    let snap = rt.stats();
    assert_eq!(snap.batches_executed, 0);
    assert_eq!(snap.completed, 2);
    rt.shutdown();
}
