//! Resilience of the serving layer under injected failure: panic
//! isolation, deadlines, retries, bounded-queue rejection, cost-priced
//! shedding, and the full chaos soak.
//!
//! The invariant every test here defends: **every submitted request
//! yields exactly one terminal response** — `Ok`, or a typed error
//! (`Panicked`, `TimedOut`, `Exec`, `QueueFull`, `Shed`) — the pool
//! never hangs, and the stats counters reconcile exactly with the
//! response set.

use hecate_compiler::{CompileOptions, Scheme};
use hecate_ir::FunctionBuilder;
use hecate_runtime::{
    ChaosKind, ChaosOptions, RecorderOptions, Request, Runtime, RuntimeConfig, RuntimeError,
    StatsSnapshot,
};
use std::collections::HashMap;
use std::time::Duration;

fn sample_func(vec: usize) -> hecate_ir::Function {
    let mut b = FunctionBuilder::new("chaos", vec);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let x2 = b.square(x);
    let y2 = b.square(y);
    let s = b.add(x2, y2);
    let c = b.splat(0.25);
    let m = b.mul(s, c);
    b.output(m);
    b.finish()
}

fn sample_inputs(vec: usize) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert("x".to_string(), (0..vec).map(|i| i as f64 * 0.1).collect());
    m.insert(
        "y".to_string(),
        (0..vec).map(|i| 1.0 - i as f64 * 0.05).collect(),
    );
    m
}

fn options() -> CompileOptions {
    let mut o = CompileOptions::with_waterline(22.0);
    o.degree = Some(128);
    o
}

fn request(session: u64) -> Request {
    Request {
        session,
        func: sample_func(8),
        scheme: Scheme::Pars,
        options: options(),
        inputs: sample_inputs(8),
        deadline: None,
        max_retries: 0,
    }
}

/// Counters must reconcile exactly with the observed response set.
fn assert_reconciled(
    snap: &StatsSnapshot,
    results: &[Result<hecate_runtime::Response, RuntimeError>],
) {
    let ok = results.iter().filter(|r| r.is_ok()).count() as u64;
    let rejected = results
        .iter()
        .filter(|r| {
            matches!(
                r,
                Err(RuntimeError::Shed { .. }) | Err(RuntimeError::QueueFull { .. })
            )
        })
        .count() as u64;
    let failed = results.iter().filter(|r| r.is_err()).count() as u64 - rejected;
    let panicked = results
        .iter()
        .filter(|r| matches!(r, Err(RuntimeError::Panicked { .. })))
        .count() as u64;
    let timed_out = results
        .iter()
        .filter(|r| matches!(r, Err(RuntimeError::TimedOut { .. })))
        .count() as u64;
    assert_eq!(snap.completed, ok, "completed == Ok responses");
    assert_eq!(snap.failed, failed, "failed == executed-and-errored");
    assert_eq!(snap.shed, rejected, "shed == admission rejections");
    assert_eq!(snap.panics, panicked, "panics == Panicked responses");
    assert_eq!(snap.timeouts, timed_out, "timeouts == TimedOut responses");
    assert_eq!(snap.queue_depth, 0, "queue drains");
}

/// A panicked request is isolated: the worker answers with a typed
/// error, recycles, and the very next request through the same cache and
/// session succeeds — nothing is poisoned.
#[test]
fn panicked_request_does_not_poison_cache_or_session() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        chaos: Some(ChaosOptions::only(ChaosKind::Panic, 2)),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    // Chaos hits request 0; request 1 runs clean.
    let first = rt.run_batch(vec![request(session)]).remove(0);
    match first {
        Err(RuntimeError::Panicked { ref message }) => {
            assert!(message.contains("injected worker panic"), "{message}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    let second = rt.run_batch(vec![request(session)]).remove(0).unwrap();
    assert!(
        second.cache_hit,
        "the plan the panicked request compiled survives in the cache"
    );
    let snap = rt.stats();
    assert_eq!(snap.panics, 1);
    assert_eq!(snap.worker_respawns, 1, "the worker recycled");
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 1);
    assert_eq!(snap.compiles, 1, "one compile serves both requests");
    assert_eq!(rt.cached_plans(), 1);
    rt.shutdown();
}

/// An already-expired deadline fails fast with a typed timeout, before
/// any execution.
#[test]
fn expired_deadline_times_out_in_queue() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let mut req = request(session);
    req.deadline = Some(Duration::ZERO);
    let err = rt.run_batch(vec![req]).remove(0).unwrap_err();
    assert!(matches!(err, RuntimeError::TimedOut { .. }), "{err:?}");
    let snap = rt.stats();
    assert_eq!(snap.timeouts, 1);
    assert_eq!(snap.failed, 1);
    // The runtime still serves afterwards.
    assert!(rt.run_batch(vec![request(session)]).remove(0).is_ok());
    rt.shutdown();
}

/// A deadline that expires mid-request (here: during injected latency)
/// is caught by the executor's cancel token between ops.
#[test]
fn deadline_expires_mid_execution() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        chaos: Some(ChaosOptions {
            latency: Duration::from_millis(100),
            ..ChaosOptions::only(ChaosKind::Latency, 1)
        }),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    // Warm the plan cache (this request is merely slowed by chaos).
    rt.run_batch(vec![request(session)]).remove(0).unwrap();
    let mut req = request(session);
    req.deadline = Some(Duration::from_millis(20));
    let err = rt.run_batch(vec![req]).remove(0).unwrap_err();
    assert!(matches!(err, RuntimeError::TimedOut { .. }), "{err:?}");
    assert_eq!(rt.stats().timeouts, 1);
    rt.shutdown();
}

/// A transient injected fault (guard trip) recovers on retry: the
/// request re-executes on a fresh engine and succeeds, reporting the
/// attempt count.
#[test]
fn transient_fault_retries_to_success() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        chaos: Some(ChaosOptions::only(ChaosKind::Fault, 1)),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let mut req = request(session);
    req.max_retries = 1;
    let resp = rt.run_batch(vec![req]).remove(0).unwrap();
    assert_eq!(resp.retries, 1, "recovered on the second attempt");
    let snap = rt.stats();
    assert_eq!(snap.retries, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 0);
    rt.shutdown();

    // Without a retry budget the same fault is a typed guard error.
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        chaos: Some(ChaosOptions::only(ChaosKind::Fault, 1)),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let err = rt.run_batch(vec![request(session)]).remove(0).unwrap_err();
    assert!(matches!(err, RuntimeError::Exec(_)), "{err:?}");
    assert_eq!(rt.stats().retries, 0);
    rt.shutdown();
}

/// The bounded queue rejects overflow with a typed error instead of
/// growing without bound (or blocking the submitter).
#[test]
fn full_queue_rejects_with_typed_error() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        queue_capacity: 1,
        chaos: Some(ChaosOptions {
            latency: Duration::from_millis(300),
            ..ChaosOptions::only(ChaosKind::Latency, 1)
        }),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    // First request occupies the worker (chaos latency keeps it busy).
    let rx_a = rt.submit(request(session)).unwrap();
    // Wait until the worker has dequeued it, so the queue is observably
    // empty before we fill it.
    while rt.stats().queue_depth > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let rx_b = rt.submit(request(session)).unwrap(); // fills the queue
    let err = rt.submit(request(session)).unwrap_err(); // overflows
    match err {
        RuntimeError::QueueFull { capacity } => assert_eq!(capacity, 1),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(rt.stats().shed, 1, "rejections count as shed, not failed");
    assert!(rx_a.recv().unwrap().is_ok());
    assert!(rx_b.recv().unwrap().is_ok());
    assert_eq!(rt.stats().failed, 0);
    rt.shutdown();
}

/// Cost-priced admission: once a plan's estimated cost is known (cached),
/// a request pricing above the budget is shed before consuming queue
/// space; unknown plans are always admitted.
#[test]
fn admission_sheds_priced_out_requests() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        // Far below any real plan estimate, so every priced request sheds.
        admission_budget_us: Some(1.0),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    // Unknown plan: admitted (this is how its cost becomes known).
    let first = rt.run_batch(vec![request(session)]).remove(0);
    assert!(first.is_ok(), "unknown plans are always admitted");
    // Known plan: priced against the budget and shed.
    let err = rt.submit(request(session)).unwrap_err();
    match err {
        RuntimeError::Shed {
            estimated_us,
            budget_us,
            ..
        } => {
            assert!(estimated_us > budget_us);
            assert_eq!(budget_us, 1.0);
        }
        other => panic!("expected Shed, got {other:?}"),
    }
    let snap = rt.stats();
    assert_eq!(snap.shed, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.failed, 0, "shed requests are not failures");
    rt.shutdown();
}

/// Chaos injections are visible in telemetry: the request span carries a
/// `chaos=<kind>` attr, so a soak's retained traces say *which* requests
/// were hit and how — no guessing from timings.
#[test]
fn chaos_injection_is_attributed_on_the_request_span() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 1,
        chaos: Some(ChaosOptions::only(ChaosKind::Fault, 1)),
        // Threshold zero retains every request, so the trace is
        // addressable by the response's correlation id.
        recorder: Some(RecorderOptions {
            slow_threshold: Some(Duration::ZERO),
            ..RecorderOptions::default()
        }),
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let mut req = request(session);
    req.max_retries = 1;
    let resp = rt.run_batch(vec![req]).remove(0).unwrap();
    assert_eq!(resp.retries, 1, "the fault hit and the retry recovered");
    let trace = hecate_telemetry::recorder::retained_trace(resp.req_id)
        .expect("slow-threshold-zero retains the request");
    let attributed = trace.events.iter().any(|e| {
        e.name == "request"
            && e.attrs
                .iter()
                .any(|(k, v)| *k == "chaos" && v.as_str() == Some("fault"))
    });
    assert!(
        attributed,
        "request span must carry chaos=fault: {:?}",
        trace.events
    );
    rt.shutdown();
}

/// Randomized accounting stress: random chaos policies, deadlines, retry
/// budgets, and queue bounds. Whatever the mix, every request gets
/// exactly one terminal response, the counters reconcile, and shutdown
/// joins cleanly.
#[test]
fn randomized_chaos_accounting_reconciles() {
    // xorshift64*: deterministic, dependency-free randomness.
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545F4914F6CDD1D);
        state
    };
    for round in 0..3 {
        let chaos = ChaosOptions {
            every_nth: 1 + next() % 4,
            mix: match next() % 4 {
                0 => vec![ChaosKind::Fault],
                1 => vec![ChaosKind::Latency],
                2 => vec![ChaosKind::Panic],
                _ => vec![ChaosKind::Fault, ChaosKind::Latency, ChaosKind::Panic],
            },
            latency: Duration::from_millis(1 + next() % 10),
            ..ChaosOptions::default()
        };
        let rt = Runtime::new(RuntimeConfig {
            workers: 2,
            queue_capacity: 4 + (next() % 32) as usize,
            chaos: Some(chaos),
            ..RuntimeConfig::default()
        });
        let sessions = [rt.open_session(), rt.open_session()];
        let reqs: Vec<Request> = (0..16)
            .map(|i| {
                let mut req = request(sessions[i % 2]);
                req.deadline = match next() % 3 {
                    0 => None,
                    1 => Some(Duration::from_millis(1 + next() % 5)),
                    _ => Some(Duration::from_secs(30)),
                };
                req.max_retries = (next() % 3) as u32;
                req
            })
            .collect();
        let n = reqs.len();
        let results = rt.run_batch(reqs);
        assert_eq!(results.len(), n, "round {round}: one response each");
        for r in &results {
            // Every terminal outcome is a typed one.
            match r {
                Ok(_)
                | Err(RuntimeError::Panicked { .. })
                | Err(RuntimeError::TimedOut { .. })
                | Err(RuntimeError::Exec(_))
                | Err(RuntimeError::QueueFull { .. })
                | Err(RuntimeError::Shed { .. }) => {}
                other => panic!("round {round}: unexpected outcome {other:?}"),
            }
        }
        assert_reconciled(&rt.stats(), &results);
        rt.shutdown(); // must join, not hang
    }
}

/// The acceptance soak: 500 requests with ~10% injected failures
/// (rotating fault/latency/panic), retry budget 1. Zero hangs, exactly
/// one terminal response per request, and fully deterministic counters:
/// the chaos sequence hits every 10th request, so of 50 hits 17 are
/// faults (all recovered by retry), 17 latency (merely slowed), and 16
/// panics (isolated, worker recycled). Run explicitly (CI does, in the
/// chaos-soak job): `cargo test -p hecate-runtime --test chaos_soak -- --ignored`.
#[test]
#[ignore = "soak run; exercised by the CI chaos-soak job"]
fn chaos_soak_500() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 4,
        chaos: Some(ChaosOptions::default()), // every 10th, rotating mix
        ..RuntimeConfig::default()
    });
    let sessions = [rt.open_session(), rt.open_session()];
    let reqs: Vec<Request> = (0..500)
        .map(|i| {
            let mut req = request(sessions[i % 2]);
            req.max_retries = 1;
            req
        })
        .collect();
    let results = rt.run_batch(reqs);
    assert_eq!(results.len(), 500, "exactly one response per request");
    assert_reconciled(&rt.stats(), &results);

    let snap = rt.stats();
    assert_eq!(snap.completed, 484, "500 - 16 panic hits");
    assert_eq!(snap.failed, 16, "only the panic hits fail");
    assert_eq!(snap.panics, 16);
    assert_eq!(snap.worker_respawns, 16, "every panic recycles a worker");
    assert_eq!(snap.retries, 17, "every fault hit recovers on retry");
    assert_eq!(snap.timeouts, 0);
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.compiles, 1, "single-flight holds under chaos");
    for r in results {
        if let Err(e) = r {
            assert!(
                matches!(e, RuntimeError::Panicked { .. }),
                "only panics may fail in this configuration: {e:?}"
            );
        }
    }
    rt.shutdown();
}
