//! Serving-layer behavior: single-flight compilation under contention,
//! cache hits on resubmission, session isolation, and a stress run.

use hecate_backend::exec::BackendOptions;
use hecate_compiler::{CompileOptions, Scheme};
use hecate_ir::FunctionBuilder;
use hecate_runtime::{PlanCache, Request, Runtime, RuntimeConfig, RuntimeStats, SessionManager};
use std::collections::HashMap;
use std::sync::Arc;

fn sample_func(vec: usize) -> hecate_ir::Function {
    let mut b = FunctionBuilder::new("serve", vec);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let x2 = b.square(x);
    let y2 = b.square(y);
    let s = b.add(x2, y2);
    let c = b.splat(0.25);
    let m = b.mul(s, c);
    b.output(m);
    b.finish()
}

fn sample_inputs(vec: usize) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert("x".to_string(), (0..vec).map(|i| i as f64 * 0.1).collect());
    m.insert(
        "y".to_string(),
        (0..vec).map(|i| 1.0 - i as f64 * 0.05).collect(),
    );
    m
}

fn options() -> CompileOptions {
    let mut o = CompileOptions::with_waterline(22.0);
    o.degree = Some(128);
    o
}

/// Eight threads race a cold cache on the same key: the pipeline must run
/// exactly once, everyone must get the same artifact.
#[test]
fn racing_submissions_compile_exactly_once() {
    let stats = Arc::new(RuntimeStats::new());
    let cache = Arc::new(PlanCache::new(stats.clone()));
    let func = sample_func(8);
    let opts = options();
    let artifacts: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let func = func.clone();
                let opts = opts.clone();
                scope.spawn(move || cache.get_or_compile(&func, Scheme::Hecate, &opts).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let snap = stats.snapshot(8);
    assert_eq!(
        snap.compiles, 1,
        "single-flight: one pipeline run for 8 racers"
    );
    assert_eq!(snap.cache_misses, 1);
    assert_eq!(snap.cache_hits + snap.cache_misses, 8);
    let compilers = artifacts.iter().filter(|(_, hit)| !hit).count();
    assert_eq!(compilers, 1, "exactly one racer reports compiling");
    for (a, _) in &artifacts[1..] {
        assert!(
            Arc::ptr_eq(a, &artifacts[0].0),
            "all racers share the artifact"
        );
    }
}

/// The acceptance criterion: a second submission of an identical program
/// (rebuilt independently) is a cache hit — zero pipeline reruns.
#[test]
fn identical_resubmission_is_a_cache_hit() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        ..RuntimeConfig::default()
    });
    let session = rt.open_session();
    let make_req = || Request {
        session,
        func: sample_func(8), // rebuilt from scratch each time
        scheme: Scheme::Hecate,
        options: options(),
        inputs: sample_inputs(8),
        deadline: None,
        max_retries: 0,
    };
    let first = rt.run_batch(vec![make_req()]).remove(0).unwrap();
    assert!(!first.cache_hit);
    let second = rt.run_batch(vec![make_req()]).remove(0).unwrap();
    assert!(second.cache_hit);
    assert_eq!(second.plan_key, first.plan_key);
    assert_eq!(
        second.run.outputs, first.run.outputs,
        "same session, same keys"
    );
    let snap = rt.stats();
    assert_eq!(snap.compiles, 1, "no pipeline rerun on resubmission");
    assert_eq!(snap.completed, 2);
    assert_eq!(rt.cached_plans(), 1);
    rt.shutdown();
}

/// Two sessions share the compiled plan but not keys: both decrypt their
/// own results correctly, through engines built from different seeds.
#[test]
fn sessions_share_plans_not_keys() {
    let rt = Runtime::new(RuntimeConfig::default());
    let sa = rt.open_session();
    let sb = rt.open_session();
    let req = |session| Request {
        session,
        func: sample_func(8),
        scheme: Scheme::Pars,
        options: options(),
        inputs: sample_inputs(8),
        deadline: None,
        max_retries: 0,
    };
    let results = rt.run_batch(vec![req(sa), req(sb)]);
    let ra = results[0].as_ref().unwrap();
    let rb = results[1].as_ref().unwrap();
    assert_eq!(ra.plan_key, rb.plan_key, "one plan serves both tenants");
    assert_eq!(rt.stats().compiles, 1);
    // Both tenants decode the same (correct) cleartext result, each under
    // its own keys.
    for (name, va) in &ra.run.outputs {
        let vb = &rb.run.outputs[name];
        for (a, b) in va.iter().zip(vb) {
            assert!((a - b).abs() < 1e-2, "{name}: {a} vs {b}");
        }
    }
    rt.shutdown();
}

/// Unknown sessions are rejected, and a failing compile surfaces as an
/// error without wedging the workers.
#[test]
fn errors_propagate_per_request() {
    let rt = Runtime::new(RuntimeConfig::default());
    let bogus = Request {
        session: 777,
        func: sample_func(8),
        scheme: Scheme::Pars,
        options: options(),
        inputs: sample_inputs(8),
        deadline: None,
        max_retries: 0,
    };
    let err = rt.run_batch(vec![bogus]).remove(0).unwrap_err();
    assert!(matches!(
        err,
        hecate_runtime::RuntimeError::UnknownSession(777)
    ));

    let session = rt.open_session();
    let mut bad_opts = options();
    bad_opts.max_chain_len = 1; // unsatisfiable for this circuit
    let uncompilable = Request {
        session,
        func: sample_func(8),
        scheme: Scheme::Hecate,
        options: bad_opts,
        inputs: sample_inputs(8),
        deadline: None,
        max_retries: 0,
    };
    let err = rt.run_batch(vec![uncompilable]).remove(0).unwrap_err();
    assert!(matches!(err, hecate_runtime::RuntimeError::Compile(_)));

    // The runtime still serves good requests afterwards.
    let ok = Request {
        session,
        func: sample_func(8),
        scheme: Scheme::Pars,
        options: options(),
        inputs: sample_inputs(8),
        deadline: None,
        max_retries: 0,
    };
    assert!(rt.run_batch(vec![ok]).remove(0).is_ok());
    let snap = rt.stats();
    assert_eq!(snap.failed, 2);
    assert_eq!(snap.completed, 1);
    rt.shutdown();
}

/// Session key material is built lazily, once per (session, plan).
#[test]
fn engines_are_lazy_and_cached() {
    let mgr = SessionManager::new(42);
    let stats = Arc::new(RuntimeStats::new());
    let cache = PlanCache::new(stats);
    let (artifact, _) = cache
        .get_or_compile(&sample_func(8), Scheme::Pars, &options())
        .unwrap();
    let session = mgr.open();
    assert_eq!(session.engine_count(), 0, "no keys before first use");
    let backend = BackendOptions::default();
    let e1 = session.engine(&artifact, &backend).unwrap();
    let e2 = session.engine(&artifact, &backend).unwrap();
    assert!(Arc::ptr_eq(&e1, &e2), "engine (and keys) built once");
    assert_eq!(session.engine_count(), 1);
}

/// Sustained mixed load across sessions and plans. Run explicitly (CI
/// does, with 2 workers): `cargo test -p hecate-runtime -- --ignored`.
#[test]
#[ignore = "stress run; exercised by the CI runtime-stress job"]
fn stress_mixed_load() {
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        jobs_per_request: 2,
        ..RuntimeConfig::default()
    });
    let sessions: Vec<_> = (0..4).map(|_| rt.open_session()).collect();
    let mut reqs = Vec::new();
    for round in 0..10 {
        for (k, &session) in sessions.iter().enumerate() {
            let scheme = if (round + k) % 2 == 0 {
                Scheme::Pars
            } else {
                Scheme::Hecate
            };
            reqs.push(Request {
                session,
                func: sample_func(8),
                scheme,
                options: options(),
                inputs: sample_inputs(8),
                deadline: None,
                max_retries: 0,
            });
        }
    }
    let n = reqs.len();
    let results = rt.run_batch(reqs);
    assert_eq!(results.len(), n);
    for r in &results {
        assert!(r.is_ok(), "stress request failed: {:?}", r.as_ref().err());
    }
    let snap = rt.stats();
    assert_eq!(snap.completed as usize, n);
    assert_eq!(
        snap.compiles, 2,
        "two schemes → two plans, each compiled once"
    );
    assert_eq!(snap.queue_depth, 0);
    assert!(snap.peak_queue_depth > 0);
    let json = snap.to_json();
    assert!(json.contains("\"compiles\":2"));
    rt.shutdown();
}
