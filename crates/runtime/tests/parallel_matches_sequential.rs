//! Bit-identity of the parallel executor against the sequential one.
//!
//! Randomness lives only in key generation and input encryption, both of
//! which happen before DAG scheduling; every homomorphic kernel is
//! deterministic. Therefore the parallel executor must agree with
//! `execute_sequential` *exactly* — not approximately — on every
//! benchmark workload, at every worker count.

use hecate_apps::{all_benchmarks, Preset};
use hecate_backend::exec::{execute_sequential, BackendOptions, ExecEngine};
use hecate_compiler::{compile, CompileOptions, Scheme};
use hecate_runtime::execute_parallel;
use std::sync::Arc;

fn backend() -> BackendOptions {
    BackendOptions {
        degree_override: Some(512),
        ..BackendOptions::default()
    }
}

#[test]
fn every_app_workload_is_bit_identical() {
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(512);
    for bench in all_benchmarks(Preset::Small) {
        let prog = compile(&bench.func, Scheme::Pars, &opts)
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", bench.name));
        let engine = ExecEngine::new(Arc::new(prog), &backend()).unwrap();
        let seq = execute_sequential(&engine, &bench.inputs).unwrap();
        for jobs in [2, 4] {
            let par = execute_parallel(&engine, &bench.inputs, jobs).unwrap();
            assert_eq!(
                seq.outputs.len(),
                par.outputs.len(),
                "{}: output arity",
                bench.name
            );
            for (name, want) in &seq.outputs {
                let got = &par.outputs[name];
                assert_eq!(
                    got, want,
                    "{} output '{name}' diverged at jobs={jobs}",
                    bench.name
                );
            }
        }
    }
}

#[test]
fn hecate_scheme_is_bit_identical_too() {
    let bench = all_benchmarks(Preset::Small)
        .into_iter()
        .find(|b| b.name == "SF")
        .unwrap();
    let mut opts = CompileOptions::with_waterline(24.0);
    opts.degree = Some(512);
    let prog = compile(&bench.func, Scheme::Hecate, &opts).unwrap();
    let engine = ExecEngine::new(Arc::new(prog), &backend()).unwrap();
    let seq = execute_sequential(&engine, &bench.inputs).unwrap();
    let par = execute_parallel(&engine, &bench.inputs, 4).unwrap();
    assert_eq!(seq.outputs, par.outputs);
}
