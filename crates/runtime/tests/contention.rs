//! Contention stress for the sharded work-stealing dequeue: many workers,
//! mixed plans and sessions, batched and solo traffic submitted from
//! concurrent producers. Pins the three liveness/accounting properties
//! the sharded queue must keep: every request gets exactly one terminal
//! response, no job is stranded on an unwatched shard (no lost wakeups),
//! and the stats conserve (completed + failed = submitted, queue drains
//! to zero).

use hecate_compiler::{CompileOptions, Scheme};
use hecate_ir::{Function, FunctionBuilder};
use hecate_runtime::{Request, Runtime, RuntimeConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn options() -> CompileOptions {
    let mut o = CompileOptions::with_waterline(22.0);
    o.degree = Some(256);
    o
}

/// Three structurally distinct programs so the traffic spans several
/// plan keys (coalescing only merges same-key requests).
fn func_square() -> Function {
    let mut b = FunctionBuilder::new("sq", 8);
    let x = b.input_cipher("x");
    let s = b.square(x);
    b.output(s);
    b.finish()
}

fn func_rotate() -> Function {
    let mut b = FunctionBuilder::new("rot", 8);
    let x = b.input_cipher("x");
    let r = b.rotate(x, 1);
    let s = b.add(x, r);
    b.output(s);
    b.finish()
}

fn func_chain() -> Function {
    let mut b = FunctionBuilder::new("chain", 8);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let s = b.add(x, y);
    let q = b.square(s);
    b.output(q);
    b.finish()
}

fn inputs_for(func: &Function, salt: usize) -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    for op in func.ops() {
        if let hecate_ir::Op::Input { name } = op {
            m.entry(name.clone()).or_insert_with(|| {
                (0..8)
                    .map(|i| 0.05 * ((i + salt) % 11) as f64 - 0.2)
                    .collect()
            });
        }
    }
    m
}

fn request(session: u64, func: Function, salt: usize) -> Request {
    let inputs = inputs_for(&func, salt);
    Request {
        session,
        func,
        scheme: Scheme::Pars,
        options: options(),
        inputs,
        deadline: None,
        max_retries: 0,
    }
}

/// Eight workers, three plans, eight sessions, six concurrent producers,
/// coalescing enabled: every submission receives exactly one terminal
/// response, within a wall-clock bound, and the counters conserve.
#[test]
fn eight_worker_mixed_contention_conserves_every_request() {
    const PRODUCERS: usize = 6;
    const PER_PRODUCER: usize = 8;
    let rt = Arc::new(Runtime::new(RuntimeConfig {
        workers: 8,
        max_batch: 4,
        batch_window: Duration::from_millis(20),
        ..RuntimeConfig::default()
    }));
    let sessions: Vec<u64> = (0..8).map(|_| rt.open_session()).collect();

    // Warm the plan cache so the stress phase measures queue contention,
    // not three single-flighted compiles.
    let warm = vec![
        request(sessions[0], func_square(), 0),
        request(sessions[1], func_rotate(), 1),
        request(sessions[2], func_chain(), 2),
    ];
    for r in rt.run_batch(warm) {
        r.expect("warmup request");
    }
    let warmed = rt.stats().compiles;

    let t0 = Instant::now();
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let rt = rt.clone();
            let sessions = sessions.clone();
            std::thread::spawn(move || {
                let receivers: Vec<_> = (0..PER_PRODUCER)
                    .map(|i| {
                        let salt = p * PER_PRODUCER + i;
                        let func = match salt % 3 {
                            0 => func_square(),
                            1 => func_rotate(),
                            _ => func_chain(),
                        };
                        let session = sessions[salt % sessions.len()];
                        rt.submit(request(session, func, salt))
                            .expect("unbounded-enough queue admits everything")
                    })
                    .collect();
                let mut ok = 0usize;
                for rx in receivers {
                    // Exactly one terminal response: the first recv yields
                    // it, the second proves the channel closes without a
                    // duplicate.
                    let resp = rx.recv().expect("a terminal response arrives");
                    resp.expect("request succeeds");
                    ok += 1;
                    assert!(rx.recv().is_err(), "duplicate terminal response");
                }
                ok
            })
        })
        .collect();
    let served: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = t0.elapsed();

    assert_eq!(served, PRODUCERS * PER_PRODUCER);
    // No lost wakeups: with every plan cached, 48 tiny requests must not
    // be anywhere near a stuck condvar's timescale.
    assert!(
        elapsed < Duration::from_secs(120),
        "stress phase took {elapsed:?} — jobs were stranded"
    );
    let snap = rt.stats();
    assert_eq!(
        snap.completed as usize,
        3 + PRODUCERS * PER_PRODUCER,
        "warmup + stress all completed"
    );
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.shed, 0);
    assert_eq!(snap.timeouts, 0);
    assert_eq!(snap.queue_depth, 0, "queue drains to zero");
    assert_eq!(
        rt.stats().compiles,
        warmed,
        "stress phase is all cache hits"
    );
    Arc::try_unwrap(rt).ok().expect("sole owner").shutdown();
}

/// The satellite regression at the runtime level: a worker holding a
/// coalescing window open stashes incompatible jobs to the priority
/// lane, and an idle peer picks them up promptly — well before the
/// window expires — instead of them waiting behind the stasher.
#[test]
fn stashed_incompatible_jobs_are_served_by_idle_peer() {
    let window = Duration::from_secs(2);
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        max_batch: 2,
        batch_window: window,
        ..RuntimeConfig::default()
    });
    let s_a = rt.open_session();
    let s_b = rt.open_session();

    // Warm both plans (pairs coalesce immediately at max_batch, so the
    // warmup never waits out a window).
    for r in rt.run_batch(vec![
        request(s_a, func_square(), 0),
        request(s_a, func_square(), 1),
    ]) {
        r.expect("warmup A");
    }
    for r in rt.run_batch(vec![
        request(s_b, func_rotate(), 2),
        request(s_b, func_rotate(), 3),
    ]) {
        r.expect("warmup B");
    }

    // One lone A request opens a coalescing window on some worker and
    // holds it for the full 2 s (no partner ever arrives).
    let rx_a = rt.submit(request(s_a, func_square(), 4)).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Incompatible B requests land while the window is open. The
    // coalescer stashes them; the idle peer must take them over.
    let t0 = Instant::now();
    let rx_b: Vec<_> = (0..2)
        .map(|i| rt.submit(request(s_b, func_rotate(), 5 + i)).unwrap())
        .collect();
    for rx in rx_b {
        rx.recv().expect("terminal response").expect("B succeeds");
    }
    let waited = t0.elapsed();
    assert!(
        waited < window,
        "stashed jobs waited {waited:?} — longer than the {window:?} \
         window, so only the stasher ever served them"
    );

    // The window holder still completes its own request afterwards.
    rx_a.recv().expect("terminal response").expect("A succeeds");
    let snap = rt.stats();
    assert_eq!(snap.completed, 7);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.queue_depth, 0);
    rt.shutdown();
}

/// A managed core budget caps the process-wide kernel pool for the
/// runtime's lifetime only: shutdown hands the previous ceiling back,
/// so later unmanaged runtimes and non-runtime kernel callers never
/// inherit a stale cap (in the worst case a cap of 0, which would
/// silently force every kernel inline).
#[test]
fn managed_core_budget_restores_kernel_ceiling_on_shutdown() {
    use hecate_runtime::CoreBudget;
    let before = hecate_math::kernel_pool::max_threads();
    let rt = Runtime::new(RuntimeConfig {
        workers: 2,
        core_budget: CoreBudget::Cores(4),
        ..RuntimeConfig::default()
    });
    let split = rt.core_split();
    assert_eq!(
        hecate_math::kernel_pool::max_threads(),
        4 - split.workers,
        "managed budget caps the kernel pool at budget − workers"
    );
    rt.shutdown();
    assert_eq!(
        hecate_math::kernel_pool::max_threads(),
        before,
        "previous ceiling restored after shutdown"
    );
}
