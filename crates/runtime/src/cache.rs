//! The content-addressed compilation cache with single-flight semantics.
//!
//! Serving workloads resubmit the same circuits constantly; the compiler
//! pipeline (SMU construction, hill-climbing SMSE exploration, parameter
//! selection) is orders of magnitude more expensive than a cache probe.
//! The cache is keyed by [`plan_key`]: a stable FNV-1a hash over the
//! canonical re-parsable print form of the submitted [`Function`], the
//! [`Scheme`], and the [`CompileOptions`] fingerprint — so two tenants
//! independently building the same circuit share one compilation, while
//! any change to an operation, a constant payload, or an option lands on
//! a different key.
//!
//! **Single-flight:** when N requests race on a cold key, exactly one
//! runs the pipeline; the rest block on a condvar until the artifact is
//! published. A failed compilation is *not* cached — the pending marker
//! is removed and one of the waiters retries, so a transient failure
//! cannot poison the key forever.

use crate::stats::RuntimeStats;
use hecate_backend::exec::key_requirements;
use hecate_compiler::{compile, CompileOptions, CompiledProgram, Scheme};
use hecate_ir::hash::Fnv1a;
use hecate_ir::print::print_function_full;
use hecate_ir::Function;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::RuntimeError;

/// Stable cache key for a (program, scheme, options) submission.
///
/// FNV-1a over the canonical print form plus the scheme and the options
/// fingerprint — identical across processes and runs, unlike
/// `std::hash`'s randomized hasher.
pub fn plan_key(func: &Function, scheme: Scheme, opts: &CompileOptions) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str(&print_function_full(func));
    h.write_str(&format!("|scheme={scheme}"));
    h.write_str(&format!("|{}", opts.fingerprint()));
    h.finish()
}

/// Everything the serving layer keeps per compiled plan: the program
/// itself plus the evaluation-key requirements sessions need to
/// synthesize their Galois/relinearization keys.
#[derive(Debug)]
pub struct PlanArtifact {
    /// The cache key this artifact is stored under.
    pub key: u64,
    /// The compiled program (function, types, selected parameters).
    pub prog: Arc<CompiledProgram>,
    /// Relinearization key prefixes the plan uses.
    pub relin_prefixes: Vec<usize>,
    /// `(rotation step, prefix)` pairs the plan uses.
    pub rotation_keys: Vec<(usize, usize)>,
}

enum Slot {
    /// Some thread is compiling this key right now.
    Pending,
    /// The artifact is published, with the LRU tick of its last use.
    Ready(Arc<PlanArtifact>, u64),
}

/// What the plan cache knows about one published artifact — the
/// diagnostics view ([`PlanCache::entries`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCacheEntry {
    /// The content-addressed plan key.
    pub key: u64,
    /// Operations in the compiled function.
    pub ops: usize,
    /// The static cost model's latency estimate, microseconds.
    pub estimated_latency_us: f64,
    /// LRU tick of the entry's last use (higher = more recent).
    pub last_used_tick: u64,
}

/// Default bound on published artifacts
/// ([`crate::RuntimeConfig::plan_cache_capacity`] overrides it).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 32;

/// Content-addressed plan cache (see the module docs).
///
/// The cache holds at most `capacity` *published* artifacts; publishing
/// beyond that evicts the least-recently-used one. `Pending` markers are
/// never evicted (a single-flight waiter is parked on them), and an
/// evicted key simply recompiles on next use — eviction can cost
/// duplicate work, never correctness.
pub struct PlanCache {
    inner: Mutex<Inner>,
    published: Condvar,
    capacity: usize,
    stats: Arc<RuntimeStats>,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    /// Monotonic use counter backing the LRU order.
    tick: u64,
}

impl Inner {
    fn touch(&mut self, key: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(Slot::Ready(_, last_used)) = self.slots.get_mut(&key) {
            *last_used = tick;
        }
    }
}

/// Clears the `Pending` marker (and wakes waiters) if the compile closure
/// panics, so a dead compiler cannot wedge single-flight waiters forever.
/// Disarmed on the normal path, where `get_or_compute` publishes or
/// removes the slot itself.
struct PendingGuard<'a> {
    cache: &'a PlanCache,
    key: u64,
    armed: bool,
}

impl PendingGuard<'_> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut inner = self.cache.lock_inner();
            inner.slots.remove(&self.key);
            drop(inner);
            self.cache.published.notify_all();
        }
    }
}

impl PlanCache {
    /// An empty cache reporting into `stats`, bounded at
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`] published artifacts.
    pub fn new(stats: Arc<RuntimeStats>) -> Self {
        Self::with_capacity(stats, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Locks the slot map, recovering from poisoning. Every mutation of
    /// the map is a single `HashMap` operation, so a panicked holder
    /// cannot leave it structurally inconsistent — the poison flag is
    /// noise for this type, and propagating it would turn one isolated
    /// request panic into a cache-wide outage.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// An empty cache bounded at `capacity` published artifacts
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(stats: Arc<RuntimeStats>, capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            published: Condvar::new(),
            capacity: capacity.max(1),
            stats,
        }
    }

    /// Evicts least-recently-used published artifacts until at most
    /// `capacity` remain. Caller holds the lock.
    fn enforce_capacity(&self, inner: &mut Inner) {
        loop {
            let ready = inner
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready(..)))
                .count();
            if ready <= self.capacity {
                return;
            }
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready(_, last_used) => Some((*last_used, *k)),
                    Slot::Pending => None,
                })
                .min()
                .map(|(_, k)| k)
                .expect("ready > capacity >= 1 implies a victim");
            inner.slots.remove(&victim);
            self.stats.record_eviction();
        }
    }

    /// Number of published artifacts.
    pub fn len(&self) -> usize {
        self.lock_inner()
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready(..)))
            .count()
    }

    /// True when no artifact is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured bound on published artifacts.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// One [`PlanCacheEntry`] per published artifact, sorted by key so
    /// diagnostics dumps are deterministic.
    pub fn entries(&self) -> Vec<PlanCacheEntry> {
        let inner = self.lock_inner();
        let mut entries: Vec<PlanCacheEntry> = inner
            .slots
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready(a, last_used) => Some(PlanCacheEntry {
                    key: *k,
                    ops: a.prog.func.len(),
                    estimated_latency_us: a.prog.stats.estimated_latency_us,
                    last_used_tick: *last_used,
                }),
                Slot::Pending => None,
            })
            .collect();
        entries.sort_by_key(|e| e.key);
        entries
    }

    /// Looks up (or compiles, exactly once per key across all racing
    /// threads) the plan for this submission.
    ///
    /// The returned flag reports whether this call was served without
    /// running the pipeline itself — `true` both for an already-published
    /// artifact and for a single-flight waiter that received another
    /// thread's compile. It is determined under the cache lock, so it
    /// cannot disagree with what actually happened (unlike a separate
    /// pre-probe, which races with concurrent publication).
    ///
    /// # Errors
    /// Returns [`RuntimeError::Compile`] when the pipeline rejects the
    /// program; the failure is not cached.
    pub fn get_or_compile(
        &self,
        func: &Function,
        scheme: Scheme,
        opts: &CompileOptions,
    ) -> Result<(Arc<PlanArtifact>, bool), RuntimeError> {
        let key = plan_key(func, scheme, opts);
        let mut span =
            hecate_telemetry::trace::span_with("plan-cache", || vec![("plan_key", key.into())]);
        let result = self.get_or_compute(key, || self.compile_artifact(key, func, scheme, opts));
        if let Ok((_, hit)) = &result {
            span.attr("hit", (*hit).into());
        }
        result
    }

    /// The single-flight engine behind [`PlanCache::get_or_compile`],
    /// generic over the compile step so the panic-safety contract is
    /// testable with an injected panicking closure.
    ///
    /// Panic safety: if `compute` panics, a drop guard removes the
    /// `Pending` marker and wakes all waiters before the panic continues
    /// unwinding — waiters never hang on a dead compiler, and the next
    /// caller simply compiles the key afresh.
    fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<Arc<PlanArtifact>, RuntimeError>,
    ) -> Result<(Arc<PlanArtifact>, bool), RuntimeError> {
        let mut inner = self.lock_inner();
        loop {
            match inner.slots.get(&key) {
                Some(Slot::Ready(artifact, _)) => {
                    let artifact = artifact.clone();
                    inner.touch(key);
                    self.stats.record_hit();
                    return Ok((artifact, true));
                }
                Some(Slot::Pending) => {
                    // Someone else is compiling: wait for publication (or
                    // for the pending marker to vanish on failure, in
                    // which case we take over the compile ourselves).
                    inner = self
                        .published
                        .wait(inner)
                        .unwrap_or_else(|e| e.into_inner());
                }
                None => {
                    // Both branches below return, so one call records at
                    // most one miss — hits + misses always equals the
                    // number of lookups, even when a waiter takes over
                    // after another thread's failed compile.
                    self.stats.record_miss();
                    inner.slots.insert(key, Slot::Pending);
                    drop(inner);
                    let guard = PendingGuard {
                        cache: self,
                        key,
                        armed: true,
                    };
                    let outcome = compute();
                    guard.disarm();
                    let mut inner = self.lock_inner();
                    match outcome {
                        Ok(artifact) => {
                            inner.tick += 1;
                            let tick = inner.tick;
                            inner.slots.insert(key, Slot::Ready(artifact.clone(), tick));
                            self.enforce_capacity(&mut inner);
                            self.published.notify_all();
                            return Ok((artifact, false));
                        }
                        Err(e) => {
                            inner.slots.remove(&key);
                            self.published.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }

    /// Returns the published artifact for `key`, if any (no compile).
    pub fn get(&self, key: u64) -> Option<Arc<PlanArtifact>> {
        let mut inner = self.lock_inner();
        match inner.slots.get(&key) {
            Some(Slot::Ready(a, _)) => {
                let a = a.clone();
                inner.touch(key);
                Some(a)
            }
            _ => None,
        }
    }

    /// Publishes an externally produced plan (e.g. one reloaded via
    /// [`hecate_compiler::deserialize_plan`]) under its content key.
    pub fn insert(&self, key: u64, prog: Arc<CompiledProgram>) -> Arc<PlanArtifact> {
        let artifact = Arc::new(make_artifact(key, prog));
        let mut inner = self.lock_inner();
        inner.tick += 1;
        let tick = inner.tick;
        inner.slots.insert(key, Slot::Ready(artifact.clone(), tick));
        self.enforce_capacity(&mut inner);
        drop(inner);
        self.published.notify_all();
        artifact
    }

    fn compile_artifact(
        &self,
        key: u64,
        func: &Function,
        scheme: Scheme,
        opts: &CompileOptions,
    ) -> Result<Arc<PlanArtifact>, RuntimeError> {
        self.stats.record_compile();
        let prog = compile(func, scheme, opts).map_err(RuntimeError::Compile)?;
        Ok(Arc::new(make_artifact(key, Arc::new(prog))))
    }
}

fn make_artifact(key: u64, prog: Arc<CompiledProgram>) -> PlanArtifact {
    // Requirement sets are computed against the plan's own selected
    // parameters; a session running under a degree override recomputes
    // its slot count, but the *set* of rotation steps and relin levels is
    // a property of the program, which is what sessions need to know.
    let slots = prog.params.degree / 2;
    let (relin_prefixes, rotation_keys) = key_requirements(&prog, slots, prog.params.chain_len);
    PlanArtifact {
        key,
        prog,
        relin_prefixes,
        rotation_keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::FunctionBuilder;

    fn sample(scale: f64) -> Function {
        let mut b = FunctionBuilder::new("s", 8);
        let x = b.input_cipher("x");
        let c = b.splat(scale);
        let m = b.mul(x, c);
        let r = b.rotate(m, 1);
        b.output(r);
        b.finish()
    }

    fn opts() -> CompileOptions {
        let mut o = CompileOptions::with_waterline(20.0);
        o.degree = Some(64);
        o
    }

    #[test]
    fn key_is_content_addressed() {
        let o = opts();
        let a = plan_key(&sample(1.5), Scheme::Hecate, &o);
        let b = plan_key(&sample(1.5), Scheme::Hecate, &o);
        assert_eq!(a, b, "independently built identical programs share a key");
        assert_ne!(a, plan_key(&sample(2.5), Scheme::Hecate, &o), "constant");
        assert_ne!(a, plan_key(&sample(1.5), Scheme::Eva, &o), "scheme");
        let mut o2 = opts();
        o2.waterline_bits = 24.0;
        assert_ne!(a, plan_key(&sample(1.5), Scheme::Hecate, &o2), "options");
    }

    #[test]
    fn hit_after_miss() {
        let stats = Arc::new(RuntimeStats::new());
        let cache = PlanCache::new(stats.clone());
        let f = sample(1.5);
        let o = opts();
        let (a1, hit1) = cache.get_or_compile(&f, Scheme::Hecate, &o).unwrap();
        let (a2, hit2) = cache.get_or_compile(&f, Scheme::Hecate, &o).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(!hit1, "cold lookup compiles");
        assert!(hit2, "warm lookup hits");
        let snap = stats.snapshot(1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.compiles, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn artifact_records_key_requirements() {
        let cache = PlanCache::new(Arc::new(RuntimeStats::new()));
        let (a, _) = cache
            .get_or_compile(&sample(1.5), Scheme::Hecate, &opts())
            .unwrap();
        assert!(
            !a.rotation_keys.is_empty(),
            "the sample rotates, so a Galois key is required"
        );
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let stats = Arc::new(RuntimeStats::new());
        let cache = PlanCache::with_capacity(stats.clone(), 2);
        let o = opts();
        let (f1, f2, f3) = (sample(1.0), sample(2.0), sample(3.0));
        cache.get_or_compile(&f1, Scheme::Hecate, &o).unwrap();
        cache.get_or_compile(&f2, Scheme::Hecate, &o).unwrap();
        // Touch f1 so f2 is the LRU entry when f3 arrives.
        cache.get_or_compile(&f1, Scheme::Hecate, &o).unwrap();
        cache.get_or_compile(&f3, Scheme::Hecate, &o).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(stats.snapshot(1).cache_evictions, 1);
        // f1 survived (recently used), f2 was evicted.
        let (_, hit1) = cache.get_or_compile(&f1, Scheme::Hecate, &o).unwrap();
        assert!(hit1, "recently used entry must survive");
        let (_, hit2) = cache.get_or_compile(&f2, Scheme::Hecate, &o).unwrap();
        assert!(!hit2, "LRU entry must have been evicted");
    }

    #[test]
    fn single_flight_survives_eviction_races() {
        let stats = Arc::new(RuntimeStats::new());
        let cache = PlanCache::with_capacity(stats.clone(), 1);
        let o = opts();
        let (fa, fb) = (sample(1.0), sample(2.0));
        cache.get_or_compile(&fa, Scheme::Hecate, &o).unwrap();
        // Publishing B evicts A (capacity 1).
        cache.get_or_compile(&fb, Scheme::Hecate, &o).unwrap();
        assert_eq!(stats.snapshot(1).cache_evictions, 1);
        // Eight threads race the evicted key: single-flight must still
        // compile exactly once more.
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_compile(&fa, Scheme::Hecate, &o).unwrap();
                });
            }
        });
        let snap = stats.snapshot(1);
        assert_eq!(snap.compiles, 3, "one compile per cold key, ever");
        assert_eq!(snap.cache_hits + snap.cache_misses, 10);
    }

    /// The tentpole panic-safety contract: a compiler panic mid-flight
    /// clears the `Pending` marker (via the drop guard) and wakes blocked
    /// waiters, which then take over and compile the key themselves. No
    /// waiter hangs, and the cache stays usable afterwards.
    #[test]
    fn panicked_compile_frees_the_key_and_wakes_waiters() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::mpsc;

        let stats = Arc::new(RuntimeStats::new());
        let cache = PlanCache::new(stats.clone());
        let f = sample(1.5);
        let o = opts();
        let key = plan_key(&f, Scheme::Hecate, &o);

        let (started_tx, started_rx) = mpsc::channel();
        let (go_tx, go_rx) = mpsc::channel::<()>();
        std::thread::scope(|s| {
            let cache_ref = &cache;
            let panicker = s.spawn(move || {
                catch_unwind(AssertUnwindSafe(|| {
                    cache_ref.get_or_compute(key, || {
                        started_tx.send(()).unwrap();
                        go_rx.recv().unwrap();
                        panic!("injected compiler panic");
                    })
                }))
            });
            // The panicker owns the Pending slot before the waiter starts,
            // so the waiter either parks on it or arrives after cleanup —
            // both must end with the waiter compiling successfully.
            started_rx.recv().unwrap();
            let waiter = s.spawn(|| cache.get_or_compile(&f, Scheme::Hecate, &o));
            std::thread::sleep(std::time::Duration::from_millis(20));
            go_tx.send(()).unwrap();
            assert!(panicker.join().unwrap().is_err(), "panic must propagate");
            let (_, hit) = waiter.join().unwrap().unwrap();
            assert!(!hit, "waiter takes over the compile after the panic");
        });
        assert_eq!(cache.len(), 1, "the waiter's artifact is published");
        // The panicked flight recorded a miss but no compile; the waiter
        // recorded both.
        let snap = stats.snapshot(1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.compiles, 1);
    }

    /// A panic while *holding* the slot-map lock poisons the mutex; the
    /// cache must recover (the map is structurally sound) rather than
    /// propagate the poison into every later request.
    #[test]
    fn poisoned_lock_is_recovered() {
        let cache = PlanCache::new(Arc::new(RuntimeStats::new()));
        let f = sample(1.5);
        let o = opts();
        cache.get_or_compile(&f, Scheme::Hecate, &o).unwrap();
        std::thread::scope(|s| {
            // Poison the inner mutex deliberately: panic while holding it.
            let poisoner = s.spawn(|| {
                let _guard = cache.inner.lock().unwrap();
                panic!("poison the cache lock");
            });
            assert!(poisoner.join().is_err());
        });
        assert!(cache.inner.is_poisoned(), "setup must have poisoned");
        assert_eq!(cache.len(), 1, "len recovers the poisoned lock");
        let (_, hit) = cache.get_or_compile(&f, Scheme::Hecate, &o).unwrap();
        assert!(hit, "lookups keep working on a poisoned cache");
    }

    #[test]
    fn failed_compile_is_not_cached() {
        let stats = Arc::new(RuntimeStats::new());
        let cache = PlanCache::new(stats.clone());
        let mut o = opts();
        o.max_chain_len = 1; // (x·c) rescaled needs ≥ 2 primes: forces failure
        let f = sample(1.5);
        assert!(cache.get_or_compile(&f, Scheme::Hecate, &o).is_err());
        assert!(cache.is_empty(), "failures must not be cached");
        // The same key compiles fine once the constraint is lifted.
        let o2 = opts();
        assert!(cache.get_or_compile(&f, Scheme::Hecate, &o2).is_ok());
        // Accounting stays one hit-or-miss per lookup even across failures.
        let snap = stats.snapshot(1);
        assert_eq!(snap.cache_misses, 2);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.compiles, 2);
    }
}
