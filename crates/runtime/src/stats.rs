//! Runtime counters on the telemetry registry, and their JSON export.
//!
//! One [`RuntimeStats`] instance is shared (behind an `Arc`) by the plan
//! cache, the request queue, and every worker thread. The counters are
//! named metrics in a per-instance [`hecate_telemetry::Registry`] — per
//! instance rather than process-global so two runtimes in one process
//! never alias — with the metric handles cached here, so recording is
//! still a few relaxed atomic operations per event, never a registry
//! lock. [`RuntimeStats::snapshot`] materializes a consistent-enough
//! [`StatsSnapshot`] for reporting; the snapshot renders itself as JSON
//! (byte-identical to the pre-registry format), and
//! [`RuntimeStats::prometheus`] renders the registry as a Prometheus-style
//! text exposition.

use crate::session::SessionId;
use hecate_telemetry::{quantile_from_pow2_buckets, Counter, Gauge, Histogram, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

/// Number of power-of-two latency buckets (bucket `k` holds requests with
/// latency in `[2^k, 2^{k+1})` microseconds; the last bucket is open).
pub const LATENCY_BUCKETS: usize = 24;

/// Number of power-of-two batch-occupancy buckets (bucket `k` counts
/// batches whose occupancy fell in `[2^k, 2^{k+1})`; occupancies are
/// powers of two, so each bucket is one occupancy and bucket 0 is solo).
pub const OCCUPANCY_BUCKETS: usize = 8;

/// Requests the sliding latency window holds for the diagnostics SLO
/// burn: exact recent quantiles over the last this-many finished
/// requests, as opposed to the pow2-bucket estimates over all time.
pub const SLO_WINDOW: usize = 512;

/// Shared metric handles for one [`crate::Runtime`], backed by a
/// per-instance telemetry registry.
#[derive(Debug)]
pub struct RuntimeStats {
    registry: Registry,
    /// Plan-cache lookups satisfied by an existing artifact.
    cache_hits: Counter,
    /// Plan-cache lookups that found no artifact (compiles + waits).
    cache_misses: Counter,
    /// Published artifacts dropped by the plan cache's LRU bound.
    cache_evictions: Counter,
    /// Full compiler-pipeline runs. With single-flight this stays at one
    /// per distinct plan key no matter how many requests race.
    compiles: Counter,
    /// Requests completed successfully.
    completed: Counter,
    /// Requests that returned an error.
    failed: Counter,
    /// Worker panics converted into `RuntimeError::Panicked` responses.
    panics: Counter,
    /// Re-execution attempts after a transient failure.
    retries: Counter,
    /// Requests that missed their deadline (`RuntimeError::TimedOut`).
    timeouts: Counter,
    /// Requests rejected at admission (`QueueFull` or `Shed`); these
    /// never execute and are counted neither completed nor failed.
    shed: Counter,
    /// Worker threads respawned after a panic escaped the request
    /// isolation boundary.
    worker_respawns: Counter,
    /// Requests served as members of a shared slot-batched execution
    /// (occupancy ≥ 2; solo requests never count here).
    batched_requests: Counter,
    /// Shared batched executions performed (each serving ≥ 2 requests).
    batches_executed: Counter,
    /// Batch occupancy histogram (power-of-two buckets; solo runs are
    /// not observed).
    batch_occupancy: Histogram,
    /// Per-request kernel jobs the core-budget policy resolved (1 when
    /// unmanaged and unset in the backend options).
    kernel_jobs: Gauge,
    /// Total cores the core-budget policy split between workers and
    /// kernel jobs; 0 when the budget is unmanaged.
    core_budget: Gauge,
    /// Requests currently queued, waiting for a worker.
    queue_depth: Gauge,
    /// High-water mark of `queue_depth`.
    peak_queue_depth: Gauge,
    /// Total time workers spent processing requests, microseconds.
    busy_us: Counter,
    /// End-to-end request latency histogram (power-of-two µs buckets);
    /// its sum doubles as the latency total for the mean.
    latency: Histogram,
    /// Per-session precision SLO: the tightest waterline margin (bits)
    /// any of the session's executed plans carried. A `BTreeMap` under a
    /// mutex rather than registry gauges because the key set is dynamic
    /// (one label per live session) and margins are fractional bits.
    session_margins: Mutex<BTreeMap<SessionId, f64>>,
    /// Sliding window of the last [`SLO_WINDOW`] end-to-end latencies
    /// (µs), newest at the back, feeding the diagnostics SLO burn.
    recent_latency: Mutex<VecDeque<f64>>,
    /// When this stats instance was created (for utilization).
    started: Instant,
}

impl Default for RuntimeStats {
    fn default() -> Self {
        let registry = Registry::new();
        let stats = RuntimeStats {
            cache_hits: registry.counter("hecate_runtime_cache_hits_total"),
            cache_misses: registry.counter("hecate_runtime_cache_misses_total"),
            cache_evictions: registry.counter("hecate_runtime_cache_evictions_total"),
            compiles: registry.counter("hecate_runtime_compiles_total"),
            completed: registry.counter("hecate_runtime_requests_completed_total"),
            failed: registry.counter("hecate_runtime_requests_failed_total"),
            panics: registry.counter("hecate_runtime_panics_total"),
            retries: registry.counter("hecate_runtime_retries_total"),
            timeouts: registry.counter("hecate_runtime_timeouts_total"),
            shed: registry.counter("hecate_runtime_shed_total"),
            worker_respawns: registry.counter("hecate_runtime_worker_respawns_total"),
            batched_requests: registry.counter("hecate_runtime_batched_requests_total"),
            batches_executed: registry.counter("hecate_runtime_batches_executed_total"),
            batch_occupancy: registry
                .histogram("hecate_runtime_batch_occupancy", OCCUPANCY_BUCKETS),
            kernel_jobs: registry.gauge("hecate_runtime_kernel_jobs"),
            core_budget: registry.gauge("hecate_runtime_core_budget_cores"),
            queue_depth: registry.gauge("hecate_runtime_queue_depth"),
            peak_queue_depth: registry.gauge("hecate_runtime_peak_queue_depth"),
            busy_us: registry.counter("hecate_runtime_busy_us_total"),
            latency: registry.histogram("hecate_runtime_request_latency_us", LATENCY_BUCKETS),
            session_margins: Mutex::new(BTreeMap::new()),
            recent_latency: Mutex::new(VecDeque::with_capacity(SLO_WINDOW)),
            started: Instant::now(),
            registry,
        };
        // An unmanaged runtime still reports the serial default, so the
        // split is always well-defined in exports.
        stats.kernel_jobs.set(1);
        stats
    }
}

impl RuntimeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the worker/kernel core split the runtime resolved at
    /// startup: per-request kernel jobs and the total budgeted cores
    /// (0 when the budget is unmanaged).
    pub fn record_core_split(&self, kernel_jobs: usize, budget_cores: usize) {
        self.kernel_jobs.set(kernel_jobs.max(1) as i64);
        self.core_budget.set(budget_cores as i64);
    }

    /// The registry backing these stats, for custom exports.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Renders all runtime metrics as a Prometheus-style text exposition,
    /// including derived latency quantile gauges and one labeled
    /// `hecate_runtime_session_min_margin_bits` gauge per session that has
    /// executed at least one plan.
    pub fn prometheus(&self) -> String {
        let mut out = self.registry.prometheus();
        let buckets = self.latency.bucket_counts();
        for (q, name) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let v = quantile_from_pow2_buckets(&buckets, q).unwrap_or(0.0);
            out.push_str(&format!(
                "# TYPE hecate_runtime_request_latency_{name}_us gauge\n\
                 hecate_runtime_request_latency_{name}_us {v:.1}\n"
            ));
        }
        let margins = self
            .session_margins
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if !margins.is_empty() {
            out.push_str("# TYPE hecate_runtime_session_min_margin_bits gauge\n");
            for (sid, m) in margins.iter() {
                out.push_str(&format!(
                    "hecate_runtime_session_min_margin_bits{{session=\"{sid}\"}} {m:.3}\n"
                ));
            }
        }
        drop(margins);
        // Kernel-pool utilization rides along: the stripe counters are
        // process-global (the pool is process-global), appended here as
        // labeled lines because the registry itself is label-free.
        let stripes = hecate_math::kernel_pool::stripe_counts();
        out.push_str(&format!(
            "# TYPE hecate_kernel_stripes_total counter\n\
             hecate_kernel_stripes_total{{mode=\"pool\"}} {}\n\
             hecate_kernel_stripes_total{{mode=\"inline\"}} {}\n",
            stripes.pool, stripes.inline
        ));
        out
    }

    /// Records the waterline margin (bits) of a plan a session just
    /// executed; the gauge keeps the tightest margin seen per session.
    pub fn record_precision(&self, session: SessionId, margin_bits: f64) {
        if !margin_bits.is_finite() {
            return;
        }
        // Recover a poisoned lock: the map holds plain floats, so the
        // worst a mid-update panic leaves behind is a stale margin.
        let mut margins = self
            .session_margins
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        margins
            .entry(session)
            .and_modify(|m| *m = m.min(margin_bits))
            .or_insert(margin_bits);
    }

    /// The tightest waterline margin (bits) recorded per session.
    pub fn session_margins(&self) -> Vec<(SessionId, f64)> {
        self.session_margins
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&s, &m)| (s, m))
            .collect()
    }

    /// Records a cache hit.
    pub fn record_hit(&self) {
        self.cache_hits.inc();
    }

    /// Records a cache miss.
    pub fn record_miss(&self) {
        self.cache_misses.inc();
    }

    /// Records one run of the full compiler pipeline.
    pub fn record_compile(&self) {
        self.compiles.inc();
    }

    /// Records a plan-cache eviction.
    pub fn record_eviction(&self) {
        self.cache_evictions.inc();
    }

    /// Records a request entering the queue.
    pub fn record_enqueue(&self) {
        let depth = self.queue_depth.add(1);
        self.peak_queue_depth.record_max(depth);
    }

    /// Records a request leaving the queue (a worker picked it up).
    pub fn record_dequeue(&self) {
        self.queue_depth.add(-1);
    }

    /// Requests currently queued (the live gauge, for admission pricing).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.get().max(0) as u64
    }

    /// Records a worker panic caught at the request isolation boundary.
    pub fn record_panic(&self) {
        self.panics.inc();
    }

    /// Records one re-execution attempt after a transient failure.
    pub fn record_retry(&self) {
        self.retries.inc();
    }

    /// Records a request that missed its deadline.
    pub fn record_timeout(&self) {
        self.timeouts.inc();
    }

    /// Records a request rejected at admission (queue full or shed by the
    /// cost-priced policy).
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    /// Records a worker thread respawn after an escaped panic.
    pub fn record_respawn(&self) {
        self.worker_respawns.inc();
    }

    /// Records one shared batched execution that served `occupancy`
    /// requests from a single ciphertext.
    pub fn record_batch(&self, occupancy: usize) {
        self.batched_requests.add(occupancy as u64);
        self.batches_executed.inc();
        self.batch_occupancy.observe(occupancy as u64);
    }

    /// Records a finished request with its end-to-end latency and the
    /// worker time it consumed.
    pub fn record_done(&self, ok: bool, latency_us: f64, busy_us: f64) {
        if ok {
            self.completed.inc();
        } else {
            self.failed.inc();
        }
        self.latency.observe(latency_us.max(0.0) as u64);
        self.busy_us.add(busy_us.max(0.0) as u64);
        let mut recent = self
            .recent_latency
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if recent.len() == SLO_WINDOW {
            recent.pop_front();
        }
        recent.push_back(latency_us.max(0.0));
    }

    /// Finished requests currently in the sliding latency window (at
    /// most [`SLO_WINDOW`]).
    pub fn recent_latency_count(&self) -> usize {
        self.recent_latency
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Exact nearest-rank latency quantile over the sliding window, in
    /// microseconds; `None` while no request has finished. Unlike
    /// [`StatsSnapshot::latency_quantile_us`] this reflects only the
    /// last [`SLO_WINDOW`] requests — the right horizon for an SLO burn
    /// signal, which must recover once the regression is fixed.
    pub fn recent_latency_quantile(&self, q: f64) -> Option<f64> {
        let recent = self
            .recent_latency
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if recent.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = recent.iter().copied().collect();
        drop(recent);
        sorted.sort_by(f64::total_cmp);
        let rank = (sorted.len() as f64 * q.clamp(0.0, 1.0)).ceil() as usize;
        Some(sorted[rank.max(1).min(sorted.len()) - 1])
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self, workers: usize) -> StatsSnapshot {
        let uptime_us = self.started.elapsed().as_secs_f64() * 1e6;
        let busy = self.busy_us.get();
        let buckets = self.latency.bucket_counts();
        let occupancy_buckets = self.batch_occupancy.bucket_counts();
        StatsSnapshot {
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions: self.cache_evictions.get(),
            compiles: self.compiles.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            panics: self.panics.get(),
            retries: self.retries.get(),
            timeouts: self.timeouts.get(),
            shed: self.shed.get(),
            worker_respawns: self.worker_respawns.get(),
            batched_requests: self.batched_requests.get(),
            batches_executed: self.batches_executed.get(),
            queue_depth: self.queue_depth.get().max(0) as u64,
            peak_queue_depth: self.peak_queue_depth.get().max(0) as u64,
            busy_us: busy,
            latency_sum_us: self.latency.sum(),
            latency_buckets: std::array::from_fn(|k| buckets[k]),
            batch_occupancy_buckets: std::array::from_fn(|k| occupancy_buckets[k]),
            workers,
            kernel_jobs: self.kernel_jobs.get().max(1) as usize,
            core_budget: self.core_budget.get().max(0) as usize,
            utilization: if uptime_us > 0.0 && workers > 0 {
                (busy as f64 / (uptime_us * workers as f64)).min(1.0)
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Published artifacts dropped by the LRU bound.
    pub cache_evictions: u64,
    /// Compiler-pipeline runs (≤ distinct plan keys, thanks to
    /// single-flight).
    pub compiles: u64,
    /// Successfully completed requests.
    pub completed: u64,
    /// Failed requests.
    pub failed: u64,
    /// Worker panics isolated into `Panicked` responses (a subset of
    /// `failed`).
    pub panics: u64,
    /// Re-execution attempts after transient failures.
    pub retries: u64,
    /// Requests that missed their deadline (a subset of `failed`).
    pub timeouts: u64,
    /// Requests rejected at admission; disjoint from `completed` and
    /// `failed` (they never executed).
    pub shed: u64,
    /// Worker threads respawned after an escaped panic.
    pub worker_respawns: u64,
    /// Requests served as members of a shared batched execution.
    pub batched_requests: u64,
    /// Shared batched executions performed.
    pub batches_executed: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub peak_queue_depth: u64,
    /// Total worker busy time, microseconds.
    pub busy_us: u64,
    /// Sum of end-to-end request latencies, microseconds.
    pub latency_sum_us: u64,
    /// Latency histogram: bucket `k` counts requests in
    /// `[2^k, 2^{k+1})` µs.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
    /// Batch occupancy histogram: bucket `k` counts batches of occupancy
    /// `[2^k, 2^{k+1})` (solo runs are not observed).
    pub batch_occupancy_buckets: [u64; OCCUPANCY_BUCKETS],
    /// Number of worker threads the runtime was configured with.
    pub workers: usize,
    /// Per-request kernel jobs resolved by the core-budget policy (1
    /// when unmanaged and unset).
    pub kernel_jobs: usize,
    /// Cores the core-budget policy split; 0 when unmanaged.
    pub core_budget: usize,
    /// Fraction of worker wall-clock spent busy since startup, in `[0,1]`.
    pub utilization: f64,
}

impl StatsSnapshot {
    /// Mean end-to-end latency in microseconds (0 with no requests).
    pub fn mean_latency_us(&self) -> f64 {
        let n = self.completed + self.failed;
        if n == 0 {
            0.0
        } else {
            self.latency_sum_us as f64 / n as f64
        }
    }

    /// Interpolated latency quantile in microseconds (0 with no requests).
    ///
    /// Derived from the power-of-two histogram, so the value is an
    /// estimate whose error is bounded by the width of the bucket the
    /// quantile lands in.
    pub fn latency_quantile_us(&self, q: f64) -> f64 {
        quantile_from_pow2_buckets(&self.latency_buckets, q).unwrap_or(0.0)
    }

    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self.latency_buckets.iter().map(|c| c.to_string()).collect();
        let occupancy: Vec<String> = self
            .batch_occupancy_buckets
            .iter()
            .map(|c| c.to_string())
            .collect();
        format!(
            concat!(
                "{{\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_evictions\":{},\"compiles\":{},",
                "\"completed\":{},\"failed\":{},\"panics\":{},",
                "\"retries\":{},\"timeouts\":{},\"shed\":{},",
                "\"worker_respawns\":{},\"batched_requests\":{},",
                "\"batches_executed\":{},\"queue_depth\":{},",
                "\"peak_queue_depth\":{},\"busy_us\":{},\"workers\":{},",
                "\"kernel_jobs\":{},\"core_budget\":{},",
                "\"utilization\":{:.4},\"mean_latency_us\":{:.1},",
                "\"latency_p50_us\":{:.1},\"latency_p95_us\":{:.1},",
                "\"latency_p99_us\":{:.1},",
                "\"latency_buckets_pow2_us\":[{}],",
                "\"batch_occupancy_buckets_pow2\":[{}]}}"
            ),
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.compiles,
            self.completed,
            self.failed,
            self.panics,
            self.retries,
            self.timeouts,
            self.shed,
            self.worker_respawns,
            self.batched_requests,
            self.batches_executed,
            self.queue_depth,
            self.peak_queue_depth,
            self.busy_us,
            self.workers,
            self.kernel_jobs,
            self.core_budget,
            self.utilization,
            self.mean_latency_us(),
            self.latency_quantile_us(0.5),
            self.latency_quantile_us(0.95),
            self.latency_quantile_us(0.99),
            buckets.join(","),
            occupancy.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = RuntimeStats::new();
        s.record_miss();
        s.record_compile();
        s.record_hit();
        s.record_hit();
        s.record_enqueue();
        s.record_enqueue();
        s.record_dequeue();
        s.record_done(true, 100.0, 80.0);
        s.record_done(false, 3.0, 2.0);
        s.record_eviction();
        s.record_panic();
        s.record_retry();
        s.record_retry();
        s.record_timeout();
        s.record_shed();
        s.record_respawn();
        s.record_batch(4);
        s.record_batch(2);
        let snap = s.snapshot(2);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_evictions, 1);
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.worker_respawns, 1);
        assert_eq!(snap.batched_requests, 6);
        assert_eq!(snap.batches_executed, 2);
        // Occupancy 4 lands in pow2 bucket 2, occupancy 2 in bucket 1.
        assert_eq!(snap.batch_occupancy_buckets[2], 1);
        assert_eq!(snap.batch_occupancy_buckets[1], 1);
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.peak_queue_depth, 2);
        assert_eq!(snap.busy_us, 82);
        // Unmanaged default: serial kernels, no budgeted cores.
        assert_eq!(snap.kernel_jobs, 1);
        assert_eq!(snap.core_budget, 0);
        s.record_core_split(4, 8);
        let snap = s.snapshot(2);
        assert_eq!(snap.kernel_jobs, 4);
        assert_eq!(snap.core_budget, 8);
        // 100 µs lands in bucket 6 ([64,128)), 3 µs in bucket 1 ([2,4)).
        assert_eq!(snap.latency_buckets[6], 1);
        assert_eq!(snap.latency_buckets[1], 1);
        assert!((snap.mean_latency_us() - 51.5).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = RuntimeStats::new();
        s.record_done(true, 10.0, 5.0);
        let json = s.snapshot(4).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"compiles\":0"));
        assert!(json.contains("\"workers\":4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_snapshot_format_is_pinned() {
        // The exact export string for this snapshot. Deliberately updated
        // when the format changes (last: kernel_jobs/core_budget added
        // with the core-budget policy) so accidental drift still fails
        // the build.
        let mut latency_buckets = [0u64; LATENCY_BUCKETS];
        latency_buckets[6] = 1; // one request at 100 µs
        latency_buckets[1] = 1; // one request at 3 µs
        let mut batch_occupancy_buckets = [0u64; OCCUPANCY_BUCKETS];
        batch_occupancy_buckets[2] = 1; // one batch of occupancy 4
        let snap = StatsSnapshot {
            cache_hits: 2,
            cache_misses: 1,
            cache_evictions: 0,
            compiles: 1,
            completed: 1,
            failed: 1,
            panics: 1,
            retries: 2,
            timeouts: 0,
            shed: 3,
            worker_respawns: 1,
            batched_requests: 4,
            batches_executed: 1,
            queue_depth: 1,
            peak_queue_depth: 2,
            busy_us: 82,
            latency_sum_us: 103,
            latency_buckets,
            batch_occupancy_buckets,
            workers: 2,
            kernel_jobs: 4,
            core_budget: 8,
            utilization: 0.25,
        };
        assert_eq!(
            snap.to_json(),
            concat!(
                "{\"cache_hits\":2,\"cache_misses\":1,",
                "\"cache_evictions\":0,\"compiles\":1,",
                "\"completed\":1,\"failed\":1,\"panics\":1,",
                "\"retries\":2,\"timeouts\":0,\"shed\":3,",
                "\"worker_respawns\":1,\"batched_requests\":4,",
                "\"batches_executed\":1,\"queue_depth\":1,",
                "\"peak_queue_depth\":2,\"busy_us\":82,\"workers\":2,",
                "\"kernel_jobs\":4,\"core_budget\":8,",
                "\"utilization\":0.2500,\"mean_latency_us\":51.5,",
                "\"latency_p50_us\":3.0,\"latency_p95_us\":89.6,",
                "\"latency_p99_us\":94.7,",
                "\"latency_buckets_pow2_us\":[0,1,0,0,0,0,1,0,0,0,0,0,",
                "0,0,0,0,0,0,0,0,0,0,0,0],",
                "\"batch_occupancy_buckets_pow2\":[0,0,1,0,0,0,0,0]}"
            )
        );
        // And the live path reproduces the same buckets and sum.
        let s = RuntimeStats::new();
        s.record_done(true, 100.0, 80.0);
        s.record_done(false, 3.0, 2.0);
        let live = s.snapshot(2);
        assert_eq!(live.latency_buckets, latency_buckets);
        assert_eq!(live.latency_sum_us, 103);
    }

    #[test]
    fn prometheus_exposes_runtime_metrics() {
        let s = RuntimeStats::new();
        s.record_hit();
        s.record_done(true, 10.0, 5.0);
        s.record_panic();
        s.record_shed();
        let text = s.prometheus();
        assert!(text.contains("# TYPE hecate_runtime_cache_hits_total counter"));
        assert!(text.contains("hecate_runtime_cache_hits_total 1"));
        assert!(text.contains("hecate_runtime_request_latency_us_count 1"));
        assert!(text.contains("hecate_runtime_request_latency_us_sum 10"));
        assert!(text.contains("hecate_runtime_panics_total 1"));
        assert!(text.contains("hecate_runtime_shed_total 1"));
        assert!(text.contains("hecate_runtime_retries_total 0"));
        assert!(text.contains("hecate_runtime_timeouts_total 0"));
        assert!(text.contains("hecate_runtime_worker_respawns_total 0"));
        assert!(text.contains("hecate_runtime_kernel_jobs 1"));
        assert!(text.contains("hecate_runtime_core_budget_cores 0"));
        s.record_core_split(4, 8);
        let text = s.prometheus();
        assert!(text.contains("hecate_runtime_kernel_jobs 4"));
        assert!(text.contains("hecate_runtime_core_budget_cores 8"));
        s.record_batch(4);
        let text = s.prometheus();
        assert!(text.contains("hecate_runtime_batched_requests_total 4"));
        assert!(text.contains("hecate_runtime_batches_executed_total 1"));
        assert!(text.contains("hecate_runtime_batch_occupancy_count 1"));
        assert!(text.contains("hecate_runtime_batch_occupancy_sum 4"));
        assert!(text.contains("# TYPE hecate_kernel_stripes_total counter"));
        assert!(text.contains("hecate_kernel_stripes_total{mode=\"pool\"} "));
        assert!(text.contains("hecate_kernel_stripes_total{mode=\"inline\"} "));
    }

    #[test]
    fn recent_latency_window_is_bounded_and_exact() {
        let s = RuntimeStats::new();
        assert_eq!(s.recent_latency_quantile(0.99), None);
        assert_eq!(s.recent_latency_count(), 0);
        for i in 1..=10 {
            s.record_done(true, i as f64, 0.0);
        }
        // Nearest-rank over [1..10]: p50 = 5, p99 = 10, p100 = 10.
        assert_eq!(s.recent_latency_quantile(0.5), Some(5.0));
        assert_eq!(s.recent_latency_quantile(0.99), Some(10.0));
        assert_eq!(s.recent_latency_quantile(1.0), Some(10.0));
        // Overflowing the window drops the oldest entries, so the
        // quantiles track the recent regime, not all of history.
        for _ in 0..SLO_WINDOW {
            s.record_done(true, 1000.0, 0.0);
        }
        assert_eq!(s.recent_latency_count(), SLO_WINDOW);
        assert_eq!(s.recent_latency_quantile(0.5), Some(1000.0));
    }

    #[test]
    fn prometheus_slo_lines_are_pinned() {
        // The exact quantile and per-session margin lines for this
        // workload: 100 µs lands in bucket 6 ([64,128)), 3 µs in bucket 1
        // ([2,4)), so p50 interpolates to the low bucket's midpoint and
        // p95/p99 into the high bucket.
        let s = RuntimeStats::new();
        s.record_done(true, 100.0, 80.0);
        s.record_done(true, 3.0, 2.0);
        s.record_precision(3, 12.5);
        s.record_precision(7, 4.25);
        s.record_precision(3, 18.0); // looser than 12.5 — gauge keeps the min
        let text = s.prometheus();
        assert!(text.contains(
            "# TYPE hecate_runtime_request_latency_p50_us gauge\n\
             hecate_runtime_request_latency_p50_us 3.0\n"
        ));
        assert!(text.contains(
            "# TYPE hecate_runtime_request_latency_p95_us gauge\n\
             hecate_runtime_request_latency_p95_us 89.6\n"
        ));
        assert!(text.contains(
            "# TYPE hecate_runtime_request_latency_p99_us gauge\n\
             hecate_runtime_request_latency_p99_us 94.7\n"
        ));
        assert!(text.contains(
            "# TYPE hecate_runtime_session_min_margin_bits gauge\n\
             hecate_runtime_session_min_margin_bits{session=\"3\"} 12.500\n\
             hecate_runtime_session_min_margin_bits{session=\"7\"} 4.250\n"
        ));
        assert_eq!(s.session_margins(), vec![(3, 12.5), (7, 4.25)]);
        // Non-finite margins are ignored rather than exported as NaN.
        s.record_precision(9, f64::NAN);
        assert_eq!(s.session_margins().len(), 2);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = RuntimeStats::new().snapshot(1);
        assert_eq!(snap.latency_quantile_us(0.5), 0.0);
        assert_eq!(snap.latency_quantile_us(0.99), 0.0);
        let text = RuntimeStats::new().prometheus();
        assert!(text.contains("hecate_runtime_request_latency_p50_us 0.0"));
        assert!(!text.contains("hecate_runtime_session_min_margin_bits"));
    }
}
