//! Lock-free runtime counters and their JSON export.
//!
//! One [`RuntimeStats`] instance is shared (behind an `Arc`) by the plan
//! cache, the request queue, and every worker thread; all updates are
//! relaxed atomics, so recording costs a few nanoseconds per event.
//! [`RuntimeStats::snapshot`] materializes a consistent-enough
//! [`StatsSnapshot`] for reporting, and the snapshot renders itself as
//! JSON without any external dependency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets (bucket `k` holds requests with
/// latency in `[2^k, 2^{k+1})` microseconds; the last bucket is open).
pub const LATENCY_BUCKETS: usize = 24;

/// Shared atomic counters for one [`crate::Runtime`].
#[derive(Debug)]
pub struct RuntimeStats {
    /// Plan-cache lookups satisfied by an existing artifact.
    cache_hits: AtomicU64,
    /// Plan-cache lookups that found no artifact (compiles + waits).
    cache_misses: AtomicU64,
    /// Full compiler-pipeline runs. With single-flight this stays at one
    /// per distinct plan key no matter how many requests race.
    compiles: AtomicU64,
    /// Requests completed successfully.
    completed: AtomicU64,
    /// Requests that returned an error.
    failed: AtomicU64,
    /// Requests currently queued, waiting for a worker.
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    peak_queue_depth: AtomicU64,
    /// Total time workers spent processing requests, microseconds.
    busy_us: AtomicU64,
    /// End-to-end request latency histogram (power-of-two µs buckets).
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// Sum of end-to-end latencies, microseconds.
    latency_sum_us: AtomicU64,
    /// When this stats instance was created (for utilization).
    started: Instant,
}

impl Default for RuntimeStats {
    fn default() -> Self {
        RuntimeStats {
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

impl RuntimeStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cache hit.
    pub fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss.
    pub fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one run of the full compiler pipeline.
    pub fn record_compile(&self) {
        self.compiles.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request entering the queue.
    pub fn record_enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records a request leaving the queue (a worker picked it up).
    pub fn record_dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a finished request with its end-to-end latency and the
    /// worker time it consumed.
    pub fn record_done(&self, ok: bool, latency_us: f64, busy_us: f64) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let us = latency_us.max(0.0) as u64;
        let bucket = (64 - us.leading_zeros() as usize)
            .saturating_sub(1)
            .min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.busy_us
            .fetch_add(busy_us.max(0.0) as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self, workers: usize) -> StatsSnapshot {
        let uptime_us = self.started.elapsed().as_secs_f64() * 1e6;
        let busy = self.busy_us.load(Ordering::Relaxed);
        StatsSnapshot {
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            busy_us: busy,
            latency_sum_us: self.latency_sum_us.load(Ordering::Relaxed),
            latency_buckets: std::array::from_fn(|k| self.latency[k].load(Ordering::Relaxed)),
            workers,
            utilization: if uptime_us > 0.0 && workers > 0 {
                (busy as f64 / (uptime_us * workers as f64)).min(1.0)
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time copy of [`RuntimeStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Compiler-pipeline runs (≤ distinct plan keys, thanks to
    /// single-flight).
    pub compiles: u64,
    /// Successfully completed requests.
    pub completed: u64,
    /// Failed requests.
    pub failed: u64,
    /// Requests currently queued.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub peak_queue_depth: u64,
    /// Total worker busy time, microseconds.
    pub busy_us: u64,
    /// Sum of end-to-end request latencies, microseconds.
    pub latency_sum_us: u64,
    /// Latency histogram: bucket `k` counts requests in
    /// `[2^k, 2^{k+1})` µs.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
    /// Number of worker threads the runtime was configured with.
    pub workers: usize,
    /// Fraction of worker wall-clock spent busy since startup, in `[0,1]`.
    pub utilization: f64,
}

impl StatsSnapshot {
    /// Mean end-to-end latency in microseconds (0 with no requests).
    pub fn mean_latency_us(&self) -> f64 {
        let n = self.completed + self.failed;
        if n == 0 {
            0.0
        } else {
            self.latency_sum_us as f64 / n as f64
        }
    }

    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self.latency_buckets.iter().map(|c| c.to_string()).collect();
        format!(
            concat!(
                "{{\"cache_hits\":{},\"cache_misses\":{},\"compiles\":{},",
                "\"completed\":{},\"failed\":{},\"queue_depth\":{},",
                "\"peak_queue_depth\":{},\"busy_us\":{},\"workers\":{},",
                "\"utilization\":{:.4},\"mean_latency_us\":{:.1},",
                "\"latency_buckets_pow2_us\":[{}]}}"
            ),
            self.cache_hits,
            self.cache_misses,
            self.compiles,
            self.completed,
            self.failed,
            self.queue_depth,
            self.peak_queue_depth,
            self.busy_us,
            self.workers,
            self.utilization,
            self.mean_latency_us(),
            buckets.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = RuntimeStats::new();
        s.record_miss();
        s.record_compile();
        s.record_hit();
        s.record_hit();
        s.record_enqueue();
        s.record_enqueue();
        s.record_dequeue();
        s.record_done(true, 100.0, 80.0);
        s.record_done(false, 3.0, 2.0);
        let snap = s.snapshot(2);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.peak_queue_depth, 2);
        assert_eq!(snap.busy_us, 82);
        // 100 µs lands in bucket 6 ([64,128)), 3 µs in bucket 1 ([2,4)).
        assert_eq!(snap.latency_buckets[6], 1);
        assert_eq!(snap.latency_buckets[1], 1);
        assert!((snap.mean_latency_us() - 51.5).abs() < 1e-9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = RuntimeStats::new();
        s.record_done(true, 10.0, 5.0);
        let json = s.snapshot(4).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"compiles\":0"));
        assert!(json.contains("\"workers\":4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
