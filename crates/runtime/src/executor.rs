//! Parallel encrypted execution of one request's dependence DAG.
//!
//! The SSA arena of a compiled program *is* its dependence DAG, so the
//! scheduler is a classic ready-set loop: every operation whose operands
//! are all computed sits in a ready queue; `jobs` workers pop operations,
//! run the [`ExecEngine`] kernel, publish the value, and decrement the
//! in-degrees of the consumers, enqueueing any that reach zero.
//!
//! **Determinism.** The result is bit-identical to
//! [`hecate_backend::exec::execute_sequential`] no matter the worker
//! count or interleaving: randomness is confined to key generation
//! (engine construction) and input encryption, and
//! [`ExecEngine::encrypt_inputs`] encrypts inputs sequentially in
//! operation order before any worker starts. Every homomorphic kernel is
//! a deterministic function of its operand ciphertexts, so the DAG's
//! unique fixpoint is reached regardless of evaluation order. The
//! `parallel_matches_sequential` integration test asserts exact `f64`
//! equality on every benchmark workload.
//!
//! **Guards.** Per-operation guard checks (metadata, representation,
//! noise budget) run exactly as in sequential execution; the noise
//! monitor is shared behind a mutex and recorded per operation *after*
//! its operands, which the scheduling order guarantees.
//!
//! **Memory.** Values are released when their last consumer finishes
//! (atomic use counts), so the liveness discipline of the sequential
//! executor carries over; the reported peaks depend on the actual
//! interleaving and are generally ≥ the sequential executor's.

use hecate_backend::exec::{CancelToken, EncryptedRun, ExecEngine, ExecError, HoistState, OpValue};
use hecate_backend::NoiseMonitor;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock};

struct Shared<'e> {
    engine: &'e ExecEngine,
    /// Optional cancellation token polled by every worker between ops, so
    /// a timed-out request stops consuming cores within one kernel.
    cancel: Option<&'e CancelToken>,
    /// Per-run rotation-hoisting cache (shared decompositions). Lives
    /// exactly as long as this request: hoisted decompositions are tied
    /// to this run's ciphertext values, which differ between requests
    /// served by the same engine.
    hoist: HoistState,
    /// One slot per operation; `Some` once computed, taken back out when
    /// the last consumer finishes (unless the value is an output).
    slots: Vec<RwLock<Option<OpValue>>>,
    /// Remaining uncomputed operands per operation (counted per operand
    /// instance, matching the `users` multiset).
    indegree: Vec<AtomicUsize>,
    /// Consumers of each value, one entry per operand instance.
    users: Vec<Vec<usize>>,
    /// Remaining consumer instances per value (for release).
    remaining_uses: Vec<AtomicUsize>,
    /// Values that outlive execution (program outputs).
    keep: Vec<bool>,
    ready: Mutex<VecDeque<usize>>,
    wake: Condvar,
    completed: AtomicUsize,
    failed: AtomicBool,
    error: Mutex<Option<ExecError>>,
    monitor: Option<Mutex<NoiseMonitor>>,
    op_us: Mutex<Vec<f64>>,
    live_cipher: AtomicUsize,
    peak_live: AtomicUsize,
    live_bytes: AtomicUsize,
    peak_bytes: AtomicUsize,
}

impl Shared<'_> {
    fn fail(&self, e: ExecError) {
        let mut slot = self.error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        // The termination flag must flip while holding the `ready` mutex:
        // workers check it under that mutex before parking, so an unlocked
        // store + notify could land between a worker's check and its
        // `wait`, losing the wakeup and hanging the scope join.
        let _ready = self.ready.lock().unwrap();
        self.failed.store(true, Ordering::SeqCst);
        self.wake.notify_all();
    }

    fn publish(&self, i: usize, value: OpValue) {
        if value.is_cipher() {
            let live = self.live_cipher.fetch_add(1, Ordering::Relaxed) + 1;
            self.peak_live.fetch_max(live, Ordering::Relaxed);
            let bytes = self
                .live_bytes
                .fetch_add(value.cipher_bytes(self.engine.degree()), Ordering::Relaxed)
                + value.cipher_bytes(self.engine.degree());
            self.peak_bytes.fetch_max(bytes, Ordering::Relaxed);
        }
        *self.slots[i].write().unwrap() = Some(value);
    }

    fn release_operand(&self, v: usize) {
        if self.remaining_uses[v].fetch_sub(1, Ordering::AcqRel) == 1 && !self.keep[v] {
            if let Some(val) = self.slots[v].write().unwrap().take() {
                if val.is_cipher() {
                    self.live_cipher.fetch_sub(1, Ordering::Relaxed);
                    self.live_bytes
                        .fetch_sub(val.cipher_bytes(self.engine.degree()), Ordering::Relaxed);
                }
            }
        }
    }

    /// Runs operation `i` end to end; returns the consumers that became
    /// ready.
    fn run_op(&self, i: usize) -> Result<Vec<usize>, ExecError> {
        let op = &self.engine.prog().func.ops()[i];
        let operands = op.operands();
        let (value, us, injected_var) =
            if operands.is_empty() && self.slots[i].read().unwrap().is_some() {
                // Pre-encrypted input: admit it through fault injection and
                // guards, exactly as a computed value would be.
                let mut value = self.slots[i].write().unwrap().take().expect("input value");
                let injected = self.engine.admit_value(i, &mut value)?;
                (value, 0.0, injected)
            } else {
                let guards: Vec<_> = operands
                    .iter()
                    .map(|v| self.slots[v.index()].read().unwrap())
                    .collect();
                let refs: Vec<&OpValue> = guards
                    .iter()
                    .map(|g| g.as_ref().expect("operand computed before consumer"))
                    .collect();
                self.engine.exec_op_with(i, &refs, Some(&self.hoist))?
            };
        if let Some(monitor) = &self.monitor {
            self.engine
                .check_noise(&mut monitor.lock().unwrap(), i, injected_var)?;
        }
        self.op_us.lock().unwrap()[i] = us;
        self.publish(i, value);
        for v in &operands {
            self.release_operand(v.index());
        }
        let mut newly_ready = Vec::new();
        for &user in &self.users[i] {
            if self.indegree[user].fetch_sub(1, Ordering::AcqRel) == 1 {
                newly_ready.push(user);
            }
        }
        Ok(newly_ready)
    }

    fn worker(&self, total: usize) {
        loop {
            let i = {
                let mut ready = self.ready.lock().unwrap();
                loop {
                    if self.failed.load(Ordering::SeqCst)
                        || self.completed.load(Ordering::SeqCst) == total
                    {
                        return;
                    }
                    if let Some(i) = ready.pop_front() {
                        break i;
                    }
                    ready = self.wake.wait(ready).unwrap();
                }
            };
            if self.cancel.is_some_and(|c| c.is_cancelled()) {
                self.fail(ExecError::Cancelled { at: i });
                return;
            }
            match self.run_op(i) {
                Ok(newly_ready) => {
                    if !newly_ready.is_empty() {
                        let mut ready = self.ready.lock().unwrap();
                        for j in newly_ready {
                            ready.push_back(j);
                        }
                        drop(ready);
                        self.wake.notify_all();
                    }
                    if self.completed.fetch_add(1, Ordering::SeqCst) + 1 == total {
                        // Notify under the `ready` mutex for the same
                        // reason as `fail`: a worker between its
                        // completed-count check and `wait` holds the
                        // mutex, so acquiring it here guarantees every
                        // peer is either parked (and woken) or will
                        // observe the final count before parking.
                        let _ready = self.ready.lock().unwrap();
                        self.wake.notify_all();
                    }
                }
                Err(e) => {
                    self.fail(e);
                    return;
                }
            }
        }
    }
}

/// Executes a compiled program under encryption with `jobs` worker
/// threads scheduling the dependence DAG.
///
/// With `jobs == 1` this degenerates to sequential execution on the
/// calling thread's schedule; results are bit-identical at any job count
/// (see the module docs).
///
/// # Errors
/// Returns [`ExecError`] on input, evaluator, or guard failures — the
/// first failure wins and remaining work is abandoned.
///
/// # Panics
/// Panics if a worker thread panics (which the engine kernels do not).
pub fn execute_parallel(
    engine: &ExecEngine,
    inputs: &HashMap<String, Vec<f64>>,
    jobs: usize,
) -> Result<EncryptedRun, ExecError> {
    execute_parallel_with(engine, inputs, jobs, None)
}

/// [`execute_parallel`] with an optional [`CancelToken`] polled by every
/// worker between ops — the serving layer's deadline hook: when a
/// request's deadline passes mid-run, workers abandon the DAG within one
/// kernel instead of finishing work nobody will read.
///
/// # Errors
/// Returns [`ExecError`] on input, evaluator, guard, or cancellation
/// failures — the first failure wins and remaining work is abandoned.
///
/// # Panics
/// Panics if a worker thread panics (which the engine kernels do not).
pub fn execute_parallel_with(
    engine: &ExecEngine,
    inputs: &HashMap<String, Vec<f64>>,
    jobs: usize,
    cancel: Option<&CancelToken>,
) -> Result<EncryptedRun, ExecError> {
    let jobs = jobs.max(1);
    let prog = engine.prog().clone();
    let n = prog.func.len();
    let mut span = hecate_telemetry::trace::span_with("execute", || {
        vec![
            ("func", prog.func.name.as_str().into()),
            ("ops", n.into()),
            ("jobs", jobs.into()),
            ("degree", engine.degree().into()),
            ("chain_len", engine.chain_len().into()),
        ]
    });
    let pre = engine.encrypt_inputs(inputs)?;

    let mut users: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = Vec::with_capacity(n);
    let mut initial: VecDeque<usize> = VecDeque::new();
    for (i, op) in prog.func.ops().iter().enumerate() {
        let operands = op.operands();
        indegree.push(AtomicUsize::new(operands.len()));
        if operands.is_empty() {
            initial.push_back(i);
        }
        for v in operands {
            users[v.index()].push(i);
        }
    }
    let mut keep = vec![false; n];
    for (_, v) in prog.func.outputs() {
        keep[v.index()] = true;
    }
    let remaining_uses = (0..n).map(|v| AtomicUsize::new(users[v].len())).collect();

    let shared = Shared {
        engine,
        cancel,
        hoist: HoistState::default(),
        slots: pre.into_iter().map(RwLock::new).collect(),
        indegree,
        users,
        remaining_uses,
        keep,
        ready: Mutex::new(initial),
        wake: Condvar::new(),
        completed: AtomicUsize::new(0),
        failed: AtomicBool::new(false),
        error: Mutex::new(None),
        monitor: engine.new_monitor().map(Mutex::new),
        op_us: Mutex::new(vec![0.0; n]),
        live_cipher: AtomicUsize::new(0),
        peak_live: AtomicUsize::new(0),
        live_bytes: AtomicUsize::new(0),
        peak_bytes: AtomicUsize::new(0),
    };

    // The correlation context is thread-local; capture it here and
    // re-establish it in each DAG worker so backend exec-op events keep
    // the serving request's req_id across the thread hop.
    let (ctx_req, ctx_batch) = hecate_telemetry::trace::current_context();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let _ctx = hecate_telemetry::trace::push_context(ctx_req, ctx_batch);
                shared.worker(n);
            });
        }
    });

    if let Some(e) = shared.error.lock().unwrap().take() {
        return Err(e);
    }
    assert_eq!(
        shared.completed.load(Ordering::SeqCst),
        n,
        "scheduler drained without completing the DAG"
    );

    let mut outputs = HashMap::new();
    for (name, v) in prog.func.outputs() {
        let slot = shared.slots[v.index()].read().unwrap();
        let value = slot.as_ref().expect("output value retained");
        outputs.insert(name.clone(), engine.decrypt_output(value));
    }
    let op_us = shared.op_us.into_inner().unwrap();
    let total_us: f64 = op_us.iter().sum();
    span.attr("total_us", total_us.into());
    Ok(EncryptedRun {
        outputs,
        total_us,
        op_us,
        peak_live: shared.peak_live.load(Ordering::Relaxed),
        peak_bytes: shared.peak_bytes.load(Ordering::Relaxed),
        degree: engine.degree(),
        chain_len: engine.chain_len(),
        // Margins are type-derived, so the plan's static minimum equals
        // what a per-run ledger would record.
        min_margin_bits: engine.min_plan_margin_bits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_backend::exec::{execute_sequential, BackendOptions, GuardOptions};
    use hecate_compiler::{compile, CompileOptions, Scheme};
    use hecate_ir::FunctionBuilder;
    use std::sync::Arc;

    fn engine() -> ExecEngine {
        let mut b = FunctionBuilder::new("diamond", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let s = b.add(x2, y2);
        let c = b.splat(0.5);
        let m = b.mul(s, c);
        b.output(m);
        let mut opts = CompileOptions::with_waterline(22.0);
        opts.degree = Some(64);
        let prog = compile(&b.finish(), Scheme::Hecate, &opts).unwrap();
        ExecEngine::new(Arc::new(prog), &BackendOptions::default()).unwrap()
    }

    fn inputs() -> HashMap<String, Vec<f64>> {
        let mut m = HashMap::new();
        m.insert("x".into(), vec![1.0, -2.0, 0.5, 3.0, 0.0, 1.5, -1.0, 2.0]);
        m.insert("y".into(), vec![0.5, 1.0, -0.5, 2.0, 1.0, 0.0, -2.0, 1.0]);
        m
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        let engine = engine();
        let seq = execute_sequential(&engine, &inputs()).unwrap();
        for jobs in [1, 2, 4] {
            let par = execute_parallel(&engine, &inputs(), jobs).unwrap();
            for (name, want) in &seq.outputs {
                assert_eq!(&par.outputs[name], want, "jobs={jobs} output {name}");
            }
        }
    }

    #[test]
    fn missing_input_propagates() {
        let engine = engine();
        let mut partial = inputs();
        partial.remove("y");
        let err = execute_parallel(&engine, &partial, 4).unwrap_err();
        assert!(matches!(err, ExecError::MissingInput { .. }));
    }

    #[test]
    fn cancelled_token_aborts_between_ops() {
        let engine = engine();
        let token = CancelToken::new();
        token.cancel();
        let err = execute_parallel_with(&engine, &inputs(), 2, Some(&token)).unwrap_err();
        assert!(matches!(err, ExecError::Cancelled { .. }));
        // An expired deadline trips the same path without an explicit
        // cancel() call.
        let expired = CancelToken::with_deadline(std::time::Instant::now());
        let err = execute_parallel_with(&engine, &inputs(), 1, Some(&expired)).unwrap_err();
        assert!(matches!(err, ExecError::Cancelled { .. }));
        // An untripped token changes nothing.
        let idle = CancelToken::new();
        let run = execute_parallel_with(&engine, &inputs(), 2, Some(&idle)).unwrap();
        let clean = execute_parallel(&engine, &inputs(), 2).unwrap();
        assert_eq!(run.outputs, clean.outputs);
    }

    #[test]
    fn noise_budget_failure_propagates() {
        let mut b = FunctionBuilder::new("deep", 8);
        let x = b.input_cipher("x");
        let mut acc = x;
        for _ in 0..3 {
            acc = b.square(acc);
        }
        b.output(acc);
        let mut opts = CompileOptions::with_waterline(18.0);
        opts.degree = Some(64);
        let prog = compile(&b.finish(), Scheme::Hecate, &opts).unwrap();
        // An absurdly tight RMS budget: the first rescale already exceeds it.
        let bopts = BackendOptions {
            guard: GuardOptions {
                max_rms: Some(1e-12),
                ..GuardOptions::default()
            },
            ..BackendOptions::default()
        };
        let engine = ExecEngine::new(Arc::new(prog), &bopts).unwrap();
        let err = execute_parallel(&engine, &inputs(), 2).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExhausted { .. }));
    }
}
