//! Multi-tenant serving layer for compiled HECATE programs.
//!
//! The compiler amortizes badly when every request recompiles: SMU
//! construction and hill-climbing SMSE exploration dwarf a cache probe.
//! This crate turns the compile-then-execute pipeline into a serving
//! runtime with three subsystems:
//!
//! - [`cache`] — a **content-addressed plan cache**: submissions are
//!   keyed by a stable FNV-1a hash of the program's canonical print form,
//!   the scheme, and the compile-options fingerprint. Concurrent misses
//!   on the same key are *single-flighted*: one thread compiles, the rest
//!   block until the artifact is published. Failures are not cached.
//! - [`session`] — a **session manager** owning per-tenant key material.
//!   Each session's keys derive from its own seed, so ciphertexts never
//!   cross sessions (decrypting under another session's key yields
//!   noise); plans are shared, keys are not. Evaluation keys are built
//!   lazily, on a session's first use of a plan, from the cached
//!   artifact's rotation/relinearization requirements.
//! - [`executor`] — a **parallel encrypted executor** scheduling the SSA
//!   dependence DAG over a std-only worker pool, bit-identical to
//!   sequential execution at any thread count, with all per-operation
//!   guard checks preserved.
//!
//! [`Runtime`] wires them together behind a sharded work-stealing
//! request queue ([`pool`]): each worker owns a dequeue shard and steals
//! from its peers when idle, so the hot path never serializes on one
//! lock, and a [`CoreBudget`] policy splits the machine's cores between
//! request workers and per-request kernel jobs. [`stats`] exports cache,
//! queue, latency, and utilization counters as JSON.
//!
//! The serving layer is failure-isolated: a worker panic is caught at
//! the request boundary and returned as [`RuntimeError::Panicked`] (the
//! worker survives; shared locks recover from poisoning), requests carry
//! optional deadlines and retry budgets, the bounded queue sheds load
//! through a cost-priced admission policy, and the [`chaos`] harness
//! injects faults, latency, and panics on demand to prove all of it
//! under stress.
//!
//! Observability is always-on: every request gets a correlation id at
//! admission, threaded through the queue, the batch coalescer, and the
//! backend executor; a bounded flight recorder
//! ([`hecate_telemetry::recorder`]) keeps recent events in per-thread
//! rings and promotes the full span tree of interesting requests (slow,
//! shed, timed out, guard-failed, panicked); and [`diag`] renders a
//! [`DiagnosticsReport`] snapshot of the whole runtime — on demand, on a
//! timer, and as a crash black box when a request panics.
//!
//! # Example
//!
//! ```
//! use hecate_runtime::{Request, Runtime, RuntimeConfig};
//! use hecate_compiler::{CompileOptions, Scheme};
//! use hecate_ir::FunctionBuilder;
//! use std::collections::HashMap;
//!
//! let mut b = FunctionBuilder::new("square", 8);
//! let x = b.input_cipher("x");
//! let sq = b.square(x);
//! b.output(sq);
//! let func = b.finish();
//!
//! let mut options = CompileOptions::with_waterline(25.0);
//! options.degree = Some(128); // toy ring for the doctest
//!
//! let rt = Runtime::new(RuntimeConfig::default());
//! let session = rt.open_session();
//! let mut inputs = HashMap::new();
//! inputs.insert("x".to_string(), vec![1.5, -2.0]);
//! let req = Request {
//!     session, func, scheme: Scheme::Hecate, options, inputs,
//!     deadline: None, max_retries: 0,
//! };
//!
//! let first = rt.run_batch(vec![req.clone()]).remove(0).unwrap();
//! assert!(!first.cache_hit);
//! let second = rt.run_batch(vec![req]).remove(0).unwrap();
//! assert!(second.cache_hit, "identical resubmission must not recompile");
//! assert_eq!(rt.stats().compiles, 1);
//! assert!((second.run.outputs["out0"][0] - 2.25).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod cache;
pub mod chaos;
pub mod diag;
pub mod executor;
pub mod pool;
pub mod session;
mod shard;
pub mod stats;

pub use cache::{plan_key, PlanArtifact, PlanCache, PlanCacheEntry};
pub use chaos::{ChaosKind, ChaosOptions};
pub use diag::{
    DiagnosticsReport, KernelDiag, PlanCacheDiag, RecorderDiag, SessionMargin, SloDiag,
};
pub use executor::{execute_parallel, execute_parallel_with};
pub use pool::{
    CoreBudget, CoreSplit, DiagOptions, RecorderOptions, Request, Response, Runtime, RuntimeConfig,
};
pub use session::{Session, SessionId, SessionManager};
pub use stats::{RuntimeStats, StatsSnapshot};

use hecate_backend::ExecError;
use hecate_compiler::CompileError;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum RuntimeError {
    /// The compiler pipeline rejected the submitted program.
    Compile(CompileError),
    /// Encrypted execution (or engine construction) failed.
    Exec(ExecError),
    /// The request named a session that is not open.
    UnknownSession(SessionId),
    /// The runtime shut down before the request completed.
    Shutdown,
    /// A worker panicked while serving the request. The panic was caught
    /// at the request boundary: the worker survives, shared state is
    /// poison-recovered, and only this request fails.
    Panicked {
        /// The panic payload, when it was a string (the common case).
        message: String,
    },
    /// The request's deadline expired before it finished (in queue,
    /// between retry attempts, or mid-execution via the cancel token).
    TimedOut {
        /// Time from enqueue until the deadline was observed expired.
        elapsed: std::time::Duration,
    },
    /// The bounded request queue was full at submission; nothing was
    /// enqueued.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// Admission control rejected the request: its estimated cost, scaled
    /// by the current queue depth, exceeded the configured budget.
    Shed {
        /// The plan's estimated latency, microseconds.
        estimated_us: f64,
        /// Requests already queued at admission time.
        queue_depth: u64,
        /// The configured admission budget, microseconds.
        budget_us: f64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "compile error: {e}"),
            RuntimeError::Exec(e) => write!(f, "execution error: {e}"),
            RuntimeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            RuntimeError::Shutdown => write!(f, "runtime shut down"),
            RuntimeError::Panicked { message } => {
                write!(f, "worker panicked while serving request: {message}")
            }
            RuntimeError::TimedOut { elapsed } => {
                write!(f, "request deadline expired after {:.1} ms", {
                    elapsed.as_secs_f64() * 1e3
                })
            }
            RuntimeError::QueueFull { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            RuntimeError::Shed {
                estimated_us,
                queue_depth,
                budget_us,
            } => write!(
                f,
                "request shed: estimated {estimated_us:.0} µs at queue depth \
                 {queue_depth} exceeds admission budget {budget_us:.0} µs"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod send_sync {
    //! The serving layer shares engines, plans, and caches across worker
    //! threads by reference; these compile-time assertions pin down the
    //! thread-safety contract end to end.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn runtime_types_are_send_sync() {
        assert_send_sync::<PlanCache>();
        assert_send_sync::<PlanArtifact>();
        assert_send_sync::<Session>();
        assert_send_sync::<SessionManager>();
        assert_send_sync::<RuntimeStats>();
        assert_send_sync::<Runtime>();
        assert_send_sync::<RuntimeError>();
        assert_send_sync::<hecate_backend::ExecEngine>();
        assert_send_sync::<hecate_backend::OpValue>();
    }
}
