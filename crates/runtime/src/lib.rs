//! Multi-tenant serving layer for compiled HECATE programs.
//!
//! The compiler amortizes badly when every request recompiles: SMU
//! construction and hill-climbing SMSE exploration dwarf a cache probe.
//! This crate turns the compile-then-execute pipeline into a serving
//! runtime with three subsystems:
//!
//! - [`cache`] — a **content-addressed plan cache**: submissions are
//!   keyed by a stable FNV-1a hash of the program's canonical print form,
//!   the scheme, and the compile-options fingerprint. Concurrent misses
//!   on the same key are *single-flighted*: one thread compiles, the rest
//!   block until the artifact is published. Failures are not cached.
//! - [`session`] — a **session manager** owning per-tenant key material.
//!   Each session's keys derive from its own seed, so ciphertexts never
//!   cross sessions (decrypting under another session's key yields
//!   noise); plans are shared, keys are not. Evaluation keys are built
//!   lazily, on a session's first use of a plan, from the cached
//!   artifact's rotation/relinearization requirements.
//! - [`executor`] — a **parallel encrypted executor** scheduling the SSA
//!   dependence DAG over a std-only worker pool, bit-identical to
//!   sequential execution at any thread count, with all per-operation
//!   guard checks preserved.
//!
//! [`Runtime`] wires them together behind a request queue ([`pool`]),
//! and [`stats`] exports cache, queue, latency, and utilization counters
//! as JSON.
//!
//! # Example
//!
//! ```
//! use hecate_runtime::{Request, Runtime, RuntimeConfig};
//! use hecate_compiler::{CompileOptions, Scheme};
//! use hecate_ir::FunctionBuilder;
//! use std::collections::HashMap;
//!
//! let mut b = FunctionBuilder::new("square", 8);
//! let x = b.input_cipher("x");
//! let sq = b.square(x);
//! b.output(sq);
//! let func = b.finish();
//!
//! let mut options = CompileOptions::with_waterline(25.0);
//! options.degree = Some(128); // toy ring for the doctest
//!
//! let rt = Runtime::new(RuntimeConfig::default());
//! let session = rt.open_session();
//! let mut inputs = HashMap::new();
//! inputs.insert("x".to_string(), vec![1.5, -2.0]);
//! let req = Request { session, func, scheme: Scheme::Hecate, options, inputs };
//!
//! let first = rt.run_batch(vec![req.clone()]).remove(0).unwrap();
//! assert!(!first.cache_hit);
//! let second = rt.run_batch(vec![req]).remove(0).unwrap();
//! assert!(second.cache_hit, "identical resubmission must not recompile");
//! assert_eq!(rt.stats().compiles, 1);
//! assert!((second.run.outputs["out0"][0] - 2.25).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod executor;
pub mod pool;
pub mod session;
pub mod stats;

pub use cache::{plan_key, PlanArtifact, PlanCache};
pub use executor::execute_parallel;
pub use pool::{Request, Response, Runtime, RuntimeConfig};
pub use session::{Session, SessionId, SessionManager};
pub use stats::{RuntimeStats, StatsSnapshot};

use hecate_backend::ExecError;
use hecate_compiler::CompileError;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum RuntimeError {
    /// The compiler pipeline rejected the submitted program.
    Compile(CompileError),
    /// Encrypted execution (or engine construction) failed.
    Exec(ExecError),
    /// The request named a session that is not open.
    UnknownSession(SessionId),
    /// The runtime shut down before the request completed.
    Shutdown,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "compile error: {e}"),
            RuntimeError::Exec(e) => write!(f, "execution error: {e}"),
            RuntimeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            RuntimeError::Shutdown => write!(f, "runtime shut down"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod send_sync {
    //! The serving layer shares engines, plans, and caches across worker
    //! threads by reference; these compile-time assertions pin down the
    //! thread-safety contract end to end.
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn runtime_types_are_send_sync() {
        assert_send_sync::<PlanCache>();
        assert_send_sync::<PlanArtifact>();
        assert_send_sync::<Session>();
        assert_send_sync::<SessionManager>();
        assert_send_sync::<RuntimeStats>();
        assert_send_sync::<Runtime>();
        assert_send_sync::<RuntimeError>();
        assert_send_sync::<hecate_backend::ExecEngine>();
        assert_send_sync::<hecate_backend::OpValue>();
    }
}
