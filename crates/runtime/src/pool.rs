//! The serving runtime: a request queue feeding a worker pool.
//!
//! [`Runtime`] owns the three subsystems and wires them together per
//! request: the [`PlanCache`] resolves (or compiles, once) the plan, the
//! [`SessionManager`] resolves the tenant's engine (building keys on
//! first use), and the executor runs the request — sequentially, or with
//! [`execute_parallel`] when `jobs_per_request > 1`. Worker threads pull
//! from a shared queue; [`RuntimeStats`] observes every stage.

use crate::cache::{plan_key, PlanCache};
use crate::executor::execute_parallel;
use crate::session::{SessionId, SessionManager};
use crate::stats::{RuntimeStats, StatsSnapshot};
use crate::RuntimeError;
use hecate_backend::exec::{execute_sequential, BackendOptions, EncryptedRun};
use hecate_compiler::{CompileOptions, Scheme};
use hecate_ir::Function;
use hecate_telemetry::trace;
use std::collections::HashMap;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of one [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads pulling from the request queue (inter-request
    /// parallelism).
    pub workers: usize,
    /// DAG worker threads per request (intra-request parallelism);
    /// `1` executes each request sequentially.
    pub jobs_per_request: usize,
    /// Backend options applied to every engine. The seed field is
    /// overridden per session.
    pub backend: BackendOptions,
    /// Bound on published plan-cache artifacts; the least-recently-used
    /// plan is evicted beyond it (clamped to at least 1).
    pub plan_cache_capacity: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            jobs_per_request: 1,
            backend: BackendOptions::default(),
            plan_cache_capacity: crate::cache::DEFAULT_PLAN_CACHE_CAPACITY,
        }
    }
}

/// One unit of serving work: a program to run for a session.
#[derive(Debug, Clone)]
pub struct Request {
    /// The tenant session executing (and paying the keys for) this run.
    pub session: SessionId,
    /// The source program (pre-scale-management IR).
    pub func: Function,
    /// Scale-management scheme to compile with.
    pub scheme: Scheme,
    /// Compiler options; part of the cache key.
    pub options: CompileOptions,
    /// Input bindings.
    pub inputs: HashMap<String, Vec<f64>>,
}

/// The outcome of one served request.
#[derive(Debug)]
pub struct Response {
    /// The encrypted run (outputs, timings, memory peaks).
    pub run: EncryptedRun,
    /// Whether the plan came out of the cache without compiling.
    pub cache_hit: bool,
    /// The content-addressed plan key this request resolved to.
    pub plan_key: u64,
    /// End-to-end latency (queue wait + compile/lookup + execution),
    /// microseconds.
    pub latency_us: f64,
}

struct Job {
    req: Request,
    reply: mpsc::Sender<Result<Response, RuntimeError>>,
    enqueued: Instant,
}

struct Inner {
    config: RuntimeConfig,
    cache: PlanCache,
    sessions: SessionManager,
    stats: Arc<RuntimeStats>,
    queue: Mutex<mpsc::Receiver<Job>>,
}

impl Inner {
    fn serve(&self, job: Job) {
        self.stats.record_dequeue();
        // Queue wait crosses threads (enqueued by the client, dequeued by
        // this worker), so it is a Complete event rather than a span.
        trace::complete_with("queue-wait", job.enqueued, || {
            vec![("session", job.req.session.into())]
        });
        let mut span = trace::span_with("request", || {
            vec![
                ("session", job.req.session.into()),
                ("func", job.req.func.name.as_str().into()),
                ("scheme", job.req.scheme.to_string().into()),
            ]
        });
        let t0 = Instant::now();
        let result = self.process(&job.req);
        let busy_us = t0.elapsed().as_secs_f64() * 1e6;
        let latency_us = job.enqueued.elapsed().as_secs_f64() * 1e6;
        self.stats.record_done(result.is_ok(), latency_us, busy_us);
        span.attr("ok", result.is_ok().into());
        span.attr("latency_us", latency_us.into());
        let result = result.map(|mut resp| {
            resp.latency_us = latency_us;
            resp
        });
        // A dropped receiver means the client gave up; nothing to do.
        let _ = job.reply.send(result);
    }

    fn process(&self, req: &Request) -> Result<Response, RuntimeError> {
        let key = plan_key(&req.func, req.scheme, &req.options);
        // The hit flag comes from inside the cache's own lock — a separate
        // pre-probe would race with concurrent publication and could
        // mislabel a single-flight waiter.
        let (artifact, cache_hit) =
            self.cache
                .get_or_compile(&req.func, req.scheme, &req.options)?;
        let session = self.sessions.get(req.session)?;
        let engine = session.engine(&artifact, &self.config.backend)?;
        let run = if self.config.jobs_per_request > 1 {
            execute_parallel(&engine, &req.inputs, self.config.jobs_per_request)
        } else {
            execute_sequential(&engine, &req.inputs)
        }
        .map_err(RuntimeError::Exec)?;
        self.stats
            .record_precision(req.session, engine.min_plan_margin_bits());
        Ok(Response {
            run,
            cache_hit,
            plan_key: key,
            latency_us: 0.0,
        })
    }
}

/// A multi-tenant serving runtime (see the crate docs for the tour).
pub struct Runtime {
    inner: Arc<Inner>,
    submit: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Starts a runtime with `config.workers` serving threads.
    pub fn new(config: RuntimeConfig) -> Runtime {
        let stats = Arc::new(RuntimeStats::new());
        let (tx, rx) = mpsc::channel::<Job>();
        let inner = Arc::new(Inner {
            cache: PlanCache::with_capacity(stats.clone(), config.plan_cache_capacity),
            sessions: SessionManager::new(config.backend.seed),
            stats,
            queue: Mutex::new(rx),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || loop {
                    // Hold the queue lock only for the blocking receive;
                    // processing happens unlocked so workers overlap.
                    let job = { inner.queue.lock().unwrap().recv() };
                    match job {
                        Ok(job) => inner.serve(job),
                        Err(_) => return, // runtime shut down
                    }
                })
            })
            .collect();
        Runtime {
            inner,
            submit: Some(tx),
            workers,
        }
    }

    /// Opens a tenant session and returns its id.
    pub fn open_session(&self) -> SessionId {
        self.inner.sessions.open().id()
    }

    /// Closes a tenant session, dropping its keys.
    pub fn close_session(&self, id: SessionId) {
        self.inner.sessions.close(id);
    }

    /// Enqueues a request; the returned receiver yields the response when
    /// a worker finishes it.
    ///
    /// # Panics
    /// Panics if called after `shutdown` (the public API consumes the
    /// runtime on shutdown, so this cannot happen from safe use).
    pub fn submit(&self, req: Request) -> mpsc::Receiver<Result<Response, RuntimeError>> {
        let (tx, rx) = mpsc::channel();
        self.inner.stats.record_enqueue();
        self.submit
            .as_ref()
            .expect("runtime is running")
            .send(Job {
                req,
                reply: tx,
                enqueued: Instant::now(),
            })
            .expect("workers alive while runtime exists");
        rx
    }

    /// Runs a batch of requests across the worker pool, returning the
    /// responses in submission order.
    pub fn run_batch(&self, reqs: Vec<Request>) -> Vec<Result<Response, RuntimeError>> {
        let receivers: Vec<_> = reqs.into_iter().map(|r| self.submit(r)).collect();
        receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap_or(Err(RuntimeError::Shutdown)))
            .collect()
    }

    /// A snapshot of the runtime's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(self.inner.config.workers)
    }

    /// Number of compiled plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.inner.cache.len()
    }

    /// The runtime's counters rendered in Prometheus text format.
    pub fn metrics_prometheus(&self) -> String {
        self.inner.stats.prometheus()
    }

    /// Drains the queue and joins the worker threads.
    pub fn shutdown(mut self) {
        self.submit.take(); // close the channel: workers exit at next recv
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.submit.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
