//! The serving runtime: a request queue feeding a supervised worker pool.
//!
//! [`Runtime`] owns the three subsystems and wires them together per
//! request: the [`PlanCache`] resolves (or compiles, once) the plan, the
//! [`SessionManager`] resolves the tenant's engine (building keys on
//! first use), and the executor runs the request — sequentially, or with
//! [`crate::execute_parallel_with`] when `jobs_per_request > 1`. Worker
//! threads pull from a sharded, work-stealing bounded queue
//! ([`crate::shard::JobQueue`] — one shard per worker, so dequeue never
//! serializes the pool on a single lock); [`RuntimeStats`] observes
//! every stage, and [`CoreBudget`] decides how many cores go to request
//! workers versus per-request kernel jobs.
//!
//! # Failure domains
//!
//! The pool is built so one bad request cannot take the service down:
//!
//! - **Panic isolation** — `Inner::serve_with` wraps request processing
//!   in `catch_unwind`. A panic becomes a typed
//!   [`RuntimeError::Panicked`] response (the client always gets exactly
//!   one terminal answer), and the worker then recycles itself through
//!   its supervisor loop, which re-enters the serving loop and counts a
//!   respawn. Shared state (plan cache, session maps, stats) recovers
//!   from lock poisoning, so the surviving workers are unaffected.
//! - **Deadlines** — a [`Request::deadline`] becomes a
//!   [`CancelToken`] checked between ops by both executors; expiry
//!   anywhere (queued, executing, or between retries) yields
//!   [`RuntimeError::TimedOut`].
//! - **Retries** — transient failures (guard trips, noise-budget
//!   exhaustion) re-execute up to [`Request::max_retries`] times with
//!   exponential backoff, on a freshly built engine.
//! - **Admission control** — the queue is bounded
//!   ([`RuntimeConfig::queue_capacity`]), and with
//!   [`RuntimeConfig::admission_budget_us`] set, requests whose
//!   estimated cost scaled by the current queue depth exceeds the budget
//!   are shed *before* they consume queue space.
//! - **Chaos** — [`ChaosOptions`] turns all of the above against itself:
//!   injected faults, latency, and panics on every Nth request, used by
//!   the `chaos_soak` test and `hecatec --serve --chaos`.
//! - **Slot batching** — with [`RuntimeConfig::max_batch`] > 1 the
//!   dequeue path runs through the `batch` module's coalescing
//!   scheduler, which packs compatible queued requests into one shared
//!   ciphertext. Failures inside a shared run degrade every member to
//!   the solo path above; batching never weakens any of the per-request
//!   guarantees.

use crate::cache::{plan_key, PlanCache};
use crate::chaos::{ChaosInjection, ChaosOptions, ChaosState};
use crate::executor::execute_parallel_with;
use crate::session::{SessionId, SessionManager};
use crate::shard::{JobQueue, PushError};
use crate::stats::{RuntimeStats, StatsSnapshot};
use crate::RuntimeError;
use hecate_backend::exec::{
    execute_sequential_with, BackendOptions, CancelToken, EncryptedRun, ExecEngine, ExecError,
};
use hecate_compiler::{CompileOptions, Scheme};
use hecate_ir::Function;
use hecate_telemetry::{recorder, trace};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Process-wide request-id mint. Ids start at 1 so `0` can mean "no
/// request context" in [`trace::push_context`].
static NEXT_REQ_ID: AtomicU64 = AtomicU64::new(1);

/// How many live [`Runtime`]s asked for the flight recorder. The
/// recorder is process-global, so enablement is refcounted: the first
/// runtime turns it on, the last one dropping turns it off.
static RECORDER_USERS: AtomicUsize = AtomicUsize::new(0);

/// Default bound on queued requests
/// ([`RuntimeConfig::queue_capacity`] overrides it). Deliberately
/// generous: the bound exists to make overload a typed, observable
/// rejection instead of unbounded memory growth, not to throttle normal
/// operation.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

/// Retry backoff ceiling: exponential growth stops doubling here.
const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// How the runtime divides physical cores between request-level workers
/// and per-request kernel jobs.
///
/// Before this policy existed, `workers = 8` with `kernel_jobs = 8`
/// meant up to 64 threads fighting for the machine, and the default of
/// per-call scoped kernel threads oversubscribed even modest configs.
/// A managed budget makes the split explicit: `workers` threads pull
/// requests, each request's kernels may stripe over
/// `budget / workers` jobs, and the process-wide kernel pool
/// ([`hecate_math::kernel_pool`]) is capped at `budget − workers`
/// threads so the two layers together never exceed the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreBudget {
    /// No policy: `workers` and `backend.kernel_jobs` are used exactly
    /// as configured and the kernel pool keeps its default ceiling.
    #[default]
    Unmanaged,
    /// Split `std::thread::available_parallelism()` cores.
    Auto,
    /// Split exactly this many cores (clamped to at least 1).
    Cores(usize),
}

/// The resolved worker/kernel split of a [`CoreBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSplit {
    /// Request-level worker threads.
    pub workers: usize,
    /// Per-request kernel jobs (limb-level parallelism).
    pub kernel_jobs: usize,
    /// Total cores the policy budgeted; `None` when unmanaged.
    pub budget: Option<usize>,
}

impl CoreBudget {
    /// Resolves the policy against a requested worker count and the
    /// configured kernel jobs. Managed budgets clamp workers to the
    /// budget and derive `kernel_jobs = budget / workers` (at least 1),
    /// so the product never oversubscribes the budget.
    pub fn resolve(self, requested_workers: usize, configured_kernel_jobs: usize) -> CoreSplit {
        let total = match self {
            CoreBudget::Unmanaged => {
                return CoreSplit {
                    workers: requested_workers.max(1),
                    kernel_jobs: configured_kernel_jobs.max(1),
                    budget: None,
                }
            }
            CoreBudget::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            CoreBudget::Cores(n) => n.max(1),
        };
        let workers = requested_workers.clamp(1, total);
        CoreSplit {
            workers,
            kernel_jobs: (total / workers).max(1),
            budget: Some(total),
        }
    }
}

/// Flight-recorder policy for one [`Runtime`]; see
/// [`hecate_telemetry::recorder`].
///
/// The recorder is cheap enough to leave on in production — every
/// telemetry event additionally lands in a bounded per-thread ring, and
/// the full span tree of an *interesting* request (slow, shed, timed
/// out, guard-failed, panicked) is promoted out of the ring before it
/// can be overwritten.
#[derive(Debug, Clone)]
pub struct RecorderOptions {
    /// Per-thread ring capacity, in events; the oldest event is
    /// overwritten beyond it.
    pub ring_capacity: usize,
    /// Bound on promoted (retained) traces; the oldest retained trace
    /// is dropped beyond it.
    pub retained_capacity: usize,
    /// Requests at least this slow are retained even when they succeed.
    /// `None` retains only failures (shed / timed-out / guard-failed /
    /// panicked).
    pub slow_threshold: Option<Duration>,
}

impl Default for RecorderOptions {
    fn default() -> Self {
        RecorderOptions {
            ring_capacity: recorder::DEFAULT_RING_CAPACITY,
            retained_capacity: recorder::DEFAULT_RETAINED_CAPACITY,
            slow_threshold: None,
        }
    }
}

/// Periodic diagnostics dumps: where to write them and how often.
///
/// With this set, the runtime runs a `hecate-diag` thread writing a
/// [`crate::diag::DiagnosticsReport`] JSON file every `interval`, plus
/// a final dump at shutdown, plus a `blackbox-req{id}.json` crash dump
/// whenever a request panics (written *before* the supervisor recycles
/// the worker, so the evidence survives even if the process dies next).
#[derive(Debug, Clone)]
pub struct DiagOptions {
    /// Directory receiving `diag-NNNNNN.json` and `blackbox-*.json`
    /// files; created if missing.
    pub dir: PathBuf,
    /// Period between snapshot dumps.
    pub interval: Duration,
}

/// Configuration of one [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Worker threads pulling from the request queue (inter-request
    /// parallelism).
    pub workers: usize,
    /// DAG worker threads per request (intra-request parallelism);
    /// `1` executes each request sequentially.
    pub jobs_per_request: usize,
    /// Backend options applied to every engine. The seed field is
    /// overridden per session.
    pub backend: BackendOptions,
    /// Bound on published plan-cache artifacts; the least-recently-used
    /// plan is evicted beyond it (clamped to at least 1).
    pub plan_cache_capacity: usize,
    /// Bound on queued requests (clamped to at least 1). A full queue
    /// rejects submissions with [`RuntimeError::QueueFull`].
    pub queue_capacity: usize,
    /// Cost-priced admission budget, microseconds. When set, a request
    /// whose plan is already cached is shed at submission if
    /// `estimated_latency_us × (queue_depth + 1)` exceeds this budget —
    /// an estimate of the total backlog cost the request would join.
    /// Unknown plans are always admitted (their first run is how the
    /// estimator learns). `None` disables shedding.
    pub admission_budget_us: Option<f64>,
    /// Base delay between retry attempts; doubles per attempt up to a
    /// 100 ms ceiling, and never sleeps past the request's deadline.
    pub retry_backoff: Duration,
    /// Chaos-injection policy, for resilience testing. `None` (the
    /// default) serves normally.
    pub chaos: Option<ChaosOptions>,
    /// How long a worker that dequeued a request waits for compatible
    /// requests (same plan) to coalesce into one slot-batched execution.
    /// Zero (the default) disables waiting — a batch still forms from
    /// requests already queued when [`RuntimeConfig::max_batch`] permits.
    pub batch_window: Duration,
    /// Upper bound on how many compatible requests share one packed
    /// ciphertext. `1` (the default) disables batching entirely; the
    /// effective occupancy is always a power of two and shrinks to what
    /// the plan's slot footprint allows.
    pub max_batch: usize,
    /// How to divide cores between request workers and kernel jobs.
    /// Managed budgets override `workers`/`backend.kernel_jobs` with
    /// the resolved split and cap the process-wide kernel pool; see
    /// [`CoreBudget`].
    pub core_budget: CoreBudget,
    /// Flight-recorder policy. `Some` (the default) keeps the bounded
    /// always-on recorder enabled and promotes interesting requests'
    /// span trees; `None` opts this runtime out entirely.
    pub recorder: Option<RecorderOptions>,
    /// Latency objective, microseconds, reported against the sliding
    /// p99 in [`crate::diag::DiagnosticsReport`] as an SLO burn ratio.
    /// `None` reports quantiles without a target.
    pub slo_target_us: Option<f64>,
    /// Periodic diagnostics dumps and panic black boxes; `None` (the
    /// default) disables the dump thread (a [`Runtime::diagnose`] call
    /// still works).
    pub diag: Option<DiagOptions>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            jobs_per_request: 1,
            backend: BackendOptions::default(),
            plan_cache_capacity: crate::cache::DEFAULT_PLAN_CACHE_CAPACITY,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            admission_budget_us: None,
            retry_backoff: Duration::from_millis(1),
            chaos: None,
            batch_window: Duration::ZERO,
            max_batch: 1,
            core_budget: CoreBudget::Unmanaged,
            recorder: Some(RecorderOptions::default()),
            slo_target_us: None,
            diag: None,
        }
    }
}

/// One unit of serving work: a program to run for a session.
#[derive(Debug, Clone)]
pub struct Request {
    /// The tenant session executing (and paying the keys for) this run.
    pub session: SessionId,
    /// The source program (pre-scale-management IR).
    pub func: Function,
    /// Scale-management scheme to compile with.
    pub scheme: Scheme,
    /// Compiler options; part of the cache key.
    pub options: CompileOptions,
    /// Input bindings.
    pub inputs: HashMap<String, Vec<f64>>,
    /// End-to-end deadline, measured from submission. Expiry anywhere —
    /// in queue, mid-execution (checked between ops), or between retry
    /// attempts — fails the request with [`RuntimeError::TimedOut`].
    /// `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Additional execution attempts allowed after a *transient* failure
    /// (a guard trip or noise-budget exhaustion). Retries run on a
    /// freshly built engine with exponential backoff. `0` fails fast.
    pub max_retries: u32,
}

/// The outcome of one served request.
#[derive(Debug)]
pub struct Response {
    /// The encrypted run (outputs, timings, memory peaks).
    pub run: EncryptedRun,
    /// Whether the plan came out of the cache without compiling.
    pub cache_hit: bool,
    /// The content-addressed plan key this request resolved to.
    pub plan_key: u64,
    /// End-to-end latency (queue wait + compile/lookup + execution),
    /// microseconds.
    pub latency_us: f64,
    /// Re-execution attempts this response needed (0 = first try).
    pub retries: u32,
    /// How many requests shared the packed ciphertext that produced this
    /// response (`1` = solo execution).
    pub batch_occupancy: usize,
    /// The correlation id minted for this request at admission. Every
    /// telemetry event the request produced — through the queue, the
    /// batch coalescer, and the backend executor — carries it as a
    /// `req_id` attr, and a retained flight-recorder trace is looked up
    /// by it ([`hecate_telemetry::recorder::retained_trace`]).
    pub req_id: u64,
}

pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) reply: mpsc::Sender<Result<Response, RuntimeError>>,
    pub(crate) enqueued: Instant,
    pub(crate) req_id: u64,
}

/// True for failures worth re-executing: a guard trip or noise-budget
/// blow-up can stem from transient engine state (or an injected fault),
/// and a clean re-run on a fresh engine legitimately recovers. Compile
/// errors, missing inputs, and evaluator bugs are deterministic — a
/// retry would only repeat them.
pub(crate) fn is_transient(e: &ExecError) -> bool {
    matches!(
        e,
        ExecError::Guard { .. } | ExecError::BudgetExhausted { .. }
    )
}

/// Renders a caught panic payload (the `&str`/`String` cases cover
/// `panic!` with a message; anything else is typed opaquely).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

pub(crate) struct Inner {
    pub(crate) config: RuntimeConfig,
    pub(crate) cache: PlanCache,
    pub(crate) sessions: SessionManager,
    pub(crate) stats: Arc<RuntimeStats>,
    /// The sharded work-stealing dequeue (one shard per worker plus a
    /// priority lane for coalescer stashes); see [`crate::shard`].
    pub(crate) queue: JobQueue<Job>,
    pub(crate) chaos: ChaosState,
    /// Shared engines for packed executions, keyed by plan and occupancy.
    pub(crate) batch_engines: crate::batch::BatchEngines,
}

impl Inner {
    /// The supervised serving loop: catches any panic that escapes the
    /// per-request isolation in [`Inner::serve_with`], counts a respawn,
    /// and re-enters the loop — a panicked worker recycles instead of
    /// dying. Returns only when the queue is closed and drained
    /// (shutdown).
    fn supervise(self: Arc<Inner>, worker: usize) {
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.worker_loop(worker))) {
                Ok(()) => return, // queue closed: clean shutdown
                Err(_) => {
                    self.stats.record_respawn();
                    trace::mark_with("worker-respawn", Vec::new);
                }
            }
        }
    }

    fn worker_loop(&self, worker: usize) {
        // `pop` serves the priority lane (coalescer stashes) first, then
        // this worker's own shard, then steals from peers; it parks on
        // the queue's condvar when idle and returns `None` only once the
        // queue is closed *and* empty, so shutdown never drops a request
        // that was accepted.
        while let Some(job) = self.queue.pop(worker) {
            self.dispatch(worker, job);
        }
    }

    /// Routes one dequeued job: into the batching coalescer when enabled,
    /// otherwise straight to solo serving with its chaos decision.
    fn dispatch(&self, worker: usize, job: Job) {
        self.stats.record_dequeue();
        // Queue wait crosses threads (enqueued by the client, dequeued by
        // this worker), so it is a Complete event rather than a span.
        trace::complete_with("queue-wait", job.enqueued, || {
            vec![
                ("session", job.req.session.into()),
                ("req_id", job.req_id.into()),
            ]
        });
        if self.config.max_batch > 1 {
            crate::batch::serve_coalesced(self, worker, job);
        } else {
            let injection = self.chaos.next(self.config.chaos.as_ref());
            self.serve_with(job, injection);
        }
    }

    /// Serves one job solo: panic isolation, typed response, stats. The
    /// chaos decision is made by the caller so a batch member degraded to
    /// solo execution never draws a second injection.
    pub(crate) fn serve_with(&self, job: Job, injection: Option<ChaosInjection>) {
        // Every event this request produces from here on — including
        // backend exec-op spans deep inside the engine — is stamped with
        // its correlation id via the thread-local context.
        let _ctx = trace::push_context(job.req_id, 0);
        let mut span = trace::span_with("request", || {
            vec![
                ("session", job.req.session.into()),
                ("func", job.req.func.name.as_str().into()),
                ("scheme", job.req.scheme.to_string().into()),
            ]
        });
        if let Some(inj) = &injection {
            span.attr("chaos", inj.kind_str().into());
        }
        let t0 = Instant::now();
        // Panic isolation boundary: whatever happens inside `process` —
        // a compiler bug, an executor bug, an injected chaos panic — the
        // client gets exactly one typed terminal response.
        let (result, repanic) =
            match catch_unwind(AssertUnwindSafe(|| self.process_with(&job, injection))) {
                Ok(result) => (result, None),
                Err(payload) => {
                    self.stats.record_panic();
                    let message = panic_message(payload.as_ref());
                    trace::mark_with("panic-recovered", || {
                        vec![
                            ("session", job.req.session.into()),
                            ("message", message.as_str().into()),
                        ]
                    });
                    (Err(RuntimeError::Panicked { message }), Some(payload))
                }
            };
        let busy_us = t0.elapsed().as_secs_f64() * 1e6;
        let latency_us = job.enqueued.elapsed().as_secs_f64() * 1e6;
        self.stats.record_done(result.is_ok(), latency_us, busy_us);
        span.attr("ok", result.is_ok().into());
        span.attr("latency_us", latency_us.into());
        // Tail-based retention: close the span *first* so the retained
        // tree includes the request End event, then promote the trace out
        // of the ring if this request turned out interesting.
        drop(span);
        if let Some(rec) = &self.config.recorder {
            let reason = match &result {
                Err(RuntimeError::Panicked { .. }) => Some("panicked"),
                Err(RuntimeError::TimedOut { .. }) => Some("timed-out"),
                Err(RuntimeError::Exec(e)) if is_transient(e) => Some("guard-failed"),
                Err(_) => Some("failed"),
                Ok(_) => rec
                    .slow_threshold
                    .filter(|t| latency_us >= t.as_secs_f64() * 1e6)
                    .map(|_| "slow"),
            };
            if let Some(reason) = reason {
                recorder::retain(job.req_id, reason);
                if let (Err(RuntimeError::Panicked { message }), Some(diag)) =
                    (&result, &self.config.diag)
                {
                    // The black box is written at the catch site, before
                    // the panic resumes unwinding: the evidence must hit
                    // disk even if recycling the worker goes badly.
                    crate::diag::write_black_box(self, &diag.dir, job.req_id, message);
                }
            }
        }
        let result = result.map(|mut resp| {
            resp.latency_us = latency_us;
            resp
        });
        // A dropped receiver means the client gave up; nothing to do.
        let _ = job.reply.send(result);
        if let Some(payload) = repanic {
            // The response is out; now let the panic finish unwinding so
            // the supervisor recycles this worker. Any state the panic
            // touched is suspect — a fresh loop iteration is cheap.
            std::panic::resume_unwind(payload);
        }
    }

    /// One request's full solo lifecycle: plan resolution, chaos
    /// application, execution, and the retry loop. The injection is
    /// decided by the caller, once per request, not per attempt: a retry
    /// of an injected failure runs clean, so the soak test proves the
    /// retry path actually recovers.
    fn process_with(
        &self,
        job: &Job,
        injection: Option<ChaosInjection>,
    ) -> Result<Response, RuntimeError> {
        let req = &job.req;
        let key = plan_key(&req.func, req.scheme, &req.options);
        let cancel = req
            .deadline
            .map(|d| CancelToken::with_deadline(job.enqueued + d));
        let mut attempt: u32 = 0;
        loop {
            if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.stats.record_timeout();
                return Err(RuntimeError::TimedOut {
                    elapsed: job.enqueued.elapsed(),
                });
            }
            // The hit flag comes from inside the cache's own lock — a
            // separate pre-probe would race with concurrent publication
            // and could mislabel a single-flight waiter.
            let (artifact, cache_hit) =
                self.cache
                    .get_or_compile(&req.func, req.scheme, &req.options)?;
            let session = self.sessions.get(req.session)?;
            let injected = if attempt == 0 {
                injection.clone()
            } else {
                None
            };
            if let Some(ChaosInjection::Panic) = injected {
                panic!("chaos: injected worker panic");
            }
            if let Some(ChaosInjection::Latency(d)) = injected {
                std::thread::sleep(d);
            }
            let engine = match &injected {
                Some(ChaosInjection::Fault(fault)) => {
                    // A one-off sabotaged engine, never cached: the fault
                    // cannot leak into other requests, and the session
                    // seed keeps its keys identical to the real ones.
                    let mut opts = self.config.backend.clone();
                    opts.seed = session.seed();
                    opts.fault = Some(fault.clone());
                    Arc::new(
                        ExecEngine::new(artifact.prog.clone(), &opts)
                            .map_err(RuntimeError::Exec)?,
                    )
                }
                _ => session.engine(&artifact, &self.config.backend)?,
            };
            let run = if self.config.jobs_per_request > 1 {
                execute_parallel_with(
                    &engine,
                    &req.inputs,
                    self.config.jobs_per_request,
                    cancel.as_ref(),
                )
            } else {
                execute_sequential_with(&engine, &req.inputs, None, cancel.as_ref())
            };
            match run {
                Ok(run) => {
                    self.stats
                        .record_precision(req.session, engine.min_plan_margin_bits());
                    return Ok(Response {
                        run,
                        cache_hit,
                        plan_key: key,
                        latency_us: 0.0,
                        retries: attempt,
                        batch_occupancy: 1,
                        req_id: job.req_id,
                    });
                }
                Err(ExecError::Cancelled { .. }) => {
                    self.stats.record_timeout();
                    return Err(RuntimeError::TimedOut {
                        elapsed: job.enqueued.elapsed(),
                    });
                }
                Err(e) if attempt < req.max_retries && is_transient(&e) => {
                    attempt += 1;
                    self.stats.record_retry();
                    trace::mark_with("retry", || {
                        vec![
                            ("attempt", u64::from(attempt).into()),
                            ("plan_key", key.into()),
                            ("cause", e.to_string().into()),
                        ]
                    });
                    // The failure may stem from engine state; rebuild
                    // from the artifact on the next attempt.
                    session.invalidate_engine(key);
                    let exp = (attempt - 1).min(7);
                    let mut backoff = self
                        .config
                        .retry_backoff
                        .saturating_mul(1u32 << exp)
                        .min(RETRY_BACKOFF_CAP);
                    if let Some(deadline) = cancel.as_ref().and_then(CancelToken::deadline) {
                        // Never sleep past the deadline; the loop head
                        // turns the expiry into a typed timeout.
                        backoff = backoff.min(deadline.saturating_duration_since(Instant::now()));
                    }
                    std::thread::sleep(backoff);
                }
                Err(e) => return Err(RuntimeError::Exec(e)),
            }
        }
    }
}

/// A multi-tenant serving runtime (see the crate docs for the tour).
pub struct Runtime {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// `Some(previous ceiling)` when this runtime's managed core budget
    /// capped the process-wide kernel pool; restored on drop so the cap
    /// does not leak to later runtimes or non-runtime kernel callers.
    prev_kernel_ceiling: Option<Option<usize>>,
    /// Whether this runtime holds a [`RECORDER_USERS`] refcount (and
    /// must release it on drop).
    recorder_on: bool,
    /// The periodic diagnostics dumper, when [`RuntimeConfig::diag`] is
    /// set: its stop flag and thread handle.
    diag: Option<(Arc<crate::diag::DiagStop>, JoinHandle<()>)>,
}

impl Runtime {
    /// Starts a runtime with `config.workers` serving threads. A managed
    /// [`RuntimeConfig::core_budget`] first resolves the worker/kernel
    /// split: it overrides `config.workers` and
    /// `config.backend.kernel_jobs`, and caps the process-wide kernel
    /// pool at the cores left over after the workers are provisioned
    /// (the previous ceiling is restored when the runtime is dropped).
    pub fn new(mut config: RuntimeConfig) -> Runtime {
        let split = config
            .core_budget
            .resolve(config.workers, config.backend.kernel_jobs);
        let mut prev_kernel_ceiling = None;
        if let Some(total) = split.budget {
            config.workers = split.workers;
            config.backend.kernel_jobs = split.kernel_jobs;
            prev_kernel_ceiling = Some(hecate_math::kernel_pool::set_max_threads(
                total.saturating_sub(split.workers),
            ));
        }
        let workers_n = config.workers.max(1);
        let recorder_on = if let Some(rec) = &config.recorder {
            recorder::configure(&hecate_telemetry::RecorderConfig {
                ring_capacity: rec.ring_capacity,
                retained_capacity: rec.retained_capacity,
            });
            // Process-global enablement is refcounted across runtimes:
            // only the 0 -> 1 transition flips the switch.
            if RECORDER_USERS.fetch_add(1, Ordering::SeqCst) == 0 {
                recorder::set_enabled(true);
            }
            true
        } else {
            false
        };
        let stats = Arc::new(RuntimeStats::new());
        stats.record_core_split(split.kernel_jobs, split.budget.unwrap_or(0));
        let inner = Arc::new(Inner {
            cache: PlanCache::with_capacity(stats.clone(), config.plan_cache_capacity),
            sessions: SessionManager::new(config.backend.seed),
            stats,
            queue: JobQueue::new(workers_n, config.queue_capacity.max(1)),
            chaos: ChaosState::default(),
            batch_engines: crate::batch::BatchEngines::default(),
            config,
        });
        let workers = (0..workers_n)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("hecate-worker-{i}"))
                    .spawn(move || inner.supervise(i))
                    .expect("worker thread spawns")
            })
            .collect();
        let diag = inner.config.diag.clone().map(|opts| {
            let stop = Arc::new(crate::diag::DiagStop::default());
            let dump_inner = inner.clone();
            let dump_stop = stop.clone();
            let handle = std::thread::Builder::new()
                .name("hecate-diag".to_string())
                .spawn(move || crate::diag::dump_loop(&dump_inner, &opts, &dump_stop))
                .expect("diag thread spawns");
            (stop, handle)
        });
        Runtime {
            inner,
            workers,
            prev_kernel_ceiling,
            recorder_on,
            diag,
        }
    }

    /// An on-demand [`crate::diag::DiagnosticsReport`]: queue depths,
    /// kernel-pool occupancy, plan-cache contents, per-session noise
    /// margins, retained flight-recorder traces, and SLO burn. The same
    /// report the `hecate-diag` thread dumps periodically.
    pub fn diagnose(&self) -> crate::diag::DiagnosticsReport {
        crate::diag::collect(&self.inner)
    }

    /// The worker/kernel split this runtime resolved at startup.
    pub fn core_split(&self) -> CoreSplit {
        self.inner.config.core_budget.resolve(
            self.inner.config.workers,
            self.inner.config.backend.kernel_jobs,
        )
    }

    /// Opens a tenant session and returns its id.
    pub fn open_session(&self) -> SessionId {
        self.inner.sessions.open().id()
    }

    /// Closes a tenant session, dropping its keys.
    pub fn close_session(&self, id: SessionId) {
        self.inner.sessions.close(id);
    }

    /// Enqueues a request; the returned receiver yields the response when
    /// a worker finishes it.
    ///
    /// # Errors
    /// Rejects without enqueueing when admission control sheds the
    /// request ([`RuntimeError::Shed`], only with
    /// [`RuntimeConfig::admission_budget_us`] set) or the bounded queue
    /// is full ([`RuntimeError::QueueFull`]). Rejected requests count in
    /// the `shed` statistic, not `failed`.
    ///
    pub fn submit(
        &self,
        req: Request,
    ) -> Result<mpsc::Receiver<Result<Response, RuntimeError>>, RuntimeError> {
        let inner = &self.inner;
        // The correlation id is minted at admission — before shedding —
        // so even a rejected request has an id its trace can hang off.
        let req_id = NEXT_REQ_ID.fetch_add(1, Ordering::Relaxed);
        if let Some(budget_us) = inner.config.admission_budget_us {
            // Price only plans already cached: an unknown plan is always
            // admitted (running it is how its cost becomes known).
            let key = plan_key(&req.func, req.scheme, &req.options);
            if let Some(artifact) = inner.cache.get(key) {
                let estimated_us = artifact.prog.stats.estimated_latency_us;
                let queue_depth = inner.stats.queue_depth();
                if estimated_us * (queue_depth + 1) as f64 > budget_us {
                    inner.stats.record_shed();
                    let _ctx = trace::push_context(req_id, 0);
                    trace::mark_with("shed", || {
                        vec![
                            ("plan_key", key.into()),
                            ("estimated_us", estimated_us.into()),
                            ("queue_depth", queue_depth.into()),
                        ]
                    });
                    if inner.config.recorder.is_some() {
                        recorder::retain(req_id, "shed");
                    }
                    return Err(RuntimeError::Shed {
                        estimated_us,
                        queue_depth,
                        budget_us,
                    });
                }
            }
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            req,
            reply: tx,
            enqueued: Instant::now(),
            req_id,
        };
        match inner.queue.push(job) {
            Ok(()) => {
                inner.stats.record_enqueue();
                Ok(rx)
            }
            Err(PushError::Full(_)) => {
                inner.stats.record_shed();
                Err(RuntimeError::QueueFull {
                    capacity: inner.config.queue_capacity.max(1),
                })
            }
            Err(PushError::Closed(_)) => Err(RuntimeError::Shutdown),
        }
    }

    /// Runs a batch of requests across the worker pool, returning the
    /// responses in submission order. Requests rejected at admission
    /// (shed, or overflowing the bounded queue) appear as their typed
    /// errors in the corresponding positions.
    pub fn run_batch(&self, reqs: Vec<Request>) -> Vec<Result<Response, RuntimeError>> {
        let receivers: Vec<_> = reqs.into_iter().map(|r| self.submit(r)).collect();
        receivers
            .into_iter()
            .map(|rx| match rx {
                Ok(rx) => rx.recv().unwrap_or(Err(RuntimeError::Shutdown)),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// A snapshot of the runtime's counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(self.inner.config.workers)
    }

    /// Number of compiled plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.inner.cache.len()
    }

    /// The runtime's counters rendered in Prometheus text format.
    pub fn metrics_prometheus(&self) -> String {
        self.inner.stats.prometheus()
    }

    /// Drains the queue and joins the worker threads.
    pub fn shutdown(mut self) {
        self.inner.queue.close(); // workers drain what remains, then exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some((stop, handle)) = self.diag.take() {
            // The dumper writes one final snapshot on the way out, so a
            // clean shutdown still leaves a last-known-good report.
            stop.raise();
            let _ = handle.join();
        }
        if self.recorder_on && RECORDER_USERS.fetch_sub(1, Ordering::SeqCst) == 1 {
            recorder::set_enabled(false);
        }
        // A managed core budget capped the process-global kernel pool
        // for this runtime's lifetime only; hand the previous ceiling
        // back so unmanaged runtimes and non-runtime kernel callers do
        // not inherit a stale (possibly zero) cap.
        if let Some(prev) = self.prev_kernel_ceiling.take() {
            hecate_math::kernel_pool::restore_max_threads(prev);
        }
    }
}
