//! Cross-request slot batching: serving many queued requests from one
//! packed ciphertext.
//!
//! When [`crate::RuntimeConfig::max_batch`] > 1, a worker that dequeues a
//! request does not execute it immediately: it keeps draining the queue
//! (up to [`crate::RuntimeConfig::batch_window`]) for *compatible*
//! requests — same plan key, i.e. identical function, scheme, and
//! compile options — and coalesces them into one slot-batched execution.
//! Each member's inputs are packed into a disjoint slot block of a shared
//! ciphertext (`hecate_backend::exec::execute_batched_with`), the circuit
//! runs once, and the results are demultiplexed back into per-member
//! responses. Incompatible requests dequeued along the way are pushed
//! onto the queue's priority lane, where *any* idle worker picks them
//! up immediately — they never wait for the coalescer that set them
//! aside. The wait for compatible members is condvar-bounded
//! ([`crate::shard::JobQueue::pop_deadline`]): a member arriving midway
//! through the window wakes the coalescer at once, so small batches
//! close as soon as their members exist instead of being quantized by a
//! polling interval.
//!
//! # Failure domains
//!
//! Batching never makes a request less reliable than solo serving:
//!
//! - Chaos is decided once per collected member; members drawing an
//!   injection run solo so the injection hits exactly one request.
//! - Members whose deadline already expired fail fast solo with a typed
//!   timeout instead of holding the batch.
//! - An infeasible occupancy (the plan's slot footprint does not fit the
//!   block) shrinks the batch by powers of two, down to solo serving.
//! - Any shared-run failure — a guard trip, a cancellation, even a panic
//!   — degrades every member to an independent solo run with its own
//!   retry budget. One poisoned member cannot fail its batch-mates.
//!
//! # Key honesty
//!
//! A shared ciphertext is necessarily encrypted under one key, so a
//! batched run uses a per-(plan, occupancy) engine seeded from the
//! runtime's base seed rather than any single session's keys. This is
//! not a weakening of the trust model: the runtime's [`SessionManager`]
//! already holds every session's key material server-side (see its
//! module docs — isolation is against mix-ups, not adversaries), and
//! batching is opt-in per deployment.
//!
//! [`SessionManager`]: crate::session::SessionManager

use crate::cache::plan_key;
use crate::chaos::ChaosInjection;
use crate::pool::{Inner, Job, Response};
use hecate_backend::exec::{
    execute_batched_with, BackendOptions, CancelToken, EncryptedRun, ExecEngine, ExecError,
};
use hecate_compiler::CompiledProgram;
use hecate_ir::hash::Fnv1a;
use hecate_telemetry::{recorder, trace};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide batch-id mint (ids start at 1; `0` means "no batch" in
/// [`trace::push_context`]). A `batch_id` attr links the shared
/// `batch-execute` span with each member's `batch-member` mark, so a
/// retained trace for one request pulls in the batch work it shared.
static NEXT_BATCH_ID: AtomicU64 = AtomicU64::new(1);

/// Deterministic seed for the shared engine of one (plan, occupancy)
/// batch family: an FNV-1a mix, so batched runs are as reproducible as
/// solo ones.
fn batch_seed(base: u64, plan: u64, occupancy: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&base.to_le_bytes());
    h.write(&plan.to_le_bytes());
    h.write(&(occupancy as u64).to_le_bytes());
    h.finish()
}

/// Shared packed engines, keyed by `(plan key, occupancy)`.
///
/// A `None` value is a tombstone: that occupancy was tried and the plan's
/// slot footprint does not fit its blocks, so future batches skip the
/// keygen attempt and shrink immediately.
#[derive(Default)]
pub(crate) struct BatchEngines {
    engines: Mutex<EngineMap>,
}

/// `None` marks an occupancy proven infeasible for the plan.
type EngineMap = HashMap<(u64, usize), Option<Arc<ExecEngine>>>;

impl BatchEngines {
    fn lock(&self) -> std::sync::MutexGuard<'_, EngineMap> {
        self.engines.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The shared engine for `plan` at `occupancy`, building (keygen)
    /// on first use. `Ok(None)` means this occupancy is infeasible for
    /// the plan — recorded as a tombstone so the answer is instant next
    /// time.
    ///
    /// # Errors
    /// Propagates engine construction failures other than infeasibility
    /// (those are not cached; a later attempt may succeed).
    fn get(
        &self,
        plan: u64,
        occupancy: usize,
        prog: &Arc<CompiledProgram>,
        backend: &BackendOptions,
    ) -> Result<Option<Arc<ExecEngine>>, ExecError> {
        if let Some(cached) = self.lock().get(&(plan, occupancy)) {
            return Ok(cached.clone());
        }
        // Build outside the lock: keygen is expensive and must not
        // serialize other batches. A racing builder wastes work, never
        // corrupts (identical seeds give identical keys).
        let mut opts = backend.clone();
        opts.seed = batch_seed(backend.seed, plan, occupancy);
        opts.batch_occupancy = occupancy;
        match ExecEngine::new(prog.clone(), &opts) {
            Ok(engine) => {
                let engine = Arc::new(engine);
                Ok(self
                    .lock()
                    .entry((plan, occupancy))
                    .or_insert(Some(engine))
                    .clone())
            }
            Err(ExecError::BatchUnsupported { .. }) => {
                self.lock().insert((plan, occupancy), None);
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Drops the cached engine for `(plan, occupancy)`; the next batch
    /// rebuilds from scratch. Called after a shared-run failure, since
    /// the failure may stem from engine state.
    fn invalidate(&self, plan: u64, occupancy: usize) {
        self.lock().remove(&(plan, occupancy));
    }
}

/// Largest power of two ≤ `n` (0 for 0).
fn floor_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Serves each job solo, in order, deferring any panic until every job
/// has been served. [`Inner::serve_with`] re-raises a caught panic after
/// replying (so the supervisor recycles the worker); without the
/// deferral, one panicking member would unwind through this frame and
/// drop its batch-mates' reply channels unanswered.
fn serve_each_solo(inner: &Inner, jobs: Vec<(Job, Option<ChaosInjection>)>) {
    let mut pending_panic = None;
    for (job, injection) in jobs {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| inner.serve_with(job, injection))) {
            pending_panic.get_or_insert(payload);
        }
    }
    if let Some(payload) = pending_panic {
        std::panic::resume_unwind(payload);
    }
}

/// The batching dequeue path: coalesces compatible queued requests with
/// `first`, runs them as one packed execution, and demultiplexes the
/// responses. See the module docs for the collection and degradation
/// rules.
pub(crate) fn serve_coalesced(inner: &Inner, worker: usize, first: Job) {
    let key = plan_key(&first.req.func, first.req.scheme, &first.req.options);
    let max = inner.config.max_batch.max(1);
    let window_end = Instant::now() + inner.config.batch_window;
    let mut members = vec![first];
    // `pop_deadline` parks on the queue's condvar until `window_end`, so
    // a compatible member arriving mid-window joins immediately (no
    // polling quantization) and already-queued jobs drain instantly even
    // with a zero window. Its filter takes same-key jobs from the
    // priority lane too (another coalescer may have stashed a job this
    // batch wants) while never re-popping an incompatible job this
    // worker just set aside.
    while members.len() < max {
        let same_key = |job: &Job| plan_key(&job.req.func, job.req.scheme, &job.req.options) == key;
        match inner.queue.pop_deadline(worker, window_end, same_key) {
            Some(job) => {
                if plan_key(&job.req.func, job.req.scheme, &job.req.options) == key {
                    // The member leaves the queue now; its wait ends here.
                    inner.stats.record_dequeue();
                    trace::complete_with("queue-wait", job.enqueued, || {
                        vec![
                            ("session", job.req.session.into()),
                            ("req_id", job.req_id.into()),
                        ]
                    });
                    members.push(job);
                } else {
                    // Still logically queued (no dequeue recorded): the
                    // priority lane hands it to any idle worker at once.
                    inner.queue.push_priority(job);
                }
            }
            None => break, // window expired (or queue closed)
        }
    }

    // Chaos and expired deadlines are decided per member, now: injected
    // members run solo so the injection hits exactly one request, and
    // already-late members must not hold the batch.
    let mut fallback: Vec<(Job, Option<ChaosInjection>)> = Vec::new();
    let mut clean: Vec<Job> = Vec::new();
    for job in members {
        let injection = inner.chaos.next(inner.config.chaos.as_ref());
        let expired = job
            .req
            .deadline
            .is_some_and(|d| job.enqueued.elapsed() >= d);
        // Unknown (closed) sessions degrade too: the solo path surfaces
        // the typed error the client expects.
        let known = inner.sessions.get(job.req.session).is_ok();
        if injection.is_some() || expired || !known {
            fallback.push((job, injection));
        } else {
            clean.push(job);
        }
    }

    let occupancy = floor_pow2(clean.len().min(max));
    if occupancy >= 2 {
        let batched = run_shared(inner, key, clean, occupancy);
        match batched {
            Ok(leftover) => fallback.extend(leftover.into_iter().map(|j| (j, None))),
            Err(degraded) => fallback.extend(degraded.into_iter().map(|j| (j, None))),
        }
    } else {
        fallback.extend(clean.into_iter().map(|j| (j, None)));
    }
    serve_each_solo(inner, fallback);
}

/// Attempts the shared packed execution for up to `occupancy` of the
/// `clean` members. On success, replies to every batch member and
/// returns the members beyond the occupancy (`Ok`); on any failure —
/// plan resolution, engine build, execution error, or panic — returns
/// every member untouched for solo degradation (`Err`).
fn run_shared(
    inner: &Inner,
    key: u64,
    mut clean: Vec<Job>,
    mut occupancy: usize,
) -> Result<Vec<Job>, Vec<Job>> {
    let (artifact, cache_hit) = {
        let req = &clean[0].req;
        match inner
            .cache
            .get_or_compile(&req.func, req.scheme, &req.options)
        {
            Ok(x) => x,
            // Let each member surface its own typed compile error.
            Err(_) => return Err(clean),
        }
    };
    // Shrink until the plan's slot footprint fits the blocks.
    let engine = loop {
        if occupancy < 2 {
            return Err(clean);
        }
        match inner
            .batch_engines
            .get(key, occupancy, &artifact.prog, &inner.config.backend)
        {
            Ok(Some(engine)) => break engine,
            Ok(None) => occupancy /= 2,
            Err(_) => return Err(clean),
        }
    };

    let extras = clean.split_off(occupancy);
    let batch = clean;
    // The shared execution belongs to every member at once, so its span
    // carries a batch id (not any single req_id); each member announces
    // its membership with a mark, and retention by req_id follows the
    // batch_id link to pull the shared span into the member's trace.
    let batch_id = NEXT_BATCH_ID.fetch_add(1, Ordering::Relaxed);
    let _ctx = trace::push_context(0, batch_id);
    for job in &batch {
        trace::mark_with("batch-member", || {
            vec![
                ("req_id", job.req_id.into()),
                ("session", job.req.session.into()),
            ]
        });
    }
    let mut span = trace::span_with("batch-execute", || {
        vec![
            ("plan_key", key.into()),
            ("occupancy", (occupancy as u64).into()),
        ]
    });
    // The shared run honors the most urgent member's deadline; members
    // degraded by its cancellation re-run solo where each deadline is
    // enforced individually.
    let cancel = batch
        .iter()
        .filter_map(|j| j.req.deadline.map(|d| j.enqueued + d))
        .min()
        .map(CancelToken::with_deadline);
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let inputs: Vec<&HashMap<String, Vec<f64>>> = batch.iter().map(|j| &j.req.inputs).collect();
        execute_batched_with(&engine, &inputs, None, cancel.as_ref())
    }));
    let run = match result {
        Ok(Ok(run)) => run,
        Ok(Err(e)) => {
            span.attr("ok", false.into());
            trace::mark_with("batch-degraded", || {
                vec![
                    ("plan_key", key.into()),
                    ("occupancy", (occupancy as u64).into()),
                    ("cause", e.to_string().into()),
                ]
            });
            if crate::pool::is_transient(&e) {
                inner.batch_engines.invalidate(key, occupancy);
            }
            let mut all = batch;
            all.extend(extras);
            return Err(all);
        }
        Err(_payload) => {
            // The panic is contained here, not re-raised: no client saw
            // it (every member retries solo), so it is a degradation, not
            // a `Panicked` response.
            span.attr("ok", false.into());
            trace::mark_with("batch-degraded", || {
                vec![
                    ("plan_key", key.into()),
                    ("occupancy", (occupancy as u64).into()),
                    ("cause", "panic".into()),
                ]
            });
            inner.batch_engines.invalidate(key, occupancy);
            let mut all = batch;
            all.extend(extras);
            return Err(all);
        }
    };
    span.attr("ok", true.into());
    span.attr("total_us", run.total_us.into());
    // Close the shared span before any member's trace can be retained:
    // a retained member trace must include the batch End event.
    drop(span);

    inner.stats.record_batch(occupancy);
    let slow_us = inner
        .config
        .recorder
        .as_ref()
        .and_then(|rec| rec.slow_threshold)
        .map(|t| t.as_secs_f64() * 1e6);
    // Worker busy time is shared: each member is billed its fraction so
    // utilization stays truthful.
    let busy_share_us = t0.elapsed().as_secs_f64() * 1e6 / occupancy as f64;
    for (job, outputs) in batch.into_iter().zip(run.tenant_outputs) {
        inner
            .stats
            .record_precision(job.req.session, engine.min_plan_margin_bits());
        let latency_us = job.enqueued.elapsed().as_secs_f64() * 1e6;
        inner.stats.record_done(true, latency_us, busy_share_us);
        if slow_us.is_some_and(|t| latency_us >= t) {
            // Tail retention for a slow batched member: the batch_id link
            // pulls the shared batch-execute span into its trace.
            recorder::retain_with(job.req_id, batch_id, "slow");
        }
        let response = Response {
            run: EncryptedRun {
                outputs,
                total_us: run.total_us,
                op_us: run.op_us.clone(),
                peak_live: run.peak_live,
                peak_bytes: run.peak_bytes,
                degree: run.degree,
                chain_len: run.chain_len,
                min_margin_bits: run.min_margin_bits,
            },
            cache_hit,
            plan_key: key,
            latency_us,
            retries: 0,
            batch_occupancy: occupancy,
            req_id: job.req_id,
        };
        // A dropped receiver means the client gave up; nothing to do.
        let _ = job.reply.send(Ok(response));
    }
    Ok(extras)
}
