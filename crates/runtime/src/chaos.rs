//! Chaos injection for pressure-testing the serving layer.
//!
//! A [`ChaosOptions`] attached to [`crate::RuntimeConfig`] makes the
//! worker pool sabotage every Nth served request *before* it executes:
//! a backend [`FaultPlan`] (exercising guards and the retry path),
//! synthetic added latency (exercising deadlines and queue backpressure),
//! or an outright worker panic (exercising panic isolation and
//! poison-recovery). The injection kinds rotate deterministically through
//! [`ChaosOptions::mix`], so a chaos run is reproducible: the same
//! request sequence sees the same injections.
//!
//! Chaos targets only a request's *first* attempt. A retry runs clean —
//! deliberately, so the suite proves the retry path actually recovers
//! from a transient fault rather than re-tripping it forever.
//!
//! This is the machinery behind `hecatec --serve --chaos N` and the
//! `chaos_soak` test: ≥500 requests with ~10% injected faults must
//! complete with zero hangs and exactly one terminal response each.

use hecate_backend::FaultPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Inject [`ChaosOptions::fault`] into the request's backend
    /// execution (a guard catches it; the request may then retry).
    Fault,
    /// Sleep [`ChaosOptions::latency`] before executing (drives requests
    /// past their deadlines and backs the queue up).
    Latency,
    /// Panic inside the worker while serving the request (must be
    /// isolated: a typed `Panicked` response, never a wedged pool).
    Panic,
}

impl ChaosKind {
    /// Parses a kind name as used by `hecatec --chaos-kind`.
    ///
    /// # Errors
    /// Returns a message naming the accepted kinds.
    pub fn parse(s: &str) -> Result<ChaosKind, String> {
        match s {
            "fault" => Ok(ChaosKind::Fault),
            "latency" => Ok(ChaosKind::Latency),
            "panic" => Ok(ChaosKind::Panic),
            other => Err(format!(
                "bad chaos kind '{other}' (want fault|latency|panic|mix)"
            )),
        }
    }
}

/// Chaos-injection policy for one [`crate::Runtime`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Inject into every Nth request (1 = every request, 10 = 10% of
    /// requests). `0` disables injection entirely.
    pub every_nth: u64,
    /// The injection kinds cycled across hits, in order. Empty behaves
    /// like disabled.
    pub mix: Vec<ChaosKind>,
    /// The fault injected on [`ChaosKind::Fault`] hits. The default —
    /// `perturb-scale@0:1.0` — is caught by the always-on metadata guard
    /// at the first op, making it a fast, reliably *transient* failure.
    pub fault: FaultPlan,
    /// Latency injected on [`ChaosKind::Latency`] hits.
    pub latency: Duration,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            every_nth: 10,
            mix: vec![ChaosKind::Fault, ChaosKind::Latency, ChaosKind::Panic],
            fault: FaultPlan::PerturbScale {
                at: 0,
                delta_bits: 1.0,
            },
            latency: Duration::from_millis(5),
        }
    }
}

impl ChaosOptions {
    /// A policy injecting only `kind` into every Nth request, with
    /// default fault/latency payloads.
    pub fn only(kind: ChaosKind, every_nth: u64) -> Self {
        ChaosOptions {
            every_nth,
            mix: vec![kind],
            ..ChaosOptions::default()
        }
    }
}

/// The pool-side injector: owns the request sequence counter that makes
/// chaos deterministic under concurrency (the *counter* is race-free;
/// which worker serves which sequence number is not, and does not need
/// to be).
#[derive(Debug, Default)]
pub(crate) struct ChaosState {
    seq: AtomicU64,
}

/// What the pool should do to the current request, decided by
/// [`ChaosState::next`].
#[derive(Debug, Clone)]
pub(crate) enum ChaosInjection {
    Fault(FaultPlan),
    Latency(Duration),
    Panic,
}

impl ChaosInjection {
    /// The injection's kind name, stamped as the `chaos` attr on the
    /// victim request's span so retained traces are self-explaining.
    pub(crate) fn kind_str(&self) -> &'static str {
        match self {
            ChaosInjection::Fault(_) => "fault",
            ChaosInjection::Latency(_) => "latency",
            ChaosInjection::Panic => "panic",
        }
    }
}

impl ChaosState {
    /// Decides the injection (if any) for the next served request.
    pub(crate) fn next(&self, opts: Option<&ChaosOptions>) -> Option<ChaosInjection> {
        let opts = opts?;
        if opts.every_nth == 0 || opts.mix.is_empty() {
            return None;
        }
        let n = self.seq.fetch_add(1, Ordering::SeqCst);
        if !n.is_multiple_of(opts.every_nth) {
            return None;
        }
        let hit = (n / opts.every_nth) as usize;
        Some(match opts.mix[hit % opts.mix.len()] {
            ChaosKind::Fault => ChaosInjection::Fault(opts.fault.clone()),
            ChaosKind::Latency => ChaosInjection::Latency(opts.latency),
            ChaosKind::Panic => ChaosInjection::Panic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_is_deterministic() {
        let state = ChaosState::default();
        let opts = ChaosOptions {
            every_nth: 2,
            ..ChaosOptions::default()
        };
        let picks: Vec<_> = (0..8).map(|_| state.next(Some(&opts))).collect();
        // Hits on 0, 2, 4, 6 rotate fault -> latency -> panic -> fault.
        assert!(matches!(picks[0], Some(ChaosInjection::Fault(_))));
        assert!(picks[1].is_none());
        assert!(matches!(picks[2], Some(ChaosInjection::Latency(_))));
        assert!(picks[3].is_none());
        assert!(matches!(picks[4], Some(ChaosInjection::Panic)));
        assert!(matches!(picks[6], Some(ChaosInjection::Fault(_))));
    }

    #[test]
    fn zero_and_empty_disable_injection() {
        let state = ChaosState::default();
        assert!(state.next(None).is_none());
        let off = ChaosOptions {
            every_nth: 0,
            ..ChaosOptions::default()
        };
        assert!(state.next(Some(&off)).is_none());
        let empty = ChaosOptions {
            mix: Vec::new(),
            ..ChaosOptions::default()
        };
        assert!(state.next(Some(&empty)).is_none());
    }

    #[test]
    fn only_constructor_pins_the_kind() {
        let state = ChaosState::default();
        let opts = ChaosOptions::only(ChaosKind::Panic, 1);
        for _ in 0..4 {
            assert!(matches!(
                state.next(Some(&opts)),
                Some(ChaosInjection::Panic)
            ));
        }
    }
}
