//! Diagnostics snapshots: the runtime's introspection plane.
//!
//! [`DiagnosticsReport`] is one coherent, JSON-serializable answer to
//! "what is the runtime doing right now": per-shard queue depths, the
//! kernel pool's thread ceiling and claimed-slot vs inline-fallback
//! split, the plan cache's contents with hit/eviction counters, each
//! session's worst observed noise margin, the flight recorder's
//! retained-trace index, and SLO burn (the sliding p99 against the
//! configured latency target).
//!
//! Three consumers share the report:
//!
//! - [`crate::Runtime::diagnose`] builds one on demand (tests, admin
//!   endpoints).
//! - With [`crate::pool::DiagOptions`] set, a `hecate-diag` thread dumps
//!   one to `diag-NNNNNN.json` every interval, plus a final dump at
//!   shutdown — `hecatec --serve --diag-out DIR` wires this up.
//! - A request panic writes a **black box**: `blackbox-req{id}.json`
//!   holding the panic message, the request's full retained span tree
//!   (the flight recorder promotes it before the dump), and a complete
//!   diagnostics report. It is written at the catch site, before the
//!   panic resumes unwinding into the supervisor, so the evidence is on
//!   disk even if worker recycling goes wrong.
//!
//! The JSON is hand-rolled, single-line, and format-pinned by tests
//! (like [`crate::stats::StatsSnapshot::to_json`]): scrapers may parse
//! it, so shape changes must be deliberate. Plan keys render as 16-digit
//! hex strings — they are 64-bit hashes, and JSON numbers cannot carry
//! them faithfully.

use crate::cache::PlanCacheEntry;
use crate::pool::{DiagOptions, Inner};
use crate::stats::StatsSnapshot;
use hecate_telemetry::{export, recorder, RetainedSummary};
use std::path::Path;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Kernel-pool occupancy: the process-wide thread ceiling and how limb
/// stripes have been splitting between pooled workers and inline
/// execution (see `hecate_math::kernel_pool`).
#[derive(Debug, Clone)]
pub struct KernelDiag {
    /// The pool's current thread ceiling.
    pub max_threads: usize,
    /// Worker threads actually spawned so far (grows on demand, never
    /// shrinks).
    pub spawned_threads: usize,
    /// Stripes executed on claimed pool workers, cumulative.
    pub pool_stripes: u64,
    /// Stripes executed inline on the submitting thread (no slot free,
    /// or the stripe beyond the last worker), cumulative.
    pub inline_stripes: u64,
    /// Per-request kernel jobs the runtime's backend is configured for.
    pub kernel_jobs: usize,
    /// Total cores a managed [`crate::CoreBudget`] provisioned
    /// (0 = unmanaged).
    pub budget_cores: usize,
}

impl KernelDiag {
    /// Share of all stripes that fell back to inline execution —
    /// the pool-starvation signal. 0 when nothing has run.
    pub fn inline_share(&self) -> f64 {
        let total = self.pool_stripes + self.inline_stripes;
        if total == 0 {
            0.0
        } else {
            self.inline_stripes as f64 / total as f64
        }
    }
}

/// Plan-cache contents (hit/miss/eviction counters live in
/// [`StatsSnapshot`]).
#[derive(Debug, Clone)]
pub struct PlanCacheDiag {
    /// The cache's artifact bound.
    pub capacity: usize,
    /// Every cached plan, sorted by key.
    pub entries: Vec<PlanCacheEntry>,
}

/// One session's worst observed noise margin.
#[derive(Debug, Clone)]
pub struct SessionMargin {
    /// The tenant session id.
    pub session: u64,
    /// Minimum plan margin (bits) across everything the session ran.
    pub min_margin_bits: f64,
}

/// Flight-recorder occupancy and the retained-trace index.
#[derive(Debug, Clone)]
pub struct RecorderDiag {
    /// Whether the process-global recorder is currently on.
    pub enabled: bool,
    /// Configured per-thread ring capacity, events.
    pub ring_capacity: usize,
    /// Events currently held across all rings.
    pub ring_events: usize,
    /// Events overwritten (decayed) since process start.
    pub overwritten: u64,
    /// The retained traces, oldest first (req_id, reason, size).
    pub retained: Vec<RetainedSummary>,
}

/// Latency objective vs the sliding-window quantiles.
#[derive(Debug, Clone)]
pub struct SloDiag {
    /// The configured target, microseconds (`None` = no objective).
    pub target_us: Option<f64>,
    /// Completed requests currently in the sliding window.
    pub window: usize,
    /// Median latency over the window, microseconds.
    pub p50_us: Option<f64>,
    /// 99th-percentile latency over the window, microseconds.
    pub p99_us: Option<f64>,
    /// `p99 / target` — above 1.0 the objective is burning. `None`
    /// without a target or an empty window.
    pub burn: Option<f64>,
}

/// One coherent snapshot of the runtime's internals; see the module
/// docs for who builds and consumes it.
#[derive(Debug, Clone)]
pub struct DiagnosticsReport {
    /// Wall-clock nanoseconds since the Unix epoch when the report was
    /// collected.
    pub generated_ns: u64,
    /// Request-worker threads.
    pub workers: usize,
    /// Queued jobs per worker shard, in shard order.
    pub shard_depths: Vec<usize>,
    /// Jobs in the priority lane (coalescer stashes).
    pub priority_depth: usize,
    /// The queue's total bound.
    pub queue_capacity: usize,
    /// Kernel-pool occupancy.
    pub kernel: KernelDiag,
    /// Plan-cache contents.
    pub plan_cache: PlanCacheDiag,
    /// Per-session minimum noise margins, sorted by session id.
    pub sessions: Vec<SessionMargin>,
    /// Flight-recorder state.
    pub recorder: RecorderDiag,
    /// SLO burn.
    pub slo: SloDiag,
    /// The runtime's counter snapshot (same shape as
    /// [`crate::Runtime::stats`]).
    pub stats: StatsSnapshot,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_f64(v: Option<f64>, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:.precision$}"),
        None => "null".to_string(),
    }
}

impl DiagnosticsReport {
    /// The report as one line of JSON. The shape is pinned by the
    /// `diagnostics_json_format_is_pinned` test — change both together.
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.shard_depths.iter().map(usize::to_string).collect();
        let entries: Vec<String> = self
            .plan_cache
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"key\":\"{:016x}\",\"ops\":{},\"estimated_latency_us\":{:.1},\"last_used_tick\":{}}}",
                    e.key, e.ops, e.estimated_latency_us, e.last_used_tick
                )
            })
            .collect();
        let sessions: Vec<String> = self
            .sessions
            .iter()
            .map(|s| {
                format!(
                    "{{\"session\":{},\"min_margin_bits\":{:.3}}}",
                    s.session, s.min_margin_bits
                )
            })
            .collect();
        let retained: Vec<String> = self
            .recorder
            .retained
            .iter()
            .map(|r| {
                format!(
                    "{{\"req_id\":{},\"reason\":\"{}\",\"events\":{}}}",
                    r.req_id,
                    json_escape(r.reason),
                    r.events
                )
            })
            .collect();
        format!(
            "{{\"generated_ns\":{},\"workers\":{},\
             \"queue\":{{\"shards\":[{}],\"priority\":{},\"capacity\":{}}},\
             \"kernel\":{{\"max_threads\":{},\"spawned_threads\":{},\"pool_stripes\":{},\"inline_stripes\":{},\"inline_share\":{:.4},\"kernel_jobs\":{},\"budget_cores\":{}}},\
             \"plan_cache\":{{\"capacity\":{},\"entries\":[{}]}},\
             \"sessions\":[{}],\
             \"recorder\":{{\"enabled\":{},\"ring_capacity\":{},\"ring_events\":{},\"overwritten\":{},\"retained\":[{}]}},\
             \"slo\":{{\"target_us\":{},\"window\":{},\"p50_us\":{},\"p99_us\":{},\"burn\":{}}},\
             \"stats\":{}}}",
            self.generated_ns,
            self.workers,
            shards.join(","),
            self.priority_depth,
            self.queue_capacity,
            self.kernel.max_threads,
            self.kernel.spawned_threads,
            self.kernel.pool_stripes,
            self.kernel.inline_stripes,
            self.kernel.inline_share(),
            self.kernel.kernel_jobs,
            self.kernel.budget_cores,
            self.plan_cache.capacity,
            entries.join(","),
            sessions.join(","),
            self.recorder.enabled,
            self.recorder.ring_capacity,
            self.recorder.ring_events,
            self.recorder.overwritten,
            retained.join(","),
            opt_f64(self.slo.target_us, 1),
            self.slo.window,
            opt_f64(self.slo.p50_us, 1),
            opt_f64(self.slo.p99_us, 1),
            opt_f64(self.slo.burn, 4),
            self.stats.to_json(),
        )
    }
}

fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Collects a [`DiagnosticsReport`] from a live runtime's internals.
pub(crate) fn collect(inner: &Inner) -> DiagnosticsReport {
    let (shard_depths, priority_depth) = inner.queue.depths();
    let stripes = hecate_math::kernel_pool::stripe_counts();
    let stats = inner.stats.snapshot(inner.config.workers);
    let mut sessions: Vec<SessionMargin> = inner
        .stats
        .session_margins()
        .into_iter()
        .map(|(session, min_margin_bits)| SessionMargin {
            session,
            min_margin_bits,
        })
        .collect();
    sessions.sort_by_key(|s| s.session);
    let p50_us = inner.stats.recent_latency_quantile(0.50);
    let p99_us = inner.stats.recent_latency_quantile(0.99);
    let target_us = inner.config.slo_target_us;
    DiagnosticsReport {
        generated_ns: unix_now_ns(),
        workers: inner.config.workers,
        shard_depths,
        priority_depth,
        queue_capacity: inner.config.queue_capacity.max(1),
        kernel: KernelDiag {
            max_threads: hecate_math::kernel_pool::max_threads(),
            spawned_threads: hecate_math::kernel_pool::spawned_threads(),
            pool_stripes: stripes.pool,
            inline_stripes: stripes.inline,
            kernel_jobs: inner.config.backend.kernel_jobs,
            budget_cores: stats.core_budget,
        },
        plan_cache: PlanCacheDiag {
            capacity: inner.cache.capacity(),
            entries: inner.cache.entries(),
        },
        sessions,
        recorder: RecorderDiag {
            enabled: recorder::enabled(),
            ring_capacity: recorder::ring_capacity(),
            ring_events: recorder::ring_event_count(),
            overwritten: recorder::overwritten_events(),
            retained: recorder::retained_index(),
        },
        slo: SloDiag {
            target_us,
            window: inner.stats.recent_latency_count(),
            p50_us,
            p99_us,
            burn: match (p99_us, target_us) {
                (Some(p99), Some(target)) if target > 0.0 => Some(p99 / target),
                _ => None,
            },
        },
        stats,
    }
}

/// Writes the crash black box for a panicked request: the panic message,
/// the request's retained span tree, and a full diagnostics report.
/// Failures are reported to stderr, never propagated — the black box is
/// best-effort evidence on a path that is already failing.
pub(crate) fn write_black_box(inner: &Inner, dir: &Path, req_id: u64, message: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("hecate-diag: cannot create {}: {e}", dir.display());
        return;
    }
    let trace_json = match recorder::retained_trace(req_id) {
        Some(t) => export::events_json(&t.events),
        None => "[]".to_string(),
    };
    let body = format!(
        "{{\"req_id\":{},\"reason\":\"panicked\",\"message\":\"{}\",\"trace\":{},\"diagnostics\":{}}}\n",
        req_id,
        json_escape(message),
        trace_json,
        collect(inner).to_json()
    );
    let path = dir.join(format!("blackbox-req{req_id}.json"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("hecate-diag: cannot write {}: {e}", path.display());
    }
}

/// The periodic dumper's stop flag: raised by [`crate::Runtime`]'s drop,
/// waited on (with the dump interval as timeout) by the `hecate-diag`
/// thread.
#[derive(Default)]
pub(crate) struct DiagStop {
    stop: Mutex<bool>,
    cv: Condvar,
}

impl DiagStop {
    fn lock(&self) -> std::sync::MutexGuard<'_, bool> {
        self.stop.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn raise(&self) {
        *self.lock() = true;
        self.cv.notify_all();
    }

    /// Sleeps up to `timeout`; returns true once the flag is raised.
    fn wait(&self, timeout: Duration) -> bool {
        let mut stopped = self.lock();
        let deadline = std::time::Instant::now() + timeout;
        while !*stopped {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            stopped = self
                .cv
                .wait_timeout(stopped, left)
                .map(|(g, _)| g)
                .unwrap_or_else(|e| e.into_inner().0);
        }
        true
    }
}

/// The `hecate-diag` thread body: a `diag-NNNNNN.json` report every
/// `opts.interval`, and one final report when the runtime shuts down.
pub(crate) fn dump_loop(inner: &Inner, opts: &DiagOptions, stop: &DiagStop) {
    if let Err(e) = std::fs::create_dir_all(&opts.dir) {
        eprintln!("hecate-diag: cannot create {}: {e}", opts.dir.display());
        return;
    }
    let mut seq: u64 = 0;
    loop {
        let stopped = stop.wait(opts.interval);
        let path = opts.dir.join(format!("diag-{seq:06}.json"));
        let body = collect(inner).to_json() + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("hecate-diag: cannot write {}: {e}", path.display());
        }
        seq += 1;
        if stopped {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The diagnostics JSON is a scrape surface: this test pins the
    /// exact serialization of a hand-built report so shape drift is a
    /// deliberate decision, not an accident.
    #[test]
    fn diagnostics_json_format_is_pinned() {
        let report = DiagnosticsReport {
            generated_ns: 42,
            workers: 2,
            shard_depths: vec![1, 0],
            priority_depth: 3,
            queue_capacity: 16,
            kernel: KernelDiag {
                max_threads: 4,
                spawned_threads: 2,
                pool_stripes: 6,
                inline_stripes: 2,
                kernel_jobs: 2,
                budget_cores: 8,
            },
            plan_cache: PlanCacheDiag {
                capacity: 4,
                entries: vec![PlanCacheEntry {
                    key: 0xabc,
                    ops: 7,
                    estimated_latency_us: 12.5,
                    last_used_tick: 9,
                }],
            },
            sessions: vec![SessionMargin {
                session: 1,
                min_margin_bits: 10.25,
            }],
            recorder: RecorderDiag {
                enabled: true,
                ring_capacity: 4096,
                ring_events: 100,
                overwritten: 5,
                retained: vec![RetainedSummary {
                    req_id: 7,
                    reason: "slow",
                    retained_ns: 1,
                    events: 12,
                }],
            },
            slo: SloDiag {
                target_us: Some(1000.0),
                window: 3,
                p50_us: Some(400.0),
                p99_us: Some(1500.0),
                burn: Some(1.5),
            },
            stats: StatsSnapshot::default(),
        };
        let json = report.to_json();
        let want_prefix = "{\"generated_ns\":42,\"workers\":2,\
             \"queue\":{\"shards\":[1,0],\"priority\":3,\"capacity\":16},\
             \"kernel\":{\"max_threads\":4,\"spawned_threads\":2,\"pool_stripes\":6,\"inline_stripes\":2,\"inline_share\":0.2500,\"kernel_jobs\":2,\"budget_cores\":8},\
             \"plan_cache\":{\"capacity\":4,\"entries\":[{\"key\":\"0000000000000abc\",\"ops\":7,\"estimated_latency_us\":12.5,\"last_used_tick\":9}]},\
             \"sessions\":[{\"session\":1,\"min_margin_bits\":10.250}],\
             \"recorder\":{\"enabled\":true,\"ring_capacity\":4096,\"ring_events\":100,\"overwritten\":5,\"retained\":[{\"req_id\":7,\"reason\":\"slow\",\"events\":12}]},\
             \"slo\":{\"target_us\":1000.0,\"window\":3,\"p50_us\":400.0,\"p99_us\":1500.0,\"burn\":1.5000},\
             \"stats\":{";
        assert!(
            json.starts_with(want_prefix),
            "diagnostics JSON drifted:\n got: {json}\nwant prefix: {want_prefix}"
        );
        assert!(json.ends_with('}'));
    }

    #[test]
    fn empty_slo_serializes_nulls() {
        let slo = SloDiag {
            target_us: None,
            window: 0,
            p50_us: None,
            p99_us: None,
            burn: None,
        };
        let json = format!(
            "{{\"target_us\":{},\"window\":{},\"p50_us\":{},\"p99_us\":{},\"burn\":{}}}",
            opt_f64(slo.target_us, 1),
            slo.window,
            opt_f64(slo.p50_us, 1),
            opt_f64(slo.p99_us, 1),
            opt_f64(slo.burn, 4),
        );
        assert_eq!(
            json,
            "{\"target_us\":null,\"window\":0,\"p50_us\":null,\"p99_us\":null,\"burn\":null}"
        );
    }

    #[test]
    fn inline_share_handles_zero_total() {
        let k = KernelDiag {
            max_threads: 0,
            spawned_threads: 0,
            pool_stripes: 0,
            inline_stripes: 0,
            kernel_jobs: 1,
            budget_cores: 0,
        };
        assert_eq!(k.inline_share(), 0.0);
    }
}
