//! The sharded MPMC job queue behind the worker pool.
//!
//! The first-generation pool funneled every dequeue through one
//! `Mutex<mpsc::Receiver<Job>>`: N workers serialized on a single lock
//! to pull work, and jobs set aside by the batch coalescer sat in a
//! second global `Mutex<VecDeque>` that only its stasher revisited. At
//! eight workers the receiver mutex was the whole story — throughput
//! stayed flat because dequeue itself was the critical section.
//!
//! [`JobQueue`] replaces both with a sharded design:
//!
//! - **Per-worker shards.** Submissions round-robin across one
//!   `Mutex<VecDeque>` per worker. A worker pops its own shard first
//!   and *steals* from its peers' shards (scanning forward from its own
//!   index) when it finds nothing, so two workers only ever contend
//!   when the queue is nearly empty — exactly when contention is
//!   harmless.
//! - **A priority lane.** Jobs a coalescing worker dequeued but could
//!   not batch ([`JobQueue::push_priority`]) go to a lane every worker
//!   checks *before* the shards. Any idle peer picks a stashed job up
//!   immediately; it no longer waits for the worker that stashed it.
//! - **Condvar wakeup, no polling.** Workers with nothing to pop park
//!   on a condvar. Producers push to a shard, then acquire-and-release
//!   the sleep mutex before notifying — the classic protocol that makes
//!   a lost wakeup impossible: a parked worker either re-checked after
//!   the item became visible (it holds the sleep mutex between its
//!   check and its wait) or is already waiting when the notify fires.
//! - **Bounded, typed overflow.** A single atomic length enforces the
//!   capacity; a full queue rejects the push with the item handed back,
//!   which the runtime surfaces as `RuntimeError::QueueFull`.
//!
//! [`JobQueue::pop_deadline`] is the batch coalescer's collection
//! primitive: it waits on the same condvar, bounded by the batch
//! window's end, so a compatible job wakes the coalescer the moment it
//! arrives — replacing the old 25 µs sleep-poll loop that quantized
//! small-batch latency. Its `wanted` predicate filters the priority
//! lane: the coalescer takes only *compatible* stashed jobs (including
//! ones another coalescer stashed), never re-pops the incompatible job
//! it just stashed itself (which would spin), and leaves mismatches for
//! the next free worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Why a push was rejected; the item is handed back in both cases.
#[derive(Debug)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity.
    Full(T),
    /// [`JobQueue::close`] was called; no further work is accepted.
    Closed(T),
}

/// How a pop treats the priority lane: take any stashed item, or only
/// ones a filter accepts (the coalescer's compatible-partner check).
enum Lane<'a, T> {
    Any,
    Matching(&'a dyn Fn(&T) -> bool),
}

/// A bounded, sharded multi-producer multi-consumer queue with work
/// stealing and a priority lane. See the module docs for the topology.
pub(crate) struct JobQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    priority: Mutex<VecDeque<T>>,
    /// Items across all shards and the priority lane.
    len: AtomicUsize,
    capacity: usize,
    /// Round-robin cursor for shard selection on push.
    next_shard: AtomicUsize,
    closed: AtomicBool,
    /// Empty critical section pairing producers' pushes with consumers'
    /// check-then-wait; see the module docs for the wakeup protocol.
    sleep: Mutex<()>,
    wake: Condvar,
}

impl<T> JobQueue<T> {
    /// A queue with one shard per expected worker and a capacity bound
    /// (both clamped to at least 1).
    pub(crate) fn new(shards: usize, capacity: usize) -> JobQueue<T> {
        JobQueue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            priority: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            capacity: capacity.max(1),
            next_shard: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    fn lock<'a, U>(m: &'a Mutex<U>) -> MutexGuard<'a, U> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Items currently queued (shards + priority lane).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Per-shard depths plus the priority-lane depth, for diagnostics.
    /// Each shard is locked in turn, so the numbers are per-shard exact
    /// but only approximately simultaneous — fine for introspection.
    pub(crate) fn depths(&self) -> (Vec<usize>, usize) {
        let shards = self.shards.iter().map(|s| Self::lock(s).len()).collect();
        (shards, Self::lock(&self.priority).len())
    }

    /// Enqueues onto the next shard in round-robin order and wakes one
    /// parked worker.
    pub(crate) fn push(&self, item: T) -> Result<(), PushError<T>> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(PushError::Closed(item));
        }
        // Reserve a slot before touching any shard, so the bound holds
        // exactly under concurrent pushes.
        if self
            .len
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .is_err()
        {
            return Err(PushError::Full(item));
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        Self::lock(&self.shards[shard]).push_back(item);
        self.notify(false);
        Ok(())
    }

    /// Enqueues onto the priority lane, served by every worker ahead of
    /// the shards. Used for jobs a coalescer dequeued but could not
    /// batch: they are already past admission (never capacity-checked
    /// again, so a stash can never deadlock against a full queue) and
    /// remain logically queued until a worker dispatches them.
    pub(crate) fn push_priority(&self, item: T) {
        self.len.fetch_add(1, Ordering::SeqCst);
        Self::lock(&self.priority).push_back(item);
        // Wake everyone: `notify_one` could land on a coalescing worker
        // whose `pop_deadline` ignores the priority lane, leaving the
        // stashed job parked until an unrelated wakeup.
        self.notify(true);
    }

    /// The lost-wakeup-free notify: acquiring (and immediately
    /// releasing) the sleep mutex orders this producer against any
    /// consumer between its failed pop and its wait.
    fn notify(&self, all: bool) {
        drop(Self::lock(&self.sleep));
        if all {
            self.wake.notify_all();
        } else {
            self.wake.notify_one();
        }
    }

    /// One non-blocking pop attempt: priority lane first (the whole lane,
    /// or only entries matching a filter), own shard, then steal from
    /// peers scanning forward.
    fn try_pop(&self, worker: usize, lane: Lane<'_, T>) -> Option<T> {
        {
            let mut priority = Self::lock(&self.priority);
            let pos = match lane {
                Lane::Any => (!priority.is_empty()).then_some(0),
                Lane::Matching(wanted) => priority.iter().position(wanted),
            };
            if let Some(pos) = pos {
                let item = priority.remove(pos).expect("position is in bounds");
                self.len.fetch_sub(1, Ordering::SeqCst);
                return Some(item);
            }
        }
        let n = self.shards.len();
        for k in 0..n {
            let idx = (worker + k) % n;
            if let Some(item) = Self::lock(&self.shards[idx]).pop_front() {
                self.len.fetch_sub(1, Ordering::SeqCst);
                return Some(item);
            }
        }
        None
    }

    /// Blocks until an item is available (priority lane first, then own
    /// shard, then stealing). Returns `None` only when the queue is
    /// closed *and* empty, so accepted work is always drained through
    /// shutdown.
    pub(crate) fn pop(&self, worker: usize) -> Option<T> {
        if let Some(item) = self.try_pop(worker, Lane::Any) {
            return Some(item);
        }
        let mut guard = Self::lock(&self.sleep);
        loop {
            if let Some(item) = self.try_pop(worker, Lane::Any) {
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            guard = self.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`JobQueue::pop`] but bounded by `deadline`, and taking from
    /// the priority lane only items `wanted` accepts (see the module
    /// docs). Returns `None` once the deadline passes with nothing
    /// poppable, or when the queue closes. Items already queued are
    /// returned immediately even if the deadline is in the past,
    /// mirroring a `try_recv` drain.
    pub(crate) fn pop_deadline(
        &self,
        worker: usize,
        deadline: Instant,
        wanted: impl Fn(&T) -> bool,
    ) -> Option<T> {
        if let Some(item) = self.try_pop(worker, Lane::Matching(&wanted)) {
            return Some(item);
        }
        let mut guard = Self::lock(&self.sleep);
        loop {
            if let Some(item) = self.try_pop(worker, Lane::Matching(&wanted)) {
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _timeout) = self
                .wake
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    /// Closes the queue: further pushes fail with
    /// [`PushError::Closed`], and parked workers wake to drain what
    /// remains and then observe `None`.
    pub(crate) fn close(&self) {
        {
            let _guard = Self::lock(&self.sleep);
            self.closed.store(true, Ordering::SeqCst);
        }
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_pop_roundtrip_and_capacity() {
        let q: JobQueue<u32> = JobQueue::new(4, 3);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.push(3).is_ok());
        assert!(matches!(q.push(4), Err(PushError::Full(4))));
        assert_eq!(q.len(), 3);
        let mut got = vec![q.pop(0).unwrap(), q.pop(1).unwrap(), q.pop(2).unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q: JobQueue<u32> = JobQueue::new(2, 8);
        q.push(7).unwrap();
        q.close();
        assert!(matches!(q.push(8), Err(PushError::Closed(8))));
        // Accepted work still drains after close...
        assert_eq!(q.pop(0), Some(7));
        // ...and an empty closed queue reports shutdown.
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop_deadline(0, Instant::now(), |_| true), None);
    }

    /// Workers steal across shards: a job pushed while only worker 3 is
    /// popping must reach it no matter which shard it landed on.
    #[test]
    fn stealing_reaches_every_shard() {
        let q: JobQueue<u32> = JobQueue::new(8, 64);
        for i in 0..16 {
            q.push(i).unwrap();
        }
        let mut got: Vec<u32> = (0..16).map(|_| q.pop(3).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    /// The satellite regression: a job stashed to the priority lane by
    /// one (busy) worker is picked up promptly by an idle peer — it
    /// does not wait for the stasher to come back.
    #[test]
    fn stashed_job_is_taken_by_idle_peer_promptly() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(2, 8));
        let idle = {
            let q = q.clone();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let item = q.pop(1);
                (item, t0.elapsed())
            })
        };
        // Give the idle peer time to park on the condvar.
        std::thread::sleep(Duration::from_millis(50));
        // Worker 0 plays the coalescer: it stashes an incompatible job
        // and stays "busy" (never pops again).
        q.push_priority(42);
        let (item, waited) = idle.join().unwrap();
        assert_eq!(item, Some(42));
        assert!(
            waited < Duration::from_millis(500),
            "stashed job waited {waited:?} for an idle peer"
        );
    }

    /// A coalescer's deadline-bounded pop takes only stashed jobs its
    /// filter wants (never re-popping an incompatible stash, which would
    /// spin) and still sees shard pushes immediately, without polling.
    #[test]
    fn pop_deadline_filters_priority_and_wakes_on_push() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(2, 8));
        q.push_priority(1);
        q.push_priority(6);
        let deadline = Instant::now() + Duration::from_millis(40);
        // Odd stashes are "incompatible": the filtered pop reaches past
        // the mismatch at the lane's front and takes the even one.
        assert_eq!(q.pop_deadline(0, deadline, |&x| x % 2 == 0), Some(6));
        let deadline = Instant::now() + Duration::from_millis(40);
        assert_eq!(
            q.pop_deadline(0, deadline, |&x| x % 2 == 0),
            None,
            "an incompatible stash is never re-popped"
        );
        // The mismatch is still there for a full pop.
        assert_eq!(q.pop(0), Some(1));

        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let item = q.pop_deadline(0, Instant::now() + Duration::from_secs(5), |_| false);
                (item, t0.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        q.push(9).unwrap();
        let (item, waited) = waiter.join().unwrap();
        assert_eq!(item, Some(9));
        assert!(
            waited < Duration::from_secs(1),
            "coalescer waited {waited:?} for a pushed job (condvar must wake it)"
        );
    }

    /// Hammer the queue from many producers and consumers: every item
    /// pushed is popped exactly once, none are lost, and the length
    /// returns to zero.
    #[test]
    fn concurrent_conservation() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 250;
        let q: Arc<JobQueue<usize>> = Arc::new(JobQueue::new(CONSUMERS, 100_000));
        let seen = Arc::new(Mutex::new(vec![0u32; PRODUCERS * PER_PRODUCER]));
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|w| {
                let q = q.clone();
                let seen = seen.clone();
                std::thread::spawn(move || {
                    while let Some(item) = q.pop(w) {
                        seen.lock().unwrap()[item] += 1;
                    }
                })
            })
            .collect();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(q.len(), 0);
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }
}
