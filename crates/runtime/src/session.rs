//! Per-tenant sessions: key material and engine ownership.
//!
//! A [`Session`] is the unit of cryptographic isolation. Each session has
//! its own key seed, so its secret/public/evaluation keys are disjoint
//! from every other session's; a ciphertext produced under one session's
//! keys decrypts to noise under another's (see the `cross_session`
//! test). Compiled plans are *shared* across sessions through the
//! [`crate::cache::PlanCache`] — only key material is per-tenant.
//!
//! **Isolation is against mix-ups, not adversaries.** This is a research
//! harness built for reproducibility: by default every session seed is a
//! deterministic FNV-1a mix of the runtime's base seed and a sequential
//! session id, so anyone who knows the configuration can reconstruct
//! every session's secret key. The per-session keys prevent *accidental*
//! cross-tenant decryption, not attacks. Deployments that want
//! unpredictable keys at the cost of run-to-run reproducibility should
//! construct the manager with [`SessionManager::with_os_entropy`].
//!
//! Engines are created lazily: the first time a session executes a given
//! plan, an [`ExecEngine`] is built, generating exactly the Galois and
//! relinearization keys that plan's [`crate::cache::PlanArtifact`] calls
//! for. The engine (and thus the key material) is then cached per
//! `(session, plan key)` and shared by reference among worker threads —
//! every `ExecEngine` method takes `&self`.

use crate::cache::PlanArtifact;
use crate::RuntimeError;
use hecate_backend::exec::{BackendOptions, ExecEngine};
use hecate_ir::hash::Fnv1a;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifies a tenant session within one [`crate::Runtime`].
pub type SessionId = u64;

/// Shards for the manager's session map. Session ids are sequential, so
/// `id % SESSION_SHARDS` round-robins neighbors onto different locks
/// and concurrent lookups of different tenants never contend.
const SESSION_SHARDS: usize = 16;

/// Shards for each session's engine map. Plan keys are FNV-1a hashes,
/// so `key % ENGINE_SHARDS` spreads them uniformly; engine lookup for
/// one plan no longer serializes against engine *construction* (keygen,
/// milliseconds) for another.
const ENGINE_SHARDS: usize = 8;

/// One tenant's cryptographic context.
pub struct Session {
    id: SessionId,
    /// Key-generation seed; all engines of this session derive their
    /// secret key from it, so the session has one identity across plans.
    seed: u64,
    engines: [Mutex<HashMap<u64, Arc<ExecEngine>>>; ENGINE_SHARDS],
}

impl Session {
    fn new(id: SessionId, seed: u64) -> Self {
        Session {
            id,
            seed,
            engines: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// This session's identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// This session's key seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Locks the engine shard holding `plan_key`, recovering from
    /// poisoning. Map mutations are single `HashMap` operations and the
    /// values are `Arc`s, so a panicked holder cannot leave the map
    /// half-updated; recovering keeps one isolated panic from disabling
    /// the whole session.
    fn lock_engines(
        &self,
        plan_key: u64,
    ) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<ExecEngine>>> {
        self.engines[(plan_key % ENGINE_SHARDS as u64) as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Number of plans this session has built engines (and keys) for.
    pub fn engine_count(&self) -> usize {
        self.engines
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// The engine executing `artifact` under this session's keys,
    /// building it (keygen + evaluation keys) on first use.
    ///
    /// Construction happens *outside* the engine-map lock: keygen is
    /// expensive and can fail or panic, and neither outcome may poison or
    /// serialize the session's other plans. Two threads racing a cold
    /// plan may both build; the first insert wins and the loser's engine
    /// is dropped (identical keys — same seed — so it is only wasted
    /// work, never an inconsistency).
    ///
    /// # Errors
    /// Propagates engine construction failures as
    /// [`RuntimeError::Exec`].
    pub fn engine(
        &self,
        artifact: &PlanArtifact,
        backend: &BackendOptions,
    ) -> Result<Arc<ExecEngine>, RuntimeError> {
        let mut span = hecate_telemetry::trace::span_with("session-engine", || {
            vec![
                ("session", self.id.into()),
                ("plan_key", artifact.key.into()),
            ]
        });
        if let Some(engine) = self.lock_engines(artifact.key).get(&artifact.key) {
            span.attr("built", false.into());
            return Ok(engine.clone());
        }
        span.attr("built", true.into());
        let mut opts = backend.clone();
        opts.seed = self.seed;
        let engine =
            Arc::new(ExecEngine::new(artifact.prog.clone(), &opts).map_err(RuntimeError::Exec)?);
        Ok(self
            .lock_engines(artifact.key)
            .entry(artifact.key)
            .or_insert(engine)
            .clone())
    }

    /// Drops the cached engine for `plan_key`, so the next request builds
    /// a fresh one. The retry path calls this after a transient execution
    /// failure: re-running on a rebuilt engine rules out any state the
    /// failure (or an injected fault) left behind.
    pub fn invalidate_engine(&self, plan_key: u64) {
        self.lock_engines(plan_key).remove(&plan_key);
    }
}

/// Creates and resolves [`Session`]s.
///
/// The session map is sharded ([`SESSION_SHARDS`] locks keyed by
/// `id % SESSION_SHARDS`) so resolving one tenant's session never
/// serializes against opening, closing, or resolving another's — under
/// the old single map, every request's session lookup shared one global
/// critical section. Id allocation is a lock-free atomic increment.
pub struct SessionManager {
    base_seed: u64,
    sessions: [Mutex<HashMap<SessionId, Arc<Session>>>; SESSION_SHARDS],
    next_id: AtomicU64,
}

impl SessionManager {
    /// A manager deriving session seeds deterministically from
    /// `base_seed`.
    ///
    /// Fully reproducible — and therefore fully predictable: see the
    /// module docs for what per-session isolation does and does not
    /// defend against. Use [`SessionManager::with_os_entropy`] when key
    /// unpredictability matters more than reproducibility.
    pub fn new(base_seed: u64) -> Self {
        SessionManager {
            base_seed,
            sessions: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            next_id: AtomicU64::new(1),
        }
    }

    /// A manager whose base seed mixes `base_seed` with OS-provided
    /// entropy, so session keys cannot be reconstructed from the
    /// configuration alone. Runs are no longer reproducible.
    pub fn with_os_entropy(base_seed: u64) -> Self {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        // `RandomState` keys come from the OS entropy source; hashing
        // nothing still yields a value derived from those keys, and each
        // `RandomState::new()` draws fresh ones.
        let entropy = RandomState::new().build_hasher().finish();
        let mut h = Fnv1a::new();
        h.write(&base_seed.to_le_bytes());
        h.write(&entropy.to_le_bytes());
        SessionManager::new(h.finish())
    }

    /// Locks the shard holding session `id`, recovering from poisoning
    /// (same reasoning as the engine map: single-operation mutations
    /// over `Arc` values).
    fn lock_shard(
        &self,
        id: SessionId,
    ) -> std::sync::MutexGuard<'_, HashMap<SessionId, Arc<Session>>> {
        self.sessions[(id % SESSION_SHARDS as u64) as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a new session with a seed derived from the base seed and the
    /// session id (FNV-mixed, so neighboring ids get unrelated seeds).
    pub fn open(&self) -> Arc<Session> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut h = Fnv1a::new();
        h.write(&self.base_seed.to_le_bytes());
        h.write(&id.to_le_bytes());
        let session = Arc::new(Session::new(id, h.finish()));
        self.lock_shard(id).insert(id, session.clone());
        session
    }

    /// Resolves an open session.
    ///
    /// # Errors
    /// Returns [`RuntimeError::UnknownSession`] for ids never opened (or
    /// already closed).
    pub fn get(&self, id: SessionId) -> Result<Arc<Session>, RuntimeError> {
        self.lock_shard(id)
            .get(&id)
            .cloned()
            .ok_or(RuntimeError::UnknownSession(id))
    }

    /// Closes a session, dropping its engines and key material.
    pub fn close(&self, id: SessionId) {
        self.lock_shard(id).remove(&id);
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// True when no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ckks::{CkksEncoder, CkksParams, Decryptor, Encryptor, KeyGenerator};

    #[test]
    fn sessions_get_distinct_seeds() {
        let mgr = SessionManager::new(7);
        let a = mgr.open();
        let b = mgr.open();
        assert_ne!(a.id(), b.id());
        assert_ne!(a.seed(), b.seed());
        assert_eq!(mgr.len(), 2);
        mgr.close(a.id());
        assert!(mgr.get(a.id()).is_err());
        assert!(mgr.get(b.id()).is_ok());
    }

    /// Two managers built from the same base seed but with OS entropy
    /// mixed in derive unrelated session seeds (the deterministic
    /// constructor would derive identical ones).
    #[test]
    fn os_entropy_makes_seeds_unpredictable() {
        let a = SessionManager::with_os_entropy(7).open().seed();
        let b = SessionManager::with_os_entropy(7).open().seed();
        assert_ne!(a, b, "entropy-mixed managers must not collide");
        let c = SessionManager::new(7).open().seed();
        let d = SessionManager::new(7).open().seed();
        assert_eq!(c, d, "deterministic managers reproduce exactly");
    }

    /// A worker panicking while holding the session map (or a session's
    /// engine map) must not take the manager down with it: locks recover
    /// from poisoning and later opens/gets keep working.
    #[test]
    fn poisoned_session_locks_are_recovered() {
        let mgr = SessionManager::new(7);
        let session = mgr.open();
        let shard = (session.id() % SESSION_SHARDS as u64) as usize;
        std::thread::scope(|s| {
            let poisoner = s.spawn(|| {
                let _sessions = mgr.sessions[shard].lock().unwrap();
                let _engines: Vec<_> = session.engines.iter().map(|e| e.lock().unwrap()).collect();
                panic!("poison the session shard and every engine shard");
            });
            assert!(poisoner.join().is_err());
        });
        assert!(
            mgr.sessions[shard].is_poisoned(),
            "setup must have poisoned"
        );
        assert!(mgr.get(session.id()).is_ok(), "get recovers the lock");
        assert_eq!(session.engine_count(), 0, "engine map recovers too");
        let b = mgr.open();
        assert_eq!(mgr.len(), 2);
        mgr.close(b.id());
        assert_eq!(mgr.len(), 1);
    }

    /// Session ids are allocated lock-free; concurrent opens must never
    /// collide, and every opened session must resolve afterwards.
    #[test]
    fn concurrent_opens_get_unique_ids() {
        let mgr = SessionManager::new(11);
        let ids: Vec<SessionId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| (0..25).map(|_| mgr.open().id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "no duplicate session ids");
        assert_eq!(mgr.len(), ids.len());
        for id in ids {
            assert!(mgr.get(id).is_ok());
        }
    }

    /// The isolation invariant behind per-session keys: a ciphertext from
    /// one session is garbage under another session's secret key.
    #[test]
    fn cross_session_decryption_yields_noise() {
        let mgr = SessionManager::new(99);
        let sa = mgr.open();
        let sb = mgr.open();
        let params = CkksParams::new(64, 40, 30, 1, false).unwrap();
        let encoder = CkksEncoder::new(&params);
        let message = vec![1.0; params.slots()];
        let pt = encoder.encode(&message, 20.0, 0).unwrap();

        let mut kg_a = KeyGenerator::new(&params, sa.seed());
        let pk_a = kg_a.public_key();
        let mut enc_a = Encryptor::new(&params, pk_a, sa.seed().wrapping_add(1));
        let ct = enc_a.encrypt(&pt);

        let dec_a = Decryptor::new(&params, kg_a.secret_key().clone());
        let ok = encoder.decode(&dec_a.decrypt(&ct));
        assert!((ok[0] - 1.0).abs() < 1e-2, "own key decrypts correctly");

        let kg_b = KeyGenerator::new(&params, sb.seed());
        let dec_b = Decryptor::new(&params, kg_b.secret_key().clone());
        let garbage = encoder.decode(&dec_b.decrypt(&ct));
        let rms = hecate_backend::rms_error(&ok, &garbage);
        assert!(
            rms > 1.0,
            "cross-session decryption must be noise, rms={rms}"
        );
    }
}
