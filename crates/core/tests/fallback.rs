//! Graceful-degradation tests: the fallback driver descends the ladder
//! when a rung is sabotaged, and records where it landed.

use hecate_compiler::{
    compile, compile_with_fallback, CompileError, CompileFault, CompileFaultKind, CompileOptions,
    FallbackRung, Scheme,
};
use hecate_ir::{Function, FunctionBuilder};

/// The paper's motivating example, (x² + y²)³.
fn motivating() -> Function {
    let mut b = FunctionBuilder::new("motivating", 4);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let x2 = b.square(x);
    let y2 = b.square(y);
    let z = b.add(x2, y2);
    let z2 = b.mul(z, z);
    let z3 = b.mul(z2, z);
    b.output(z3);
    b.finish()
}

fn opts(w: f64) -> CompileOptions {
    let mut o = CompileOptions::with_waterline(w);
    o.degree = Some(4096);
    o
}

#[test]
fn healthy_compile_reports_primary_rung() {
    let prog = compile_with_fallback(&motivating(), Scheme::Hecate, &opts(20.0)).unwrap();
    assert_eq!(prog.stats.fallback, Some(FallbackRung::Primary));
    assert_eq!(prog.stats.fallback_attempts, 0);
    assert_eq!(prog.scheme, Scheme::Hecate);
}

#[test]
fn sabotaged_hecate_rung_falls_back_to_pars() {
    // Sabotage only the HECATE rung: every plan it produces loses a
    // scale-management step, which the per-pass verifier rejects. The
    // PARS rung is untouched and must recover the program.
    let mut o = opts(20.0);
    o.fault = Some(CompileFault {
        scheme: Some(Scheme::Hecate),
        kind: CompileFaultKind::ForwardReference,
    });
    let direct = compile(&motivating(), Scheme::Hecate, &o);
    assert!(
        matches!(direct, Err(CompileError::Verify(_))),
        "sabotage must be caught, got {direct:?}"
    );

    let prog = compile_with_fallback(&motivating(), Scheme::Hecate, &o).unwrap();
    assert_eq!(prog.stats.fallback, Some(FallbackRung::Pars));
    assert_eq!(prog.stats.fallback_attempts, 1);
    assert_eq!(prog.scheme, Scheme::Pars);
    // The recovered program is a real compile: verified types and params.
    hecate_ir::verify::verify_plan(&prog.func, &prog.cfg, "recovered").unwrap();
    assert!(prog.params.chain_len >= 1);
}

#[test]
fn sabotage_of_every_rung_reports_the_primary_error() {
    // An unrestricted structural fault corrupts every rung's plan; the
    // ladder runs dry and the primary scheme's diagnosis comes back.
    let mut o = opts(20.0);
    o.fault = Some(CompileFault {
        scheme: None,
        kind: CompileFaultKind::ForwardReference,
    });
    let all = compile_with_fallback(&motivating(), Scheme::Hecate, &o);
    assert!(matches!(all, Err(CompileError::Verify(_))), "{all:?}");
}

#[test]
fn sabotaged_pars_falls_back_to_eva() {
    let mut o = opts(20.0);
    o.fault = Some(CompileFault {
        scheme: Some(Scheme::Pars),
        kind: CompileFaultKind::ForwardReference,
    });
    let prog = compile_with_fallback(&motivating(), Scheme::Pars, &o).unwrap();
    assert_eq!(prog.stats.fallback, Some(FallbackRung::Eva));
    assert_eq!(prog.scheme, Scheme::Eva);
    assert_eq!(prog.stats.fallback_attempts, 1);
}

#[test]
fn dropped_rescale_is_reported_with_pass_and_invariant() {
    // At waterline 26 EVA's reactive policy emits a real rescale
    // (52-bit products cross the 86-bit threshold after squaring).
    // Dropping it leaves scales that no longer fit the selected chain.
    let mut o = opts(26.0);
    o.fault = Some(CompileFault {
        scheme: Some(Scheme::Eva),
        kind: CompileFaultKind::DropRescale { nth: 0 },
    });
    match compile(&motivating(), Scheme::Eva, &o) {
        Err(CompileError::Verify(v)) => {
            assert_eq!(v.pass, "final-plan");
            assert!(v.at.is_some(), "error names the offending op: {v}");
        }
        other => panic!("expected a verification error, got {other:?}"),
    }
}

#[test]
fn verification_can_be_disabled_for_diagnosis() {
    // With verify_passes off, the sabotaged plan escapes the compiler —
    // the switch exists so the fault path itself can be tested, and so
    // hecatec --strict vs --fallback behave as documented.
    let mut o = opts(26.0);
    o.verify_passes = false;
    o.fault = Some(CompileFault {
        scheme: Some(Scheme::Eva),
        kind: CompileFaultKind::DropRescale { nth: 0 },
    });
    let prog = compile(&motivating(), Scheme::Eva, &o).unwrap();
    // The escaped plan still carries the parameters selected for the
    // healthy plan; verifying against that chain exposes the lie.
    let v = hecate_ir::verify::verify_plan(&prog.func, &prog.bound_config(), "audit");
    assert!(v.is_err(), "escaped plan must violate the selected chain");
}
