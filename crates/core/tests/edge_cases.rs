//! Compiler edge cases: degenerate programs, extreme options, and
//! graceful failure modes.

use hecate_compiler::{compile, CompileError, CompileOptions, Scheme};
use hecate_ir::{ConstData, Function, FunctionBuilder, Op};

fn opts(w: f64) -> CompileOptions {
    let mut o = CompileOptions::with_waterline(w);
    o.degree = Some(256);
    o
}

#[test]
fn identity_program_compiles() {
    let mut b = FunctionBuilder::new("id", 8);
    let x = b.input_cipher("x");
    b.output(x);
    let func = b.finish();
    for scheme in Scheme::ALL {
        let prog = compile(&func, scheme, &opts(24.0)).unwrap();
        assert_eq!(prog.params.max_level, 0, "{scheme}");
        assert_eq!(prog.params.chain_len, 1);
    }
}

#[test]
fn mul_free_rotation_only_program() {
    let mut b = FunctionBuilder::new("rot", 16);
    let x = b.input_cipher("x");
    let r1 = b.rotate(x, 1);
    let r2 = b.rotate(r1, 4);
    let s = b.add(r2, x);
    b.output(s);
    let func = b.finish();
    let prog = compile(&func, Scheme::Hecate, &opts(24.0)).unwrap();
    // No multiplications → nothing to rescale → single-prime chain.
    assert_eq!(prog.params.chain_len, 1);
    assert_eq!(prog.stats.op_counts.get("rescale"), None);
}

#[test]
fn very_high_waterline_still_compiles() {
    let mut b = FunctionBuilder::new("hw", 8);
    let x = b.input_cipher("x");
    let m = b.square(x);
    b.output(m);
    let func = b.finish();
    let prog = compile(&func, Scheme::Eva, &opts(50.0)).unwrap();
    // 100-bit product at level 0 needs a long chain but must succeed.
    assert!(prog.params.total_bits >= 100);
}

#[test]
fn minimum_waterline_boundary() {
    let mut b = FunctionBuilder::new("lw", 8);
    let x = b.input_cipher("x");
    let m = b.square(x);
    b.output(m);
    let func = b.finish();
    // Very low waterlines are legal (error filtering happens downstream).
    let prog = compile(&func, Scheme::Hecate, &opts(10.0)).unwrap();
    assert!(prog.stats.estimated_latency_us > 0.0);
}

#[test]
fn shared_subexpression_gets_single_scale_management() {
    // z used by three consumers: the memoized codegen must insert one
    // rescale chain, not three.
    let mut b = FunctionBuilder::new("share", 8);
    let x = b.input_cipher("x");
    let z = b.square(x);
    let z2 = b.square(z);
    let a = b.mul(z2, z);
    let c = b.mul(z2, a);
    b.output(c);
    let func = b.finish();
    let prog = compile(&func, Scheme::Pars, &opts(24.0)).unwrap();
    let rescales = prog.stats.op_counts.get("rescale").copied().unwrap_or(0);
    // z² (48 bits) and deeper values rescale, but shared values share.
    assert!(
        rescales <= 4,
        "got {rescales} rescales:\n{:?}",
        prog.stats.op_counts
    );
}

#[test]
fn output_directly_on_constant_is_rejected_cleanly() {
    // A function whose only output is a constant is not an FHE program.
    // The per-pass verifier now rejects the free output before parameter
    // selection ever runs (this used to surface later as NoParameters).
    let mut f = Function::new("c", 4);
    let c = f.push(Op::Const {
        data: ConstData::splat(1.0),
    });
    f.mark_output("o", c);
    let err = compile(&f, Scheme::Eva, &opts(24.0));
    match err {
        Err(CompileError::Verify(v)) => {
            assert_eq!(v.invariant, hecate_ir::verify::Invariant::OutputKind)
        }
        other => panic!("expected a verification error, got {other:?}"),
    }
}

#[test]
fn max_chain_guard_reports_oversized_programs() {
    let mut b = FunctionBuilder::new("deep", 8);
    let x = b.input_cipher("x");
    let mut cur = x;
    for _ in 0..7 {
        cur = b.square(cur); // 2^7-fold scale growth
    }
    b.output(cur);
    let func = b.finish();
    let mut o = opts(40.0);
    o.max_chain_len = 3;
    assert!(matches!(
        compile(&func, Scheme::Eva, &o),
        Err(CompileError::NoParameters { .. })
    ));
}

#[test]
fn duplicate_input_names_reference_the_same_ciphertext() {
    // Canonicalization merges same-named inputs; semantics must hold.
    let mut f = Function::new("dup", 8);
    let x1 = f.push(Op::Input { name: "x".into() });
    let x2 = f.push(Op::Input { name: "x".into() });
    let m = f.push(Op::Mul(x1, x2)); // effectively x²
    f.mark_output("o", m);
    let prog = compile(&f, Scheme::Eva, &opts(24.0)).unwrap();
    let inputs_left = prog.stats.op_counts.get("input").copied().unwrap_or(0);
    assert_eq!(inputs_left, 1, "CSE merges same-named inputs");
}

#[test]
fn stats_reflect_smaller_canonicalized_program() {
    let mut b = FunctionBuilder::new("c", 8);
    let x = b.input_cipher("x");
    let r1 = b.rotate(x, 2);
    let r2 = b.rotate(x, 2); // duplicate
    let s = b.add(r1, r2);
    b.output(s);
    let func = b.finish();
    let with = compile(&func, Scheme::Eva, &opts(24.0)).unwrap();
    let mut o = opts(24.0);
    o.canonicalize = false;
    let without = compile(&func, Scheme::Eva, &o).unwrap();
    let rot = |p: &hecate_compiler::CompiledProgram| {
        p.stats.op_counts.get("rotate").copied().unwrap_or(0)
    };
    assert_eq!(rot(&with), 1);
    assert_eq!(rot(&without), 2);
}
