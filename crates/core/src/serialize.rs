//! (De)serialization of compiled plans.
//!
//! A [`CompiledProgram`] is the *compile once* artifact the serving layer
//! amortizes: the scale-managed function, its types, the type-system
//! environment, the selected RNS parameters, and the content hash of the
//! source function it was compiled from. This module renders all of that
//! as a line-oriented text document (`HECATE-PLAN v1`) that survives a
//! round trip exactly — the function via the canonical re-parsable print
//! form, floats in Rust's shortest round-trip rendering.
//!
//! A reloaded plan is untrusted input: callers should re-verify it with
//! [`hecate_ir::verify::verify_plan`] against
//! [`CompiledProgram::bound_config`] before executing it (as `hecatec
//! --load-plan` does), and can use the recorded source hash to detect a
//! plan being replayed against a different source program.
//!
//! Exploration statistics (epochs, plans explored, SMU counts) describe
//! the compilation *process*, not the artifact; they are not serialized.
//! Deserialization recomputes the structural statistics (op histogram,
//! use-edge count) and restores the recorded latency/noise estimates, so
//! a reloaded plan is executable and reportable without rerunning the
//! explorer.

use crate::options::{CompileStats, CompiledProgram, Scheme};
use crate::params::SelectedParams;
use hecate_ir::analysis::{op_histogram, slot_footprint, use_edge_count, SlotFootprint};
use hecate_ir::parse::parse_function;
use hecate_ir::print::print_function_full;
use hecate_ir::types::{Type, TypeConfig};
use std::fmt::Write as _;

/// The format tag on the first line of every serialized plan.
pub const PLAN_HEADER: &str = "HECATE-PLAN v1";

/// A malformed serialized plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFormatError {
    /// What was wrong, with enough context to locate it.
    pub message: String,
}

impl std::fmt::Display for PlanFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed plan: {}", self.message)
    }
}

impl std::error::Error for PlanFormatError {}

fn bad(message: impl Into<String>) -> PlanFormatError {
    PlanFormatError {
        message: message.into(),
    }
}

fn scheme_tag(scheme: Scheme) -> &'static str {
    match scheme {
        Scheme::Eva => "eva",
        Scheme::Pars => "pars",
        Scheme::Smse => "smse",
        Scheme::Hecate => "hecate",
    }
}

fn parse_scheme(tag: &str) -> Result<Scheme, PlanFormatError> {
    match tag {
        "eva" => Ok(Scheme::Eva),
        "pars" => Ok(Scheme::Pars),
        "smse" => Ok(Scheme::Smse),
        "hecate" => Ok(Scheme::Hecate),
        other => Err(bad(format!("unknown scheme '{other}'"))),
    }
}

/// Renders a compiled plan as the `HECATE-PLAN v1` text form.
pub fn serialize_plan(prog: &CompiledProgram) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{PLAN_HEADER}");
    let _ = writeln!(s, "scheme {}", scheme_tag(prog.scheme));
    let _ = writeln!(
        s,
        "config waterline={} rescale={} max_level={} modulus_bits={}",
        prog.cfg.waterline,
        prog.cfg.rescale_bits,
        opt_to_str(prog.cfg.max_level.map(|v| v as f64)),
        opt_to_str(prog.cfg.modulus_bits),
    );
    let p = &prog.params;
    let _ = writeln!(
        s,
        "params q0={} sf={} chain={} max_level={} total={} degree={} secure={}",
        p.q0_bits, p.sf_bits, p.chain_len, p.max_level, p.total_bits, p.degree, p.secure
    );
    let _ = writeln!(
        s,
        "estimate latency_us={} noise_bits={}",
        prog.stats.estimated_latency_us, prog.stats.estimated_noise_bits
    );
    let _ = writeln!(s, "source hash={:016x}", prog.source_hash);
    let fp = &prog.footprint;
    let _ = writeln!(
        s,
        "slot footprint={}:{}:{}:{}",
        fp.width, fp.back, fp.fwd, fp.max_live
    );
    let _ = writeln!(s, "types {}", prog.types.len());
    for t in &prog.types {
        match t {
            Type::Free => {
                let _ = writeln!(s, "free");
            }
            Type::Plain { scale, level } => {
                let _ = writeln!(s, "plain {scale} {level}");
            }
            Type::Cipher { scale, level } => {
                let _ = writeln!(s, "cipher {scale} {level}");
            }
        }
    }
    s.push_str(&print_function_full(&prog.func));
    s
}

fn opt_to_str(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "-".to_string(),
    }
}

fn parse_opt_f64(s: &str) -> Result<Option<f64>, PlanFormatError> {
    if s == "-" {
        Ok(None)
    } else {
        s.parse()
            .map(Some)
            .map_err(|_| bad(format!("bad optional float '{s}'")))
    }
}

/// One `key=value` field from a header line.
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, PlanFormatError> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| bad(format!("missing field '{key}' in '{line}'")))
}

fn parsed<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, PlanFormatError> {
    s.parse()
        .map_err(|_| bad(format!("bad {what} value '{s}'")))
}

/// Reconstructs a compiled plan from its `HECATE-PLAN v1` text form.
///
/// # Errors
/// Returns [`PlanFormatError`] if the header, types, or function body are
/// malformed, or if the type count disagrees with the function length.
pub fn deserialize_plan(text: &str) -> Result<CompiledProgram, PlanFormatError> {
    let mut lines = text.lines().peekable();
    let header = lines.next().ok_or_else(|| bad("empty document"))?;
    if header.trim() != PLAN_HEADER {
        return Err(bad(format!("expected '{PLAN_HEADER}', got '{header}'")));
    }

    let scheme_line = lines.next().ok_or_else(|| bad("missing scheme line"))?;
    let scheme = parse_scheme(
        scheme_line
            .strip_prefix("scheme ")
            .ok_or_else(|| bad("missing 'scheme' line"))?
            .trim(),
    )?;

    let cfg_line = lines.next().ok_or_else(|| bad("missing config line"))?;
    let cfg = TypeConfig {
        waterline: parsed(field(cfg_line, "waterline")?, "waterline")?,
        rescale_bits: parsed(field(cfg_line, "rescale")?, "rescale")?,
        max_level: parse_opt_f64(field(cfg_line, "max_level")?)?.map(|v| v as usize),
        modulus_bits: parse_opt_f64(field(cfg_line, "modulus_bits")?)?,
    };

    let params_line = lines.next().ok_or_else(|| bad("missing params line"))?;
    let params = SelectedParams {
        q0_bits: parsed(field(params_line, "q0")?, "q0")?,
        sf_bits: parsed(field(params_line, "sf")?, "sf")?,
        chain_len: parsed(field(params_line, "chain")?, "chain")?,
        max_level: parsed(field(params_line, "max_level")?, "max_level")?,
        total_bits: parsed(field(params_line, "total")?, "total")?,
        degree: parsed(field(params_line, "degree")?, "degree")?,
        secure: parsed(field(params_line, "secure")?, "secure")?,
    };

    let est_line = lines.next().ok_or_else(|| bad("missing estimate line"))?;
    let estimated_latency_us: f64 = parsed(field(est_line, "latency_us")?, "latency_us")?;
    let estimated_noise_bits: f64 = parsed(field(est_line, "noise_bits")?, "noise_bits")?;

    let source_line = lines.next().ok_or_else(|| bad("missing source line"))?;
    let source_hash = u64::from_str_radix(field(source_line, "hash")?, 16)
        .map_err(|_| bad(format!("bad source hash in '{source_line}'")))?;

    // Optional `slot footprint=width:back:fwd:max_live` line. Plans saved
    // before slot batching existed lack it; their footprint is recomputed
    // from the parsed function below.
    let mut footprint = None;
    if lines
        .peek()
        .is_some_and(|l| l.starts_with("slot footprint"))
    {
        let fp_line = lines.next().expect("peeked");
        let raw = field(fp_line, "footprint")?;
        let parts: Vec<&str> = raw.split(':').collect();
        if parts.len() != 4 {
            return Err(bad(format!("bad slot footprint '{raw}'")));
        }
        footprint = Some(SlotFootprint {
            width: parsed(parts[0], "footprint width")?,
            back: parsed(parts[1], "footprint back")?,
            fwd: parsed(parts[2], "footprint fwd")?,
            max_live: parsed(parts[3], "footprint max_live")?,
        });
    }

    let count_line = lines.next().ok_or_else(|| bad("missing types line"))?;
    let n_types: usize = parsed(
        count_line
            .strip_prefix("types ")
            .ok_or_else(|| bad("missing 'types N' line"))?,
        "type count",
    )?;
    let mut types = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let line = lines.next().ok_or_else(|| bad("truncated type list"))?;
        let mut toks = line.split_whitespace();
        let ty = match toks.next() {
            Some("free") => Type::Free,
            Some(kind @ ("plain" | "cipher")) => {
                let scale: f64 = parsed(
                    toks.next().ok_or_else(|| bad("type missing scale"))?,
                    "scale",
                )?;
                let level: usize = parsed(
                    toks.next().ok_or_else(|| bad("type missing level"))?,
                    "level",
                )?;
                if kind == "plain" {
                    Type::Plain { scale, level }
                } else {
                    Type::Cipher { scale, level }
                }
            }
            other => return Err(bad(format!("unknown type line {other:?}"))),
        };
        types.push(ty);
    }

    let body: String = lines.collect::<Vec<_>>().join("\n");
    let func = parse_function(&body).map_err(|e| bad(format!("function body: {e}")))?;
    if func.len() != types.len() {
        return Err(bad(format!(
            "{} types for {} operations",
            types.len(),
            func.len()
        )));
    }

    let stats = CompileStats {
        estimated_latency_us,
        estimated_noise_bits,
        op_counts: op_histogram(&func),
        use_edges: use_edge_count(&func),
        ..CompileStats::default()
    };
    let footprint = footprint.unwrap_or_else(|| slot_footprint(&func));
    Ok(CompiledProgram {
        func,
        types,
        cfg,
        scheme,
        params,
        source_hash,
        footprint,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompileOptions;
    use crate::pipeline::compile;
    use hecate_ir::FunctionBuilder;

    fn compiled(scheme: Scheme) -> CompiledProgram {
        let mut b = FunctionBuilder::new("motivating", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let z = b.add(x2, y2);
        let c = b.splat(0.25);
        let z2 = b.mul(z, c);
        let z3 = b.mul(z2, z);
        b.output(z3);
        let mut opts = CompileOptions::with_waterline(20.0);
        opts.degree = Some(4096);
        compile(&b.finish(), scheme, &opts).unwrap()
    }

    #[test]
    fn roundtrip_preserves_the_artifact() {
        for scheme in Scheme::ALL {
            let prog = compiled(scheme);
            let text = serialize_plan(&prog);
            let back = deserialize_plan(&text).unwrap();
            assert_eq!(back.func, prog.func, "{scheme}");
            assert_eq!(back.types, prog.types, "{scheme}");
            assert_eq!(back.cfg, prog.cfg, "{scheme}");
            assert_eq!(back.params, prog.params, "{scheme}");
            assert_eq!(back.scheme, prog.scheme);
            assert_eq!(back.source_hash, prog.source_hash, "{scheme}");
            assert_eq!(back.footprint, prog.footprint, "{scheme}");
            assert_eq!(
                back.stats.estimated_latency_us,
                prog.stats.estimated_latency_us
            );
            assert_eq!(back.stats.op_counts, prog.stats.op_counts);
            // Serialization is deterministic.
            assert_eq!(text, serialize_plan(&back));
        }
    }

    #[test]
    fn reloaded_plan_passes_bound_verification() {
        let prog = compiled(Scheme::Hecate);
        let back = deserialize_plan(&serialize_plan(&prog)).unwrap();
        let tys =
            hecate_ir::verify::verify_plan(&back.func, &back.bound_config(), "reload").unwrap();
        assert_eq!(tys, back.types);
    }

    #[test]
    fn source_hash_names_the_submitted_function() {
        // Deep enough that scale management must insert operations, so
        // the compiled body provably differs from the source.
        let mut b = FunctionBuilder::new("pow8", 4);
        let x = b.input_cipher("x");
        let mut acc = x;
        for _ in 0..3 {
            acc = b.square(acc);
        }
        b.output(acc);
        let func = b.finish();
        let mut opts = CompileOptions::with_waterline(20.0);
        opts.degree = Some(4096);
        let prog = compile(&func, Scheme::Hecate, &opts).unwrap();
        assert_eq!(prog.source_hash, hecate_ir::hash::function_hash(&func));
        // The scale-managed body differs from the source — which is why
        // the source identity must be recorded explicitly.
        assert_ne!(hecate_ir::hash::function_hash(&prog.func), prog.source_hash);
        let back = deserialize_plan(&serialize_plan(&prog)).unwrap();
        assert_eq!(back.source_hash, prog.source_hash);
    }

    #[test]
    fn v1_plans_without_footprint_line_still_load() {
        // Plans serialized before slot batching existed have no
        // `slot footprint=` line; the loader must recompute it.
        let prog = compiled(Scheme::Hecate);
        let text = serialize_plan(&prog);
        let legacy: String = text
            .lines()
            .filter(|l| !l.starts_with("slot footprint"))
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(legacy, text, "footprint line must have been present");
        let back = deserialize_plan(&legacy).unwrap();
        assert_eq!(back.func, prog.func);
        assert_eq!(
            back.footprint, prog.footprint,
            "recomputed footprint must match the one the compiler recorded"
        );
        // Re-serializing a legacy plan upgrades it to the new form.
        assert_eq!(serialize_plan(&back), text);
        // A garbled footprint line is rejected, not silently recomputed.
        let garbled = text.replacen("slot footprint=", "slot footprint=x:", 1);
        assert!(deserialize_plan(&garbled).is_err());
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(deserialize_plan("").is_err());
        assert!(deserialize_plan("NOT-A-PLAN").is_err());
        let good = serialize_plan(&compiled(Scheme::Eva));
        // Wrong header version.
        let bad_hdr = good.replacen("v1", "v9", 1);
        assert!(deserialize_plan(&bad_hdr).is_err());
        // Truncated body.
        let cut: String = good.lines().take(8).collect::<Vec<_>>().join("\n");
        assert!(deserialize_plan(&cut).is_err());
        // Type count disagreeing with the function.
        let miscounted = good.replacen("types ", "types 1 // was ", 1);
        assert!(deserialize_plan(&miscounted).is_err());
    }
}
