//! The scale management space explorer (SMSE) — paper §VI-A.
//!
//! A *plan* assigns an optimization degree to every SMU edge. The planner
//! climbs the plan space by steepest ascent: from the incumbent plan it
//! generates one neighbour per edge (degree +1 there), lowers each through
//! the code generator, scores it with the performance estimator, and adopts
//! the best improvement; it stops at a local optimum (the "hilltop").
//!
//! The naïve explorer (Table III's comparison point) runs the same climb
//! over raw use–def edges instead of SMU edges — the same code path with a
//! per-use plan — and is capped by an evaluation budget since the paper
//! measured it at up to 649 hours.

use crate::codegen::{generate, GenOptions, PlanRef};
use crate::estimator::{estimate_latency_us, estimate_noise_bits};
use crate::options::{CompileError, CompileOptions, Objective};
use crate::params::{select_params, SelectedParams};
use crate::smu::SmuAnalysis;
use hecate_ir::types::Type;
use hecate_ir::Function;
use std::collections::HashMap;

/// One lowered-and-scored plan.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The generated function.
    pub func: Function,
    /// Its types.
    pub types: Vec<Type>,
    /// The selected parameters.
    pub params: SelectedParams,
    /// Estimated latency, microseconds.
    pub cost_us: f64,
    /// Estimated output noise (log2 standard deviation).
    pub noise_bits: f64,
    /// The objective value the explorer compared (depends on
    /// [`Objective`]).
    pub score: f64,
}

/// Outcome of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The winning candidate.
    pub best: Candidate,
    /// Improving iterations (Table III "epoch").
    pub epochs: usize,
    /// Plans evaluated, including infeasible ones (Table III "plans").
    pub plans_explored: usize,
    /// Whether the run stopped on the evaluation budget rather than at a
    /// local optimum (naïve mode only).
    pub capped: bool,
}

fn evaluate(
    func: &Function,
    plan: PlanRef<'_>,
    proactive: bool,
    opts: &CompileOptions,
) -> Result<Candidate, CompileError> {
    let g = GenOptions {
        cfg: opts.type_config(),
        proactive,
        plan,
        early_modswitch: opts.early_modswitch,
        rotate_cse: opts.canonicalize,
    };
    let (out, types) = generate(func, &g)?;
    // Re-check the full invariant set on every lowered candidate — the
    // emitter type-checks incrementally, but the verifier additionally
    // guards the waterline, budget, monotonicity, and rescale conditions
    // against bugs in the generation passes themselves.
    if opts.verify_passes {
        let pass = match (plan, proactive) {
            (PlanRef::None, false) => "eva-codegen",
            (PlanRef::None, true) => "pars-codegen",
            (PlanRef::Smu { .. }, false) => "smse-candidate(eva)",
            (PlanRef::Smu { .. }, true) => "smse-candidate(pars)",
            (PlanRef::Naive { .. }, false) => "naive-candidate(eva)",
            (PlanRef::Naive { .. }, true) => "naive-candidate(pars)",
        };
        hecate_ir::verify::verify_plan(&out, &g.cfg, pass)?;
    }
    let params = select_params(&out, &types, opts)?;
    let cost_us = estimate_latency_us(
        &out,
        &types,
        &opts.cost_model,
        params.chain_len,
        params.degree,
    );
    let noise_bits = estimate_noise_bits(&out, &types, params.degree);
    let score = match opts.objective {
        Objective::Latency => cost_us,
        Objective::LatencyAndError { error_weight } => {
            cost_us.max(1e-9).log2() + error_weight * noise_bits
        }
    };
    Ok(Candidate {
        func: out,
        types,
        params,
        cost_us,
        noise_bits,
        score,
    })
}

/// Compiles without exploration (EVA and PARS schemes).
///
/// # Errors
/// Propagates code-generation and parameter-selection failures.
pub fn compile_plain(
    func: &Function,
    proactive: bool,
    opts: &CompileOptions,
) -> Result<Candidate, CompileError> {
    evaluate(func, PlanRef::None, proactive, opts)
}

/// Runs SMSE over SMU edges (SMSE and HECATE schemes).
///
/// # Errors
/// Fails only if the *initial* (all-zero) plan cannot be lowered; bad
/// neighbours are simply discarded.
pub fn explore_smu(
    func: &Function,
    smu: &SmuAnalysis,
    proactive: bool,
    opts: &CompileOptions,
) -> Result<ExploreOutcome, CompileError> {
    let edge_count = smu.edges.len();
    let mut degrees = vec![0u32; edge_count];
    let mut best = evaluate(
        func,
        PlanRef::Smu {
            smu,
            degrees: &degrees,
        },
        proactive,
        opts,
    )?;
    let mut epochs = 0;
    let mut plans_explored = 1;
    let iter_counter = hecate_telemetry::metrics::global().counter("hecate_smse_iters_total");
    for iter in 0..opts.max_smse_iters {
        let mut span = hecate_telemetry::trace::span_with("smse-iter", || {
            vec![("iter", iter.into()), ("incumbent_us", best.cost_us.into())]
        });
        iter_counter.inc();
        let mut improved: Option<(usize, Candidate)> = None;
        for e in 0..edge_count {
            degrees[e] += 1;
            plans_explored += 1;
            if let Ok(cand) = evaluate(
                func,
                PlanRef::Smu {
                    smu,
                    degrees: &degrees,
                },
                proactive,
                opts,
            ) {
                if cand.score < best.score - 1e-9
                    && improved
                        .as_ref()
                        .map(|(_, c)| cand.score < c.score)
                        .unwrap_or(true)
                {
                    improved = Some((e, cand));
                }
            }
            degrees[e] -= 1;
        }
        match improved {
            Some((e, cand)) => {
                degrees[e] += 1;
                best = cand;
                epochs += 1;
                span.attr("improved", true.into());
                span.attr("best_us", best.cost_us.into());
            }
            None => {
                span.attr("improved", false.into());
                break;
            }
        }
    }
    Ok(ExploreOutcome {
        best,
        epochs,
        plans_explored,
        capped: false,
    })
}

/// Runs the naïve exploration over raw use–def edges, stopping after
/// `max_evaluations` plan evaluations if given.
///
/// # Errors
/// Fails only if the initial plan cannot be lowered.
pub fn explore_naive(
    func: &Function,
    proactive: bool,
    opts: &CompileOptions,
    max_evaluations: Option<usize>,
) -> Result<ExploreOutcome, CompileError> {
    // Use edges with cipher-valued defs (plain edges are not managed).
    let cipher = cipherness(func);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, op) in func.ops().iter().enumerate() {
        for v in op.operands() {
            if cipher[v.index()] {
                edges.push((v.0, i as u32));
            }
        }
    }
    let mut degrees: HashMap<(u32, u32), u32> = HashMap::new();
    let mut best = evaluate(func, PlanRef::Naive { degrees: &degrees }, proactive, opts)?;
    let mut epochs = 0;
    let mut plans_explored = 1;
    let mut capped = false;
    'outer: for _ in 0..opts.max_smse_iters {
        let mut improved: Option<((u32, u32), Candidate)> = None;
        for &edge in &edges {
            if let Some(buget) = max_evaluations {
                if plans_explored >= buget {
                    capped = true;
                    break 'outer;
                }
            }
            *degrees.entry(edge).or_insert(0) += 1;
            plans_explored += 1;
            if let Ok(cand) = evaluate(func, PlanRef::Naive { degrees: &degrees }, proactive, opts)
            {
                if cand.score < best.score - 1e-9
                    && improved
                        .as_ref()
                        .map(|(_, c)| cand.score < c.score)
                        .unwrap_or(true)
                {
                    improved = Some((edge, cand));
                }
            }
            let d = degrees.get_mut(&edge).expect("just inserted");
            *d -= 1;
            if *d == 0 {
                degrees.remove(&edge);
            }
        }
        match improved {
            Some((edge, cand)) => {
                *degrees.entry(edge).or_insert(0) += 1;
                best = cand;
                epochs += 1;
            }
            None => break,
        }
    }
    Ok(ExploreOutcome {
        best,
        epochs,
        plans_explored,
        capped,
    })
}

/// Whether each value is cipher-valued in the input program.
fn cipherness(func: &Function) -> Vec<bool> {
    let mut c: Vec<bool> = Vec::with_capacity(func.len());
    for op in func.ops() {
        let v = match op {
            hecate_ir::Op::Input { .. } => true,
            hecate_ir::Op::Const { .. } => false,
            _ => op.operands().iter().any(|v| c[v.index()]),
        };
        c.push(v);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smu;
    use hecate_ir::FunctionBuilder;

    fn motivating() -> Function {
        let mut b = FunctionBuilder::new("motivating", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let z = b.add(x2, y2);
        let z2 = b.mul(z, z);
        let z3 = b.mul(z2, z);
        b.output(z3);
        b.finish()
    }

    fn opts(w: f64) -> CompileOptions {
        let mut o = CompileOptions::with_waterline(w);
        o.degree = Some(4096); // fixed degree keeps cost comparisons stable
        o
    }

    #[test]
    fn smse_never_worse_than_base_policy() {
        let func = motivating();
        for proactive in [false, true] {
            for w in [20.0, 30.0] {
                let o = opts(w);
                let base = compile_plain(&func, proactive, &o).unwrap();
                let a = smu::analyze(&func, w);
                let explored = explore_smu(&func, &a, proactive, &o).unwrap();
                assert!(
                    explored.best.cost_us <= base.cost_us + 1e-9,
                    "explored {} > base {} (proactive={proactive}, w={w})",
                    explored.best.cost_us,
                    base.cost_us
                );
            }
        }
    }

    #[test]
    fn exploration_counts_plans_per_epoch() {
        let func = motivating();
        let o = opts(20.0);
        let a = smu::analyze(&func, 20.0);
        let out = explore_smu(&func, &a, true, &o).unwrap();
        // plans = 1 initial + (epochs+1 rounds)·edges, minus nothing.
        assert!(out.plans_explored > a.edges.len());
        assert_eq!(
            out.plans_explored,
            1 + (out.epochs + 1) * a.edges.len(),
            "steepest ascent evaluates every edge each round"
        );
    }

    #[test]
    fn naive_explores_more_plans_than_smu() {
        let func = motivating();
        let o = opts(20.0);
        let a = smu::analyze(&func, 20.0);
        let smu_out = explore_smu(&func, &a, false, &o).unwrap();
        let naive_out = explore_naive(&func, false, &o, None).unwrap();
        assert!(
            naive_out.plans_explored >= smu_out.plans_explored,
            "naive {} < smu {}",
            naive_out.plans_explored,
            smu_out.plans_explored
        );
        // Both reach feasible programs.
        assert!(naive_out.best.cost_us > 0.0);
    }

    #[test]
    fn naive_budget_caps_run() {
        let func = motivating();
        let o = opts(20.0);
        let out = explore_naive(&func, false, &o, Some(5)).unwrap();
        assert!(out.capped);
        assert!(out.plans_explored <= 6);
    }

    #[test]
    fn best_plan_type_checks_and_has_params() {
        let func = motivating();
        let o = opts(20.0);
        let a = smu::analyze(&func, 20.0);
        let out = explore_smu(&func, &a, true, &o).unwrap();
        hecate_ir::types::infer_types(&out.best.func, &o.type_config()).unwrap();
        assert!(out.best.params.chain_len >= 1);
    }
}
