//! RNS parameter selection for a compiled program.
//!
//! Given the scale-managed program, selection finds the shortest modulus
//! chain satisfying C1 at every level: the available modulus at level `k`
//! is `q0 + S_f·(chain_len − 1 − k)` bits, and every value at level `k`
//! needs its scale plus a decode margin to fit. A lower cumulative scale
//! therefore yields a shorter chain — this is exactly how proactive
//! rescaling translates into latency (the paper's "cumulative scale defines
//! the initial level of the program").

use crate::options::{CompileError, CompileOptions};
use hecate_ir::types::Type;
use hecate_ir::Function;

/// The base-prime search range: NTT-friendly primes must fit in a word and
/// stay clear of degenerate tiny moduli.
const Q0_MIN_BITS: f64 = 24.0;
const Q0_MAX_BITS: f64 = 60.0;

/// The selected RNS parameters for one compiled program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectedParams {
    /// Base prime size (bits).
    pub q0_bits: u32,
    /// Rescale prime size `S_f` (bits).
    pub sf_bits: u32,
    /// Total chain length (base + rescale primes).
    pub chain_len: usize,
    /// Highest rescaling level any value reaches.
    pub max_level: usize,
    /// Total modulus bits including the special key-switch prime.
    pub total_bits: u32,
    /// Ring degree: the configured one, or the smallest 128-bit-secure
    /// degree for `total_bits`.
    pub degree: usize,
    /// Whether (degree, total_bits) meets the 128-bit security table.
    pub secure: bool,
}

/// Security bound table (mirrors `hecate_ckks::params::max_modulus_bits_128`;
/// duplicated here so the compiler crate stays backend-independent).
fn max_modulus_bits_128(degree: usize) -> Option<u32> {
    match degree {
        1024 => Some(27),
        2048 => Some(54),
        4096 => Some(109),
        8192 => Some(218),
        16384 => Some(438),
        32768 => Some(881),
        _ => None,
    }
}

fn min_secure_degree(total_bits: u32) -> Option<usize> {
    [1024usize, 2048, 4096, 8192, 16384, 32768]
        .into_iter()
        .find(|&d| max_modulus_bits_128(d).is_some_and(|m| total_bits <= m))
}

/// Selects the shortest feasible modulus chain for a typed program.
///
/// # Errors
/// Returns [`CompileError::NoParameters`] if some value's scale cannot fit
/// any chain within `opts.max_chain_len`.
pub fn select_params(
    func: &Function,
    types: &[Type],
    opts: &CompileOptions,
) -> Result<SelectedParams, CompileError> {
    let sf = opts.rescale_bits;
    let margin = opts.margin_bits;
    // Scale requirement per level.
    let mut max_level = 0usize;
    let mut need: Vec<f64> = Vec::new();
    for v in func.value_ids() {
        let t = types[v.index()];
        if let (Some(scale), Some(level)) = (t.scale(), t.level()) {
            if level >= need.len() {
                need.resize(level + 1, 0.0);
            }
            need[level] = need[level].max(scale + margin);
            max_level = max_level.max(level);
        }
    }
    if need.is_empty() {
        return Err(CompileError::NoParameters {
            reason: "program has no scaled values".into(),
        });
    }
    // Find the smallest chain length ≥ max_level+1 for which a base prime
    // in [Q0_MIN, Q0_MAX] covers every level's requirement.
    for chain_len in (max_level + 1)..=opts.max_chain_len {
        // q0 + sf·(chain_len−1−k) ≥ need[k]  for all k.
        let q0_req = need
            .iter()
            .enumerate()
            .map(|(k, &n)| n - sf * (chain_len - 1 - k) as f64)
            .fold(Q0_MIN_BITS, f64::max);
        if q0_req <= Q0_MAX_BITS {
            let q0_bits = q0_req.ceil() as u32;
            let sf_bits = sf.round() as u32;
            let special = q0_bits.max(sf_bits);
            let total_bits = q0_bits + sf_bits * (chain_len as u32 - 1) + special;
            let (degree, secure) = match opts.degree {
                Some(d) => (d, max_modulus_bits_128(d).is_some_and(|m| total_bits <= m)),
                None => match min_secure_degree(total_bits) {
                    Some(d) => (d, true),
                    None => (32768, false),
                },
            };
            return Ok(SelectedParams {
                q0_bits,
                sf_bits,
                chain_len,
                max_level,
                total_bits,
                degree,
                secure,
            });
        }
    }
    Err(CompileError::NoParameters {
        reason: format!(
            "scale requirements {need:?} exceed a {}-prime chain",
            opts.max_chain_len
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::types::{infer_types, TypeConfig};
    use hecate_ir::{Function, Op};

    fn opts(w: f64, sf: f64) -> CompileOptions {
        let mut o = CompileOptions::with_waterline(w);
        o.rescale_bits = sf;
        o
    }

    fn typed(f: &Function, w: f64, sf: f64) -> Vec<Type> {
        infer_types(f, &TypeConfig::new(w, sf)).unwrap()
    }

    #[test]
    fn simple_program_gets_minimal_chain() {
        // x² at scale 40, level 0, margin 22 → need 62 bits at level 0;
        // chain of 1 would need q0=62 > 60 → chain 2 with q0 = 62−60 → 24 min.
        let mut f = Function::new("p", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        f.mark_output("o", m);
        let tys = typed(&f, 20.0, 60.0);
        let p = select_params(&f, &tys, &opts(20.0, 60.0)).unwrap();
        assert_eq!(p.chain_len, 2);
        assert_eq!(p.max_level, 0);
        assert_eq!(p.q0_bits, 24);
    }

    #[test]
    fn rescaled_program_needs_shorter_chain_than_unrescaled() {
        // Same computation, with and without a rescale of the result.
        let mut raw = Function::new("raw", 4);
        let x = raw.push(Op::Input { name: "x".into() });
        let m = raw.push(Op::Mul(x, x));
        let m2 = raw.push(Op::Mul(m, m)); // scale 80 at level 0
        raw.mark_output("o", m2);

        let mut rs = Function::new("rs", 4);
        let x = rs.push(Op::Input { name: "x".into() });
        let m = rs.push(Op::Mul(x, x));
        let m2 = rs.push(Op::Mul(m, m));
        let r = rs.push(Op::Rescale(m2)); // scale 20 at level 1
        rs.mark_output("o", r);

        let o = opts(20.0, 60.0);
        let p_raw = select_params(&raw, &typed(&raw, 20.0, 60.0), &o).unwrap();
        let p_rs = select_params(&rs, &typed(&rs, 20.0, 60.0), &o).unwrap();
        assert!(p_raw.total_bits >= p_rs.total_bits);
    }

    #[test]
    fn degree_selection_follows_security_table() {
        let mut f = Function::new("p", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        f.mark_output("o", m);
        let tys = typed(&f, 20.0, 60.0);
        let p = select_params(&f, &tys, &opts(20.0, 60.0)).unwrap();
        // total = 24 + 60 + 60 = 144 bits → degree 8192.
        assert_eq!(p.total_bits, 144);
        assert_eq!(p.degree, 8192);
        assert!(p.secure);
    }

    #[test]
    fn fixed_degree_reports_security_honestly() {
        let mut f = Function::new("p", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        f.mark_output("o", m);
        let tys = typed(&f, 20.0, 60.0);
        let mut o = opts(20.0, 60.0);
        o.degree = Some(2048);
        let p = select_params(&f, &tys, &o).unwrap();
        assert_eq!(p.degree, 2048);
        assert!(!p.secure);
    }

    #[test]
    fn infeasible_scales_rejected() {
        let mut f = Function::new("p", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let mut cur = x;
        // 2^5 squarings without rescaling: scale 20·32 = 640 bits at level 0.
        for _ in 0..5 {
            cur = f.push(Op::Mul(cur, cur));
        }
        f.mark_output("o", cur);
        let tys = typed(&f, 20.0, 60.0);
        let mut o = opts(20.0, 60.0);
        o.max_chain_len = 4;
        assert!(matches!(
            select_params(&f, &tys, &o),
            Err(CompileError::NoParameters { .. })
        ));
    }
}
