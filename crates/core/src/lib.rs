//! HECATE's performance-aware scale management (the paper's contribution).
//!
//! This crate implements §V–§VI of *"HECATE: Performance-Aware Scale
//! Optimization for Homomorphic Encryption Compiler"* (CGO 2022):
//!
//! - [`codegen`] — the two code-generation policies: EVA's reactive
//!   waterline rescaling (the baseline) and HECATE's proactive rescaling
//!   algorithm PARS (Algorithm 2), plus plan application and the
//!   early-modswitch motion;
//! - [`smu`] — scale management unit generation (Algorithm 1), which
//!   shrinks the exploration space from use–def edges to unit edges;
//! - [`planner`] — the hill-climbing scale management space explorer
//!   (SMSE), including the naïve per-use variant used for Table III;
//! - [`estimator`] — the static performance estimator (§VI-C), analytic or
//!   profiled;
//! - [`params`] — RNS modulus-chain and ring-degree selection under the
//!   128-bit security table;
//! - [`pipeline`] — the [`compile`] entry point, the
//!   [`compile_with_fallback`] graceful-degradation driver, and the
//!   waterline sweep;
//! - [`serialize`] — exact text (de)serialization of compiled plans, so
//!   the serving layer can persist and reload cache artifacts.
//!
//! Every pass output is re-verified against the paper's invariants (see
//! [`hecate_ir::verify`]); failures surface as structured
//! [`CompileError::Verify`] values naming the pass, operation, and
//! violated invariant. [`options::CompileFault`] injects compiler
//! sabotage for testing those guard rails.
//!
//! The four schemes of the paper's evaluation are selected with [`Scheme`]:
//! `Eva`, `Pars`, `Smse`, and `Hecate`.
//!
//! # Example
//!
//! ```
//! use hecate_compiler::{compile, CompileOptions, Scheme};
//! use hecate_ir::FunctionBuilder;
//!
//! // The paper's running example: (x² + y²)³.
//! let mut b = FunctionBuilder::new("motivating", 8);
//! let x = b.input_cipher("x");
//! let y = b.input_cipher("y");
//! let x2 = b.square(x);
//! let y2 = b.square(y);
//! let z = b.add(x2, y2);
//! let z2 = b.mul(z, z);
//! let z3 = b.mul(z2, z);
//! b.output(z3);
//! let func = b.finish();
//!
//! let eva = compile(&func, Scheme::Eva, &CompileOptions::with_waterline(20.0))?;
//! let hecate = compile(&func, Scheme::Hecate, &CompileOptions::with_waterline(20.0))?;
//! assert!(hecate.stats.estimated_latency_us <= eva.stats.estimated_latency_us);
//! # Ok::<(), hecate_compiler::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod estimator;
pub mod options;
pub mod params;
pub mod pipeline;
pub mod planner;
pub mod serialize;
pub mod smu;

pub use estimator::{
    min_waterline_margin_bits, op_cost_infos, traced_total_us, CostModel, CostOp, CostTable,
    OpCostInfo,
};
pub use options::{
    CompileError, CompileFault, CompileFaultKind, CompileOptions, CompileStats, CompiledProgram,
    FallbackRung, Scheme,
};
pub use params::SelectedParams;
pub use pipeline::{compile, compile_with_fallback, default_waterlines, sweep_waterlines};
pub use serialize::{deserialize_plan, serialize_plan, PlanFormatError};
