//! The end-to-end compilation pipeline, the graceful-degradation fallback
//! driver, and the waterline sweep driver.

use crate::options::{
    CompileError, CompileOptions, CompileStats, CompiledProgram, FallbackRung, Scheme,
};
use crate::planner::{compile_plain, explore_smu, Candidate};
use crate::smu;
use hecate_ir::analysis::{op_histogram, use_edge_count};
use hecate_ir::verify::{verify_input, verify_plan};
use hecate_ir::Function;
use hecate_telemetry::trace;

/// Compiles an input program under one of the four schemes (§VII-A).
///
/// # Errors
/// Returns a [`CompileError`] if the input is malformed, a transformation
/// is ill-typed, or no parameter set fits the resulting scales.
///
/// # Example
/// ```
/// use hecate_compiler::{compile, CompileOptions, Scheme};
/// use hecate_ir::FunctionBuilder;
///
/// let mut b = FunctionBuilder::new("square", 4);
/// let x = b.input_cipher("x");
/// let sq = b.square(x);
/// b.output(sq);
/// let func = b.finish();
///
/// let compiled = compile(&func, Scheme::Hecate, &CompileOptions::with_waterline(20.0))?;
/// assert!(compiled.stats.estimated_latency_us > 0.0);
/// # Ok::<(), hecate_compiler::CompileError>(())
/// ```
pub fn compile(
    func: &Function,
    scheme: Scheme,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut compile_span = trace::span_with("compile", || {
        vec![
            ("func", func.name.as_str().into()),
            ("scheme", scheme.to_string().into()),
        ]
    });
    hecate_telemetry::metrics::global()
        .counter("hecate_compiles_total")
        .inc();
    if opts.verify_passes {
        let _s = trace::span("pass:verify-input");
        verify_input(func, "frontend")?;
    }
    // Hash the function as submitted (before canonicalization): reloading
    // a saved plan compares this against the re-parsed source file.
    let source_hash = hecate_ir::hash::function_hash(func);
    let canonical;
    let func = if opts.canonicalize {
        let _s = trace::span("pass:canonicalize");
        canonical = hecate_ir::transform::canonicalize(func);
        if opts.verify_passes {
            verify_input(&canonical, "canonicalize")?;
        }
        &canonical
    } else {
        func
    };
    let analysis = {
        let _s = trace::span("pass:smu-analyze");
        smu::analyze(func, opts.waterline_bits)
    };
    let (mut candidate, epochs, plans_explored) = if scheme.explores() {
        let _s = trace::span("pass:explore");
        let out = explore_smu(func, &analysis, scheme.proactive(), opts)?;
        (out.best, out.epochs, out.plans_explored)
    } else {
        let _s = trace::span("pass:codegen");
        (compile_plain(func, scheme.proactive(), opts)?, 0, 1)
    };
    {
        let _s = trace::span("pass:final-verify");
        apply_fault_and_verify(&mut candidate, scheme, opts)?;
    }
    compile_span.attr("est_us", candidate.cost_us.into());
    compile_span.attr("plans_explored", plans_explored.into());
    let stats = CompileStats {
        estimated_latency_us: candidate.cost_us,
        estimated_noise_bits: candidate.noise_bits,
        epochs,
        plans_explored,
        smu_units: analysis.unit_count,
        smu_edges: analysis.edges.len(),
        use_edges: use_edge_count(func),
        op_counts: op_histogram(&candidate.func),
        fallback: None,
        fallback_attempts: 0,
    };
    let footprint = hecate_ir::slot_footprint(&candidate.func);
    Ok(CompiledProgram {
        func: candidate.func,
        types: candidate.types,
        cfg: opts.type_config(),
        scheme,
        params: candidate.params,
        source_hash,
        footprint,
        stats,
    })
}

/// Applies any configured [`CompileFault`](crate::options::CompileFault)
/// to the winning candidate, then runs the final whole-plan verification.
///
/// The fault lands *before* the final check, so with verification enabled
/// every injected compiler fault surfaces as [`CompileError::Verify`]
/// rather than a miscompiled program.
fn apply_fault_and_verify(
    candidate: &mut Candidate,
    scheme: Scheme,
    opts: &CompileOptions,
) -> Result<(), CompileError> {
    if let Some(fault) = &opts.fault {
        if fault.applies_to(scheme) {
            if let Some(sabotaged) = fault.apply(&candidate.func) {
                candidate.func = sabotaged;
            }
        }
    }
    if opts.verify_passes {
        // The final check binds C1 to the *selected* modulus chain, so a
        // plan inconsistent with its own parameters cannot ship.
        let cfg = crate::options::bound_config(&opts.type_config(), &candidate.params);
        candidate.types = verify_plan(&candidate.func, &cfg, "final-plan")?;
    }
    Ok(())
}

/// Compiles with graceful degradation: the requested scheme first, then
/// progressively simpler scale management (PARS, then the EVA baseline),
/// and finally an EVA recompile at a raised waterline. The first rung that
/// compiles wins; its position on the ladder is recorded in
/// [`CompileStats::fallback`].
///
/// # Errors
/// Returns the *first* rung's error if every rung fails — the primary
/// scheme's diagnosis is the one worth reporting.
pub fn compile_with_fallback(
    func: &Function,
    scheme: Scheme,
    opts: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    // Raise the waterline by half the rescale factor, staying inside the
    // sweep range the paper explores (15–50 bits).
    let raised = (opts.waterline_bits + opts.rescale_bits / 2.0).min(50.0);
    let mut ladder: Vec<(FallbackRung, Scheme, f64)> =
        vec![(FallbackRung::Primary, scheme, opts.waterline_bits)];
    if scheme.explores() && scheme != Scheme::Pars {
        ladder.push((FallbackRung::Pars, Scheme::Pars, opts.waterline_bits));
    }
    if scheme != Scheme::Eva {
        ladder.push((FallbackRung::Eva, Scheme::Eva, opts.waterline_bits));
    }
    if raised > opts.waterline_bits {
        ladder.push((FallbackRung::RaisedWaterline, Scheme::Eva, raised));
    }

    let mut first_error = None;
    for (attempts, (rung, rung_scheme, waterline)) in ladder.into_iter().enumerate() {
        let mut o = opts.clone();
        o.waterline_bits = waterline;
        match compile(func, rung_scheme, &o) {
            Ok(mut compiled) => {
                compiled.stats.fallback = Some(rung);
                compiled.stats.fallback_attempts = attempts;
                return Ok(compiled);
            }
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    Err(first_error.expect("ladder always has at least one rung"))
}

/// Compiles one program at every waterline and returns the results paired
/// with their waterlines (failures are kept: a waterline can be infeasible).
///
/// The paper sweeps 36 waterlines per scheme and picks the fastest whose
/// measured error stays within the bound; error filtering happens in the
/// backend, so this helper only produces the candidates.
pub fn sweep_waterlines(
    func: &Function,
    scheme: Scheme,
    waterlines: &[f64],
    opts: &CompileOptions,
) -> Vec<(f64, Result<CompiledProgram, CompileError>)> {
    waterlines
        .iter()
        .map(|&w| {
            let mut o = opts.clone();
            o.waterline_bits = w;
            (w, compile(func, scheme, &o))
        })
        .collect()
}

/// The default sweep: 36 waterlines from 15 to 50 bits, matching the
/// paper's 36-point sweep.
pub fn default_waterlines() -> Vec<f64> {
    (15..51).map(|w| w as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::FunctionBuilder;

    fn motivating() -> Function {
        let mut b = FunctionBuilder::new("motivating", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let z = b.add(x2, y2);
        let z2 = b.mul(z, z);
        let z3 = b.mul(z2, z);
        b.output(z3);
        b.finish()
    }

    fn opts(w: f64) -> CompileOptions {
        let mut o = CompileOptions::with_waterline(w);
        o.degree = Some(4096);
        o
    }

    #[test]
    fn all_schemes_compile_the_motivating_example() {
        let func = motivating();
        for scheme in Scheme::ALL {
            let c = compile(&func, scheme, &opts(20.0)).unwrap();
            assert!(c.stats.estimated_latency_us > 0.0, "{scheme}");
            assert!(c.params.chain_len >= 1);
            assert_eq!(c.scheme, scheme);
            assert!(c.stats.use_edges >= 10);
            assert!(c.stats.smu_units >= 3);
        }
    }

    #[test]
    fn hecate_at_least_as_fast_as_eva_in_estimate() {
        let func = motivating();
        let o = opts(20.0);
        let eva = compile(&func, Scheme::Eva, &o).unwrap();
        let hec = compile(&func, Scheme::Hecate, &o).unwrap();
        assert!(
            hec.stats.estimated_latency_us <= eva.stats.estimated_latency_us + 1e-9,
            "HECATE {} vs EVA {}",
            hec.stats.estimated_latency_us,
            eva.stats.estimated_latency_us
        );
    }

    #[test]
    fn sweep_produces_one_result_per_waterline() {
        let func = motivating();
        let ws = [18.0, 22.0, 26.0];
        let results = sweep_waterlines(&func, Scheme::Pars, &ws, &opts(20.0));
        assert_eq!(results.len(), 3);
        for (w, r) in &results {
            let c = r.as_ref().expect("feasible waterline");
            assert!((c.cfg.waterline - w).abs() < 1e-12);
        }
    }

    #[test]
    fn default_sweep_has_36_points() {
        assert_eq!(default_waterlines().len(), 36);
    }

    #[test]
    fn compiled_stats_populated() {
        let func = motivating();
        let c = compile(&func, Scheme::Hecate, &opts(20.0)).unwrap();
        assert!(c.stats.plans_explored >= 1);
        assert!(c.stats.op_counts.contains_key("mul"));
    }
}
