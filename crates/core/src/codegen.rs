//! Scale-management code generation.
//!
//! One generator serves the paper's two code-generation policies:
//!
//! - **Waterline rescaling** (EVA, §II-B): *reactive* — after each
//!   multiplication, rescale the result while the rescaled scale stays
//!   above the waterline; match levels with `modswitch` and add-scales with
//!   `upscale`.
//! - **Proactive rescaling** (PARS, §VI-B, Algorithm 2): operate on the
//!   *operands* of each operation — (a) encode free operands, (b) rescale
//!   while possible, (c) match levels with `modswitch`/`downscale`,
//!   (d) match add-scales with `upscale`, (e) downscale both operands of an
//!   oversized multiplication.
//!
//! On top of either policy, a scale-management *plan* (from SMSE, §VI-A)
//! assigns each SMU edge an optimization degree: that many extra
//! scale-management operations are applied to values crossing the edge,
//! each chosen by the scale rule (rescale if the waterline allows,
//! otherwise downscale if there is scale to shed, otherwise modswitch).
//!
//! All emissions are type-checked incrementally; every helper is memoized
//! per value so parallel uses share the inserted operations.

use crate::options::CompileError;
use crate::smu::SmuAnalysis;
use hecate_ir::types::{infer_op, infer_types, Type, TypeConfig, SCALE_EPS};
use hecate_ir::{ConstData, Function, Op, ValueId};
use std::collections::HashMap;

/// A plan reference: none (pure policy), SMU-edge degrees, or per-use
/// degrees (the naïve exploration of Table III).
#[derive(Clone, Copy)]
pub enum PlanRef<'a> {
    /// No extra operations.
    None,
    /// Degrees per SMU edge (indexed like `smu.edges`).
    Smu {
        /// The unit analysis.
        smu: &'a SmuAnalysis,
        /// Degree per edge.
        degrees: &'a [u32],
    },
    /// Degrees per individual use–def edge `(def value, user op index)`.
    Naive {
        /// Degree per use edge.
        degrees: &'a HashMap<(u32, u32), u32>,
    },
}

impl PlanRef<'_> {
    fn degree(&self, def: ValueId, user_index: usize, smu_result_unit: Option<u32>) -> u32 {
        match self {
            PlanRef::None => 0,
            PlanRef::Smu { smu, degrees } => {
                let (Some(from), Some(to)) = (smu.unit_of[def.index()], smu_result_unit) else {
                    return 0;
                };
                if from == to {
                    return 0;
                }
                smu.edge_index(from, to).map(|e| degrees[e]).unwrap_or(0)
            }
            PlanRef::Naive { degrees } => degrees
                .get(&(def.0, user_index as u32))
                .copied()
                .unwrap_or(0),
        }
    }
}

/// Generation settings for one codegen run.
pub struct GenOptions<'a> {
    /// Waterline / rescale-factor environment.
    pub cfg: TypeConfig,
    /// `true` for PARS, `false` for EVA's waterline rescaling.
    pub proactive: bool,
    /// The scale-management plan to apply.
    pub plan: PlanRef<'a>,
    /// Apply the early-modswitch motion after generation.
    pub early_modswitch: bool,
    /// Canonicalize and dedupe rotations during emission (wrapped steps
    /// reduce mod the logical width; congruent rotations of one value are
    /// CSE'd). Follows [`crate::CompileOptions::canonicalize`].
    pub rotate_cse: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MemoKey {
    Rescale(ValueId),
    ModSwitch(ValueId),
    Downscale(ValueId),
    /// Target scale keyed by rounded milli-bits.
    Upscale(ValueId, u64),
    Encode(ValueId, u64, usize),
}

/// Incremental, type-checked function emission.
struct Emitter {
    out: Function,
    types: Vec<Type>,
    cfg: TypeConfig,
    memo: HashMap<MemoKey, ValueId>,
}

impl Emitter {
    fn new(name: &str, vec_size: usize, cfg: TypeConfig) -> Self {
        Emitter {
            out: Function::new(name, vec_size),
            types: Vec::new(),
            cfg,
            memo: HashMap::new(),
        }
    }

    fn emit(&mut self, op: Op) -> Result<ValueId, CompileError> {
        let at = ValueId(self.out.len() as u32);
        let ty = infer_op(&op, &self.types, &self.cfg, at)?;
        self.types.push(ty);
        Ok(self.out.push(op))
    }

    fn ty(&self, v: ValueId) -> Type {
        self.types[v.index()]
    }

    // INVARIANT: `scale`/`level` are only called on values the caller has
    // already established as non-free (`is_free` is checked first, or the
    // value came out of `encode`/a scale-management op, which always yield
    // scaled types). A panic here is an emitter bug, not bad user input —
    // malformed input is rejected by `verify_structure`/`infer_op` instead.
    fn scale(&self, v: ValueId) -> f64 {
        self.ty(v).scale().expect("scaled value")
    }

    fn level(&self, v: ValueId) -> usize {
        self.ty(v).level().expect("scaled value")
    }

    fn is_free(&self, v: ValueId) -> bool {
        matches!(self.ty(v), Type::Free)
    }

    fn memoized(&mut self, key: MemoKey, op: Op) -> Result<ValueId, CompileError> {
        if let Some(&v) = self.memo.get(&key) {
            return Ok(v);
        }
        let v = self.emit(op)?;
        self.memo.insert(key, v);
        Ok(v)
    }

    fn rescale(&mut self, v: ValueId) -> Result<ValueId, CompileError> {
        self.memoized(MemoKey::Rescale(v), Op::Rescale(v))
    }

    fn modswitch(&mut self, v: ValueId) -> Result<ValueId, CompileError> {
        self.memoized(MemoKey::ModSwitch(v), Op::ModSwitch(v))
    }

    fn downscale(&mut self, v: ValueId) -> Result<ValueId, CompileError> {
        self.memoized(MemoKey::Downscale(v), Op::Downscale(v))
    }

    fn upscale(&mut self, v: ValueId, target_bits: f64) -> Result<ValueId, CompileError> {
        if (self.scale(v) - target_bits).abs() <= SCALE_EPS {
            return Ok(v);
        }
        let key = MemoKey::Upscale(v, (target_bits * 1000.0).round() as u64);
        self.memoized(
            key,
            Op::Upscale {
                value: v,
                target_bits,
            },
        )
    }

    fn encode(
        &mut self,
        free: ValueId,
        scale_bits: f64,
        level: usize,
    ) -> Result<ValueId, CompileError> {
        let key = MemoKey::Encode(free, (scale_bits * 1000.0).round() as u64, level);
        self.memoized(
            key,
            Op::Encode {
                value: free,
                scale_bits,
                level,
            },
        )
    }

    /// `rescale` is applicable: the result would stay at or above the
    /// waterline.
    fn can_rescale(&self, v: ValueId) -> bool {
        self.scale(v) - self.cfg.rescale_bits >= self.cfg.waterline - SCALE_EPS
    }

    /// Exhaustively rescale (the "while possible" loops of both policies).
    fn rescale_fully(&mut self, mut v: ValueId) -> Result<ValueId, CompileError> {
        while self.can_rescale(v) {
            v = self.rescale(v)?;
        }
        Ok(v)
    }

    /// One plan-driven scale-management step, chosen by the scale rule.
    fn plan_step(&mut self, v: ValueId) -> Result<ValueId, CompileError> {
        if self.can_rescale(v) {
            self.rescale(v)
        } else if self.scale(v) > self.cfg.waterline + SCALE_EPS {
            self.downscale(v)
        } else {
            self.modswitch(v)
        }
    }

    /// Raise the level of `v` (cipher) by one, per PARS level matching:
    /// modswitch at the waterline, downscale above it.
    fn raise_level_proactive(&mut self, v: ValueId) -> Result<ValueId, CompileError> {
        if self.scale(v) > self.cfg.waterline + SCALE_EPS && !self.can_rescale(v) {
            self.downscale(v)
        } else if self.can_rescale(v) {
            self.rescale(v)
        } else {
            self.modswitch(v)
        }
    }
}

/// Folds an operation on free constants (constant folding keeps input
/// programs flexible about scalar pre-processing).
fn fold_free(out_vec: usize, op: &Op, data: &[&ConstData]) -> ConstData {
    let get = |d: &ConstData, i: usize| d.at(i);
    match op {
        Op::Add(..) => ConstData::vector(
            (0..out_vec)
                .map(|i| get(data[0], i) + get(data[1], i))
                .collect(),
        ),
        Op::Sub(..) => ConstData::vector(
            (0..out_vec)
                .map(|i| get(data[0], i) - get(data[1], i))
                .collect(),
        ),
        Op::Mul(..) => ConstData::vector(
            (0..out_vec)
                .map(|i| get(data[0], i) * get(data[1], i))
                .collect(),
        ),
        Op::Negate(..) => ConstData::vector((0..out_vec).map(|i| -get(data[0], i)).collect()),
        Op::Rotate { step, .. } => ConstData::vector(
            (0..out_vec)
                .map(|i| get(data[0], (i + step) % out_vec))
                .collect(),
        ),
        // UNREACHABLE: the only call sites are the Negate/Rotate/Add/Sub/Mul
        // arms of `generate`'s dispatch, which are exactly the arms above.
        _ => unreachable!("fold_free on non-foldable op"),
    }
}

/// Runs scale-management code generation over an input program.
///
/// # Errors
/// Returns a [`CompileError`] if the input is malformed or a transformation
/// would violate the type system (a planner bug, or an infeasible plan that
/// the explorer must discard).
pub fn generate(func: &Function, g: &GenOptions) -> Result<(Function, Vec<Type>), CompileError> {
    func.verify_structure()?;
    let cfg = g.cfg;
    let mut em = Emitter::new(&func.name, func.vec_size, cfg);
    let mut map: Vec<Option<ValueId>> = vec![None; func.len()];
    // Rotation CSE: two rotations of the same resolved value by congruent
    // steps (mod the logical width) are the same value — emit one and
    // reuse it, so the backend neither re-rotates nor requests spare
    // Galois keys for wrapped steps like `vec_size + k`.
    let mut rotate_memo: HashMap<(ValueId, usize), ValueId> = HashMap::new();

    for (i, op) in func.ops().iter().enumerate() {
        // The unit of this op's result, for SMU plan lookups.
        let result_unit = match g.plan {
            PlanRef::Smu { smu, .. } => smu.unit_of.get(i).copied().flatten(),
            _ => None,
        };
        // Resolve an operand: map to the new function, then apply the
        // plan's optimization degree for this edge.
        let resolve = |em: &mut Emitter, v: ValueId| -> Result<ValueId, CompileError> {
            // UNREACHABLE expect: `verify_structure` (top of `generate`)
            // rejects forward/dangling references, so by the time op `i`
            // is visited every operand slot below `i` has been filled.
            let mut cur = map[v.index()].expect("operand defined earlier");
            if !em.is_free(cur) && em.ty(cur).is_cipher() {
                let d = g.plan.degree(v, i, result_unit);
                for _ in 0..d {
                    cur = em.plan_step(cur)?;
                }
            }
            Ok(cur)
        };

        let new_id = match op {
            Op::Input { name } => em.emit(Op::Input { name: name.clone() })?,
            Op::Const { data } => em.emit(Op::Const { data: data.clone() })?,
            Op::Encode { .. }
            | Op::Rescale(_)
            | Op::ModSwitch(_)
            | Op::Upscale { .. }
            | Op::Downscale(_) => {
                return Err(CompileError::UnsupportedInput {
                    reason: format!(
                        "input programs must not contain scale management ({})",
                        op.mnemonic()
                    ),
                })
            }
            Op::Negate(a) => {
                let a = resolve(&mut em, *a)?;
                if em.is_free(a) {
                    let folded = fold_free(func.vec_size, op, &[const_data(&em, a)]);
                    em.emit(Op::Const { data: folded })?
                } else {
                    em.emit(Op::Negate(a))?
                }
            }
            Op::Rotate { value, step } => {
                let a = resolve(&mut em, *value)?;
                if em.is_free(a) {
                    let folded = fold_free(func.vec_size, op, &[const_data(&em, a)]);
                    em.emit(Op::Const { data: folded })?
                } else if !g.rotate_cse {
                    em.emit(Op::Rotate {
                        value: a,
                        step: *step,
                    })?
                } else {
                    let s = step % func.vec_size;
                    if s == 0 {
                        // Full-width rotation is the identity.
                        a
                    } else if let Some(&prev) = rotate_memo.get(&(a, s)) {
                        prev
                    } else {
                        let id = em.emit(Op::Rotate { value: a, step: s })?;
                        rotate_memo.insert((a, s), id);
                        id
                    }
                }
            }
            Op::Add(a0, b0) | Op::Sub(a0, b0) | Op::Mul(a0, b0) => {
                let a = resolve(&mut em, *a0)?;
                let b = resolve(&mut em, *b0)?;
                if em.is_free(a) && em.is_free(b) {
                    let folded =
                        fold_free(func.vec_size, op, &[const_data(&em, a), const_data(&em, b)]);
                    em.emit(Op::Const { data: folded })?
                } else {
                    let is_mul = matches!(op, Op::Mul(..));
                    let (a, b) = prepare_binary(&mut em, a, b, is_mul, g.proactive)?;
                    let result = match op {
                        Op::Add(..) => em.emit(Op::Add(a, b))?,
                        Op::Sub(..) => em.emit(Op::Sub(a, b))?,
                        Op::Mul(..) => em.emit(Op::Mul(a, b))?,
                        // UNREACHABLE: the enclosing arm matched Add|Sub|Mul.
                        _ => unreachable!(),
                    };
                    // EVA's reactive waterline rescaling on mul results.
                    if !g.proactive && is_mul {
                        em.rescale_fully(result)?
                    } else {
                        result
                    }
                }
            }
        };
        map[i] = Some(new_id);
    }

    // Reduce the cumulative scale of outputs (both policies): every dropped
    // prime shortens the modulus chain for free.
    for (name, v) in func.outputs() {
        // UNREACHABLE expect: `verify_structure` rejects dangling outputs,
        // and the loop above filled every `map` slot.
        let mut out_v = map[v.index()].expect("output defined");
        if em.ty(out_v).is_cipher() {
            out_v = em.rescale_fully(out_v)?;
        }
        em.out.mark_output(name.clone(), out_v);
    }

    let (mut out, mut types) = (em.out, em.types);
    if g.early_modswitch {
        (out, types) = early_modswitch(&out, &cfg)?;
    }
    let _ = types;
    let (clean, _) = hecate_ir::analysis::eliminate_dead_code(&out);
    // Re-infer on the cleaned function (cheap; also our final verifier).
    let final_types = infer_types(&clean, &cfg)?;
    Ok((clean, final_types))
}

fn const_data(em: &Emitter, v: ValueId) -> &ConstData {
    match em.out.op(v) {
        Op::Const { data } => data,
        // UNREACHABLE: callers pass only `Free`-typed values, and `infer_op`
        // assigns `Type::Free` exclusively to `Op::Const` results (inputs
        // are cipher; every other op yields a scaled type).
        _ => unreachable!("free value must be a constant"),
    }
}

/// Applies the policy's operand preparation for a binary operation and
/// returns the final operands.
fn prepare_binary(
    em: &mut Emitter,
    mut a: ValueId,
    mut b: ValueId,
    is_mul: bool,
    proactive: bool,
) -> Result<(ValueId, ValueId), CompileError> {
    let cfg = em.cfg;
    // (b) rescale analysis (PARS only — EVA rescales reactively).
    if proactive {
        if !em.is_free(a) && em.ty(a).is_cipher() {
            a = em.rescale_fully(a)?;
        }
        if !em.is_free(b) && em.ty(b).is_cipher() {
            b = em.rescale_fully(b)?;
        }
    }
    // (a) encode: free operands become plaintexts at the cipher operand's
    // level; for add/sub at the cipher's scale, for mul at the waterline.
    if em.is_free(a) || em.is_free(b) {
        let (free, cipher) = if em.is_free(a) { (a, b) } else { (b, a) };
        let scale = if is_mul {
            cfg.waterline
        } else {
            em.scale(cipher)
        };
        let encoded = em.encode(free, scale, em.level(cipher))?;
        let (na, nb) = if em.is_free(a) {
            (encoded, b)
        } else {
            (a, encoded)
        };
        return Ok((na, nb));
    }
    // Plain operands (from earlier encodes) can be re-encoded at will by
    // the backend; treat them like ciphers for level/scale matching via
    // modswitch/upscale, which the type system permits on scaled types.
    // (c) level match.
    while em.level(a) != em.level(b) {
        let (lo_is_a, lo) = if em.level(a) < em.level(b) {
            (true, a)
        } else {
            (false, b)
        };
        let raised = if em.ty(lo).is_cipher() {
            if proactive {
                em.raise_level_proactive(lo)?
            } else {
                em.modswitch(lo)?
            }
        } else {
            // Plaintext: level is free at encode time; modswitch models it.
            em.modswitch(lo)?
        };
        if lo_is_a {
            a = raised;
        } else {
            b = raised;
        }
    }
    // (d) scale match for add/sub.
    if !is_mul {
        let (sa, sb) = (em.scale(a), em.scale(b));
        if (sa - sb).abs() > SCALE_EPS {
            if sa < sb {
                a = em.upscale(a, sb)?;
            } else {
                b = em.upscale(b, sa)?;
            }
        }
    }
    // (e) downscale analysis for multiplications (PARS only).
    if proactive && is_mul && em.ty(a).is_cipher() && em.ty(b).is_cipher() {
        let (sa, sb) = (em.scale(a), em.scale(b));
        let both_reducible = sa > cfg.waterline + SCALE_EPS && sb > cfg.waterline + SCALE_EPS;
        if both_reducible && sa + sb > 2.0 * cfg.rescale_bits + SCALE_EPS {
            a = em.downscale(a)?;
            b = em.downscale(b)?;
        }
    }
    Ok((a, b))
}

/// EVA's early-modswitch motion: `modswitch(op(x, y))` with a single-use
/// operand becomes `op(modswitch(x), modswitch(y))`, letting `op` execute
/// at the higher (cheaper) level. Iterates to a fixpoint.
fn early_modswitch(
    func: &Function,
    cfg: &TypeConfig,
) -> Result<(Function, Vec<Type>), CompileError> {
    let mut cur = func.clone();
    for _ in 0..16 {
        let use_lists = hecate_ir::analysis::users(&cur);
        // Find a modswitch whose operand is a single-use homomorphic op.
        let mut target: Option<(usize, usize)> = None; // (modswitch idx, def idx)
        for (i, op) in cur.ops().iter().enumerate() {
            if let Op::ModSwitch(v) = op {
                let d = v.index();
                let def = cur.op(*v);
                let movable = matches!(
                    def,
                    Op::Add(..) | Op::Sub(..) | Op::Mul(..) | Op::Negate(..) | Op::Rotate { .. }
                );
                let single_use =
                    use_lists[d].len() == 1 && !cur.outputs().iter().any(|(_, o)| o.index() == d);
                if movable && single_use {
                    target = Some((i, d));
                    break;
                }
            }
        }
        let Some((ms_idx, def_idx)) = target else {
            break;
        };
        // Rebuild with the rewrite applied.
        let mut em = Emitter::new(&cur.name, cur.vec_size, *cfg);
        let mut map: Vec<Option<ValueId>> = vec![None; cur.len()];
        for (i, op) in cur.ops().iter().enumerate() {
            if i == ms_idx {
                // Emit op(modswitch(operands)) in place of modswitch(op).
                let def = cur.op(ValueId(def_idx as u32)).clone();
                let mut new_operands = Vec::new();
                for v in def.operands() {
                    // UNREACHABLE expect: `def_idx < ms_idx` (SSA order of
                    // the verified input), so the def's operands were
                    // remapped on earlier iterations of this loop.
                    let cur_v = map[v.index()].expect("defined");
                    new_operands.push(em.modswitch(cur_v)?);
                }
                let rewritten = match def {
                    Op::Add(..) => Op::Add(new_operands[0], new_operands[1]),
                    Op::Sub(..) => Op::Sub(new_operands[0], new_operands[1]),
                    Op::Mul(..) => Op::Mul(new_operands[0], new_operands[1]),
                    Op::Negate(..) => Op::Negate(new_operands[0]),
                    Op::Rotate { step, .. } => Op::Rotate {
                        value: new_operands[0],
                        step,
                    },
                    // UNREACHABLE: `target` is only set when `def` matched
                    // the `movable` pattern, which is exactly the arms above.
                    _ => unreachable!(),
                };
                map[i] = Some(em.emit(rewritten)?);
            } else {
                let remapped = hecate_ir::analysis::remap_op(op, &map);
                map[i] = Some(em.emit(remapped)?);
            }
        }
        for (name, v) in cur.outputs() {
            // UNREACHABLE expect: the rebuild loop above mapped every op.
            em.out
                .mark_output(name.clone(), map[v.index()].expect("output"));
        }
        let (cleaned, _) = hecate_ir::analysis::eliminate_dead_code(&em.out);
        if cleaned == cur {
            break;
        }
        cur = cleaned;
    }
    let types = infer_types(&cur, cfg)?;
    Ok((cur, types))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::FunctionBuilder;

    fn motivating() -> Function {
        let mut b = FunctionBuilder::new("motivating", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let z = b.add(x2, y2);
        let z2 = b.mul(z, z);
        let z3 = b.mul(z2, z);
        b.output(z3);
        b.finish()
    }

    fn gen(func: &Function, proactive: bool, w: f64) -> (Function, Vec<Type>) {
        let g = GenOptions {
            cfg: TypeConfig::new(w, 60.0),
            proactive,
            plan: PlanRef::None,
            early_modswitch: true,
            rotate_cse: true,
        };
        generate(func, &g).unwrap()
    }

    fn count(f: &Function, name: &str) -> usize {
        f.ops().iter().filter(|o| o.mnemonic() == name).count()
    }

    fn max_scale(types: &[Type]) -> f64 {
        types.iter().filter_map(|t| t.scale()).fold(0.0, f64::max)
    }

    #[test]
    fn eva_reproduces_fig2a_structure() {
        // Waterline 20, Sf 60: z² (2^80) rescales to 2^20 level 1; z (2^40)
        // is modswitched to level 1 for z³ = 2^60 at level 1.
        let (out, types) = gen(&motivating(), false, 20.0);
        assert!(count(&out, "rescale") >= 1);
        assert!(count(&out, "modswitch") >= 1);
        assert_eq!(count(&out, "downscale"), 0, "EVA never downscales");
        // z³ before output rescaling reaches 2^80 (z²·z = 20+40 = 60, then
        // output rescale requires ≥ 80): the peak scale is 80.
        assert!(
            (max_scale(&types) - 80.0).abs() < 1.0,
            "peak {}",
            max_scale(&types)
        );
    }

    #[test]
    fn pars_reproduces_fig2b_structure() {
        // PARS downscales z to 2^20 before the level-matched multiply,
        // giving z³ = 2^40 instead of EVA's 2^60.
        let (out, types) = gen(&motivating(), true, 20.0);
        assert!(count(&out, "downscale") >= 1, "PARS should downscale");
        let (_, eva_types) = gen(&motivating(), false, 20.0);
        assert!(
            max_scale(&types) <= max_scale(&eva_types),
            "PARS cumulative scale {} must not exceed EVA's {}",
            max_scale(&types),
            max_scale(&eva_types)
        );
    }

    #[test]
    fn wrapped_and_duplicate_rotations_are_cse_d() {
        let mut b = FunctionBuilder::new("rot", 8);
        let x = b.input_cipher("x");
        let r1 = b.rotate(x, 3);
        let r2 = b.rotate(x, 3 + 8); // ≡ 3 (mod 8): same value as r1
        let r3 = b.rotate(x, 3); // literal duplicate
        let r4 = b.rotate(x, 8); // full width: identity
        let s1 = b.add(r1, r2);
        let s2 = b.add(r3, r4);
        let s = b.mul(s1, s2);
        b.output(s);
        let (out, _) = gen(&b.finish(), false, 20.0);
        assert_eq!(count(&out, "rotate"), 1, "{out:?}");
        // The surviving rotation carries the canonical step.
        let step = out
            .ops()
            .iter()
            .find_map(|o| match o {
                Op::Rotate { step, .. } => Some(*step),
                _ => None,
            })
            .unwrap();
        assert_eq!(step, 3);
    }

    #[test]
    fn rotation_cse_preserves_semantics() {
        // Interpreter check: the CSE'd program computes the same function.
        let mut b = FunctionBuilder::new("sem", 4);
        let x = b.input_cipher("x");
        let r1 = b.rotate(x, 1);
        let r2 = b.rotate(x, 5); // ≡ 1 (mod 4)
        let m = b.mul(r1, r2);
        b.output(m);
        let func = b.finish();
        let (out, _) = gen(&func, false, 20.0);
        let mut inputs = std::collections::HashMap::new();
        inputs.insert("x".to_string(), vec![1.0, 2.0, 3.0, 4.0]);
        let want = hecate_ir::interp::interpret(&func, &inputs).unwrap();
        let got = hecate_ir::interp::interpret(&out, &inputs).unwrap();
        for (name, w) in &want {
            for (a, b) in w.iter().zip(&got[name]) {
                assert!((a - b).abs() < 1e-12, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn generated_code_always_type_checks() {
        for proactive in [false, true] {
            for w in [20.0, 25.0, 30.0, 40.0] {
                let (out, _) = gen(&motivating(), proactive, w);
                let cfg = TypeConfig::new(w, 60.0);
                infer_types(&out, &cfg).expect("compiled code type-checks");
            }
        }
    }

    #[test]
    fn plan_degrees_insert_extra_ops() {
        let func = motivating();
        let smu = crate::smu::analyze(&func, 20.0);
        let zero = vec![0u32; smu.edges.len()];
        let cfg = TypeConfig::new(20.0, 60.0);
        let base = generate(
            &func,
            &GenOptions {
                cfg,
                proactive: true,
                plan: PlanRef::Smu {
                    smu: &smu,
                    degrees: &zero,
                },
                early_modswitch: false,
                rotate_cse: true,
            },
        )
        .unwrap();
        // Bump one edge and require the op mix to change.
        let mut changed_any = false;
        for e in 0..smu.edges.len() {
            let mut degrees = zero.clone();
            degrees[e] = 1;
            if let Ok((out, _)) = generate(
                &func,
                &GenOptions {
                    cfg,
                    proactive: true,
                    plan: PlanRef::Smu {
                        smu: &smu,
                        degrees: &degrees,
                    },
                    early_modswitch: false,
                    rotate_cse: true,
                },
            ) {
                infer_types(&out, &cfg).expect("plan output type-checks");
                if out != base.0 {
                    changed_any = true;
                }
            }
        }
        assert!(changed_any, "some edge degree must change the program");
    }

    #[test]
    fn constants_fold_and_encode() {
        let mut b = FunctionBuilder::new("c", 4);
        let x = b.input_cipher("x");
        let c1 = b.splat(2.0);
        let c2 = b.splat(3.0);
        let c3 = b.add(c1, c2); // folds to 5
        let m = b.mul(x, c3);
        b.output(m);
        let f = b.finish();
        let (out, types) = gen(&f, true, 20.0);
        // One encode, no free values reaching the multiply.
        assert_eq!(count(&out, "encode"), 1);
        let ok = out
            .ops()
            .iter()
            .any(|o| matches!(o, Op::Const { data } if (data.at(0) - 5.0).abs() < 1e-12));
        assert!(ok, "folded constant present");
        infer_types(&out, &TypeConfig::new(20.0, 60.0)).unwrap();
        assert!(types.iter().any(|t| t.is_plain()));
    }

    #[test]
    fn sub_and_negate_and_rotate_pass_through() {
        let mut b = FunctionBuilder::new("misc", 8);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let d = b.sub(x, y);
        let n = b.neg(d);
        let r = b.rotate(n, 3);
        b.output(r);
        let f = b.finish();
        let (out, _) = gen(&f, true, 30.0);
        assert_eq!(count(&out, "sub"), 1);
        assert_eq!(count(&out, "negate"), 1);
        assert_eq!(count(&out, "rotate"), 1);
    }

    #[test]
    fn scale_management_in_input_rejected() {
        let mut f = Function::new("bad", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let r = f.push(Op::Rescale(x));
        f.mark_output("o", r);
        let g = GenOptions {
            cfg: TypeConfig::new(20.0, 60.0),
            proactive: true,
            plan: PlanRef::None,
            early_modswitch: false,
            rotate_cse: true,
        };
        assert!(matches!(
            generate(&f, &g),
            Err(CompileError::UnsupportedInput { .. })
        ));
    }

    #[test]
    fn early_modswitch_hoists_through_single_use_ops() {
        // Build (x·y) then force a modswitch via level matching against a
        // deeper value; the modswitch should migrate above the multiply.
        let mut b = FunctionBuilder::new("em", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let xy = b.mul(x, y); // scale 40 — not rescalable at w=20/sf=60
        let x2 = b.square(x);
        let x4 = b.mul(x2, x2); // scale 80 → rescaled to 20, level 1
        let z = b.mul(xy, x4); // xy needs level 1
        b.output(z);
        let f = b.finish();
        let with = gen(&f, false, 20.0);
        // With hoisting the mul(x,y) happens at level 1 (after modswitch).
        let mul_levels: Vec<usize> = with
            .0
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Op::Mul(..)))
            .map(|(i, o)| {
                let v = o.operands()[0];
                let _ = i;
                with.1[v.index()].level().unwrap()
            })
            .collect();
        assert!(
            mul_levels.iter().any(|&l| l >= 1),
            "some multiply should run at a raised level: {mul_levels:?}"
        );
    }

    #[test]
    fn outputs_are_rescaled_to_shrink_modulus() {
        let (out, types) = gen(&motivating(), false, 20.0);
        let (_, ov) = &out.outputs()[0];
        let t = types[ov.index()];
        // 80-bit z³ gets one output rescale down to 20.
        assert!(t.scale().unwrap() < 80.0 - 1.0);
    }
}
