//! Compilation options, scheme selection, and compilation results.

use crate::estimator::CostModel;
use crate::params::SelectedParams;
use hecate_ir::ir::StructureError;
use hecate_ir::types::{Type, TypeConfig, TypeError};
use hecate_ir::Function;
use std::collections::BTreeMap;

/// The four scale-management schemes the paper evaluates (§VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// EVA's fixed-factor waterline rescaling (the baseline, reimplemented
    /// on this framework as in the paper).
    Eva,
    /// Proactive rescaling (Algorithm 2) without space exploration.
    Pars,
    /// Scale-management space exploration over EVA's waterline rescaling.
    Smse,
    /// Full HECATE: SMSE over proactive rescaling.
    Hecate,
}

impl Scheme {
    /// All schemes, in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [Scheme::Eva, Scheme::Pars, Scheme::Smse, Scheme::Hecate];

    /// Whether this scheme runs the hill-climbing exploration.
    pub fn explores(self) -> bool {
        matches!(self, Scheme::Smse | Scheme::Hecate)
    }

    /// Whether this scheme uses proactive rescaling (PARS) as its code
    /// generator (otherwise EVA's waterline rescaling).
    pub fn proactive(self) -> bool {
        matches!(self, Scheme::Pars | Scheme::Hecate)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scheme::Eva => "EVA",
            Scheme::Pars => "PARS",
            Scheme::Smse => "SMSE",
            Scheme::Hecate => "HECATE",
        };
        f.write_str(s)
    }
}

/// The quantity SMSE minimizes.
///
/// `Latency` is the paper's objective. `LatencyAndError` extends it in the
/// direction of the authors' follow-on work (ELASM): plans are scored by
/// `log2(latency) + error_weight · noise_bits`, trading speed against
/// output precision. With `error_weight = 0` the two coincide.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize estimated latency (the paper's SMSE).
    Latency,
    /// Jointly minimize latency and estimated output noise.
    LatencyAndError {
        /// Weight on the noise-bits term (≥ 0).
        error_weight: f64,
    },
}

impl Default for Objective {
    fn default() -> Self {
        Objective::Latency
    }
}

/// Knobs for one compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// The waterline `S_w` in log2 bits (the paper sweeps 36 values).
    pub waterline_bits: f64,
    /// The rescale factor `S_f` in log2 bits. EVA fixes rescale primes at
    /// 60 bits; that is the default here too.
    pub rescale_bits: f64,
    /// Headroom added to the base prime beyond the largest bottom-level
    /// scale, to keep decoded values intact.
    pub margin_bits: f64,
    /// Fixed ring degree for reduced-scale runs; `None` selects the
    /// smallest 128-bit-secure degree for the chosen modulus.
    pub degree: Option<usize>,
    /// Upper bound on the modulus chain length (guards runaway plans).
    pub max_chain_len: usize,
    /// The latency model used by SMSE and reported in the stats.
    pub cost_model: CostModel,
    /// Apply EVA's early-modswitch motion (the paper applies it in both
    /// EVA and HECATE pipelines).
    pub early_modswitch: bool,
    /// Canonicalize the input (constant folding + common subexpression
    /// elimination) before scale management. Benefits all schemes equally.
    pub canonicalize: bool,
    /// What the explorer minimizes.
    pub objective: Objective,
    /// Upper bound on hill-climbing iterations (safety net; the climb
    /// normally stops at a local optimum much earlier).
    pub max_smse_iters: usize,
}

impl CompileOptions {
    /// Options with the given waterline and all defaults (S_f = 60 bits).
    pub fn with_waterline(waterline_bits: f64) -> Self {
        CompileOptions {
            waterline_bits,
            rescale_bits: 60.0,
            margin_bits: 22.0,
            degree: None,
            max_chain_len: 24,
            cost_model: CostModel::default(),
            early_modswitch: true,
            canonicalize: true,
            objective: Objective::Latency,
            max_smse_iters: 100,
        }
    }

    /// The type-system environment these options induce.
    pub fn type_config(&self) -> TypeConfig {
        TypeConfig::new(self.waterline_bits, self.rescale_bits)
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::with_waterline(30.0)
    }
}

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The input program is structurally malformed.
    Structure(StructureError),
    /// A transformation produced (or met) ill-typed IR.
    Type(TypeError),
    /// The scale requirements exceed every supported parameter set.
    NoParameters {
        /// Explanation of what overflowed.
        reason: String,
    },
    /// The input program contains an operation input programs may not use.
    UnsupportedInput {
        /// Explanation.
        reason: String,
    },
}

impl From<StructureError> for CompileError {
    fn from(e: StructureError) -> Self {
        CompileError::Structure(e)
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Structure(e) => write!(f, "malformed input: {e}"),
            CompileError::Type(e) => write!(f, "type error: {e}"),
            CompileError::NoParameters { reason } => {
                write!(f, "no feasible encryption parameters: {reason}")
            }
            CompileError::UnsupportedInput { reason } => {
                write!(f, "unsupported input program: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Statistics gathered during compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Estimated execution latency of the compiled program, microseconds.
    pub estimated_latency_us: f64,
    /// Estimated output noise, log2 of the decoded standard deviation.
    pub estimated_noise_bits: f64,
    /// Hill-climbing iterations that improved the plan (Table III "epoch").
    pub epochs: usize,
    /// Scale-management plans evaluated (Table III "plans").
    pub plans_explored: usize,
    /// Number of scale management units (Table III "SMU").
    pub smu_units: usize,
    /// Number of edges between scale management units.
    pub smu_edges: usize,
    /// Use–def edges in the input program (Table III "uses").
    pub use_edges: usize,
    /// Operation histogram of the compiled program.
    pub op_counts: BTreeMap<&'static str, usize>,
}

/// A fully compiled FHE program: scale-managed IR, its types, and the
/// selected encryption parameters.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The scale-managed function (verified against C1–C3).
    pub func: Function,
    /// The inferred type of every value.
    pub types: Vec<Type>,
    /// The type environment it was compiled under.
    pub cfg: TypeConfig,
    /// Which scheme produced it.
    pub scheme: Scheme,
    /// The selected RNS parameters.
    pub params: SelectedParams,
    /// Compilation statistics.
    pub stats: CompileStats,
}
