//! Compilation options, scheme selection, and compilation results.

use crate::estimator::CostModel;
use crate::params::SelectedParams;
use hecate_ir::ir::StructureError;
use hecate_ir::types::{Type, TypeConfig, TypeError};
use hecate_ir::verify::VerifyError;
use hecate_ir::{Function, Op, SlotFootprint, ValueId};
use std::collections::BTreeMap;

/// The four scale-management schemes the paper evaluates (§VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// EVA's fixed-factor waterline rescaling (the baseline, reimplemented
    /// on this framework as in the paper).
    Eva,
    /// Proactive rescaling (Algorithm 2) without space exploration.
    Pars,
    /// Scale-management space exploration over EVA's waterline rescaling.
    Smse,
    /// Full HECATE: SMSE over proactive rescaling.
    Hecate,
}

impl Scheme {
    /// All schemes, in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [Scheme::Eva, Scheme::Pars, Scheme::Smse, Scheme::Hecate];

    /// Whether this scheme runs the hill-climbing exploration.
    pub fn explores(self) -> bool {
        matches!(self, Scheme::Smse | Scheme::Hecate)
    }

    /// Whether this scheme uses proactive rescaling (PARS) as its code
    /// generator (otherwise EVA's waterline rescaling).
    pub fn proactive(self) -> bool {
        matches!(self, Scheme::Pars | Scheme::Hecate)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scheme::Eva => "EVA",
            Scheme::Pars => "PARS",
            Scheme::Smse => "SMSE",
            Scheme::Hecate => "HECATE",
        };
        f.write_str(s)
    }
}

/// The quantity SMSE minimizes.
///
/// `Latency` is the paper's objective. `LatencyAndError` extends it in the
/// direction of the authors' follow-on work (ELASM): plans are scored by
/// `log2(latency) + error_weight · noise_bits`, trading speed against
/// output precision. With `error_weight = 0` the two coincide.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Objective {
    /// Minimize estimated latency (the paper's SMSE).
    #[default]
    Latency,
    /// Jointly minimize latency and estimated output noise.
    LatencyAndError {
        /// Weight on the noise-bits term (≥ 0).
        error_weight: f64,
    },
}

/// Knobs for one compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// The waterline `S_w` in log2 bits (the paper sweeps 36 values).
    pub waterline_bits: f64,
    /// The rescale factor `S_f` in log2 bits. EVA fixes rescale primes at
    /// 60 bits; that is the default here too.
    pub rescale_bits: f64,
    /// Headroom added to the base prime beyond the largest bottom-level
    /// scale, to keep decoded values intact.
    pub margin_bits: f64,
    /// Fixed ring degree for reduced-scale runs; `None` selects the
    /// smallest 128-bit-secure degree for the chosen modulus.
    pub degree: Option<usize>,
    /// Upper bound on the modulus chain length (guards runaway plans).
    pub max_chain_len: usize,
    /// The latency model used by SMSE and reported in the stats.
    pub cost_model: CostModel,
    /// Apply EVA's early-modswitch motion (the paper applies it in both
    /// EVA and HECATE pipelines).
    pub early_modswitch: bool,
    /// Canonicalize the input (constant folding + common subexpression
    /// elimination) before scale management. Benefits all schemes equally.
    pub canonicalize: bool,
    /// What the explorer minimizes.
    pub objective: Objective,
    /// Upper bound on hill-climbing iterations (safety net; the climb
    /// normally stops at a local optimum much earlier).
    pub max_smse_iters: usize,
    /// Re-verify the full invariant set (C1/C2, level monotonicity,
    /// rescale legality) after every pass and candidate lowering. The
    /// incremental checks in the emitter already reject most bad plans;
    /// this guards against bugs in the passes themselves.
    pub verify_passes: bool,
    /// Sabotage injected into generated plans, for testing that the
    /// per-pass verifier and the fallback driver catch compiler faults.
    pub fault: Option<CompileFault>,
}

impl CompileOptions {
    /// Options with the given waterline and all defaults (S_f = 60 bits).
    pub fn with_waterline(waterline_bits: f64) -> Self {
        CompileOptions {
            waterline_bits,
            rescale_bits: 60.0,
            margin_bits: 22.0,
            degree: None,
            max_chain_len: 24,
            cost_model: CostModel::default(),
            early_modswitch: true,
            canonicalize: true,
            objective: Objective::Latency,
            max_smse_iters: 100,
            verify_passes: true,
            fault: None,
        }
    }

    /// The type-system environment these options induce.
    pub fn type_config(&self) -> TypeConfig {
        TypeConfig::new(self.waterline_bits, self.rescale_bits)
    }

    /// A canonical textual fingerprint of every option that can change the
    /// compiled plan. The serving layer's content-addressed cache hashes
    /// this next to the program's canonical print: two compilations share
    /// a cache slot iff both the program and this fingerprint agree.
    ///
    /// Floats are rendered in Rust's shortest round-trip form, so distinct
    /// values always produce distinct fingerprints.
    pub fn fingerprint(&self) -> String {
        let cost_model = match &self.cost_model {
            CostModel::Analytic => "analytic".to_string(),
            CostModel::Profiled(table) => {
                // Entries are iterated in sorted order so the fingerprint
                // is independent of map internals.
                let mut entries: Vec<String> = table
                    .measurements()
                    .map(|(op, c, us)| format!("{op:?}@{c}={us}"))
                    .collect();
                entries.sort();
                format!("profiled(n{};{})", table.degree, entries.join(","))
            }
        };
        let objective = match self.objective {
            Objective::Latency => "latency".to_string(),
            Objective::LatencyAndError { error_weight } => {
                format!("latency+{error_weight}err")
            }
        };
        format!(
            "w={};sf={};margin={};degree={:?};chain<={};cost={};ems={};canon={};obj={};iters={};verify={};fault={:?}",
            self.waterline_bits,
            self.rescale_bits,
            self.margin_bits,
            self.degree,
            self.max_chain_len,
            cost_model,
            self.early_modswitch,
            self.canonicalize,
            objective,
            self.max_smse_iters,
            self.verify_passes,
            self.fault,
        )
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::with_waterline(30.0)
    }
}

/// A fault injected into generated plans, for testing the guard rails.
///
/// The fault is applied to each lowered candidate *before* per-pass
/// verification, so a correctly working verifier turns every injected
/// fault into a [`CompileError::Verify`]. Restricting `scheme` lets a
/// test sabotage one rung of the fallback ladder while leaving the
/// others sound.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileFault {
    /// Apply only when compiling under this scheme (`None`: always).
    pub scheme: Option<Scheme>,
    /// What to break.
    pub kind: CompileFaultKind,
}

/// The compile-side sabotage repertoire.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileFaultKind {
    /// Replace the `nth` rescale with a modswitch: the level still drops
    /// but the scale is never reduced, violating C1/C3 downstream.
    DropRescale {
        /// Which rescale to corrupt (0-based, in definition order).
        nth: usize,
    },
    /// Point the first non-nullary operation at the last value in the
    /// function, breaking SSA dominance.
    ForwardReference,
}

impl CompileFault {
    /// Whether this fault applies when compiling under `scheme`.
    pub fn applies_to(&self, scheme: Scheme) -> bool {
        self.scheme.map(|s| s == scheme).unwrap_or(true)
    }

    /// Returns the sabotaged copy of `func`, or `None` if the fault found
    /// no site to corrupt (e.g. no `nth` rescale exists).
    pub fn apply(&self, func: &Function) -> Option<Function> {
        let mut ops: Vec<Op> = func.ops().to_vec();
        match self.kind {
            CompileFaultKind::DropRescale { nth } => {
                let site = ops
                    .iter()
                    .enumerate()
                    .filter(|(_, op)| matches!(op, Op::Rescale(_)))
                    .nth(nth)
                    .map(|(i, _)| i)?;
                let Op::Rescale(v) = ops[site] else {
                    return None;
                };
                ops[site] = Op::ModSwitch(v);
            }
            CompileFaultKind::ForwardReference => {
                let last = ValueId((ops.len() - 1) as u32);
                let site = ops.iter().position(|op| !op.operands().is_empty())?;
                ops[site] = match &ops[site] {
                    Op::Negate(_) | Op::Rescale(_) | Op::ModSwitch(_) => Op::Negate(last),
                    _ => Op::Add(last, last),
                };
            }
        }
        let mut out = Function::new(func.name.clone(), func.vec_size);
        for op in ops {
            out.push(op);
        }
        for (name, v) in func.outputs() {
            out.mark_output(name.clone(), *v);
        }
        Some(out)
    }
}

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The input program is structurally malformed.
    Structure(StructureError),
    /// A transformation produced (or met) ill-typed IR.
    Type(TypeError),
    /// A pass produced a plan that failed post-pass verification.
    Verify(VerifyError),
    /// The scale requirements exceed every supported parameter set.
    NoParameters {
        /// Explanation of what overflowed.
        reason: String,
    },
    /// The input program contains an operation input programs may not use.
    UnsupportedInput {
        /// Explanation.
        reason: String,
    },
}

impl From<StructureError> for CompileError {
    fn from(e: StructureError) -> Self {
        CompileError::Structure(e)
    }
}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

impl From<VerifyError> for CompileError {
    fn from(e: VerifyError) -> Self {
        CompileError::Verify(e)
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Structure(e) => write!(f, "malformed input: {e}"),
            CompileError::Type(e) => write!(f, "type error: {e}"),
            CompileError::Verify(e) => write!(f, "verification failed: {e}"),
            CompileError::NoParameters { reason } => {
                write!(f, "no feasible encryption parameters: {reason}")
            }
            CompileError::UnsupportedInput { reason } => {
                write!(f, "unsupported input program: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Statistics gathered during compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Estimated execution latency of the compiled program, microseconds.
    pub estimated_latency_us: f64,
    /// Estimated output noise, log2 of the decoded standard deviation.
    pub estimated_noise_bits: f64,
    /// Hill-climbing iterations that improved the plan (Table III "epoch").
    pub epochs: usize,
    /// Scale-management plans evaluated (Table III "plans").
    pub plans_explored: usize,
    /// Number of scale management units (Table III "SMU").
    pub smu_units: usize,
    /// Number of edges between scale management units.
    pub smu_edges: usize,
    /// Use–def edges in the input program (Table III "uses").
    pub use_edges: usize,
    /// Operation histogram of the compiled program.
    pub op_counts: BTreeMap<&'static str, usize>,
    /// Which rung of the degradation ladder produced this program.
    /// `None` when compiled directly (no fallback driver involved).
    pub fallback: Option<FallbackRung>,
    /// Rungs that failed before the succeeding one (fallback driver only).
    pub fallback_attempts: usize,
}

/// The degradation ladder the fallback driver descends: the requested
/// scheme first, then progressively simpler scale management, and finally
/// a recompile at a raised waterline that trades precision for headroom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackRung {
    /// The requested scheme succeeded as-is.
    Primary,
    /// Fell back to proactive rescaling without exploration.
    Pars,
    /// Fell back to the EVA waterline-rescaling baseline.
    Eva,
    /// Recompiled the EVA baseline at a raised waterline.
    RaisedWaterline,
}

impl std::fmt::Display for FallbackRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FallbackRung::Primary => "primary",
            FallbackRung::Pars => "pars",
            FallbackRung::Eva => "eva",
            FallbackRung::RaisedWaterline => "raised-waterline",
        };
        f.write_str(s)
    }
}

/// A fully compiled FHE program: scale-managed IR, its types, and the
/// selected encryption parameters.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The scale-managed function (verified against C1–C3).
    pub func: Function,
    /// The inferred type of every value.
    pub types: Vec<Type>,
    /// The type environment it was compiled under.
    pub cfg: TypeConfig,
    /// Which scheme produced it.
    pub scheme: Scheme,
    /// The selected RNS parameters.
    pub params: SelectedParams,
    /// Content hash ([`hecate_ir::hash::function_hash`]) of the *source*
    /// function this plan was compiled from (pre-canonicalization), so a
    /// reloaded plan can be checked against the program it claims to
    /// implement.
    pub source_hash: u64,
    /// Slot-batching footprint of the compiled function: how many slots
    /// one tenant needs (logical window plus rotation guard bands) when
    /// several tenants share a ciphertext.
    pub footprint: SlotFootprint,
    /// Compilation statistics.
    pub stats: CompileStats,
}

impl CompiledProgram {
    /// The type environment with the C1 budget bound to the *selected*
    /// modulus chain: at level `k`, scales must fit
    /// `q0 + S_f·(chain_len − 1 − k)` bits. The verifier uses this to
    /// catch plans that drifted from the parameters chosen for them.
    pub fn bound_config(&self) -> TypeConfig {
        bound_config(&self.cfg, &self.params)
    }
}

/// See [`CompiledProgram::bound_config`].
pub(crate) fn bound_config(cfg: &TypeConfig, params: &SelectedParams) -> TypeConfig {
    let mut out = *cfg;
    out.max_level = Some(params.chain_len - 1);
    out.modulus_bits =
        Some(params.q0_bits as f64 + cfg.rescale_bits * (params.chain_len - 1) as f64);
    out
}
