//! The static performance estimator (paper §VI-C).
//!
//! The latency of an RNS-CKKS operation is determined by the operation
//! kind, the number of active RNS primes (`chain_len − level`), and the
//! ring degree `N`: linear in the active primes for elementwise work and
//! quadratic for key switching, with an `N log N` factor wherever NTTs are
//! involved. The estimator sums a per-operation cost table over the
//! compiled program; levels come straight from the type system.
//!
//! Two models are provided: an *analytic* model with the asymptotic shape
//! above (deterministic, used during exploration and in tests), and a
//! *profiled* table measured on the actual backend (what the paper does;
//! Fig. 8 shows the two agree within a few percent).

use hecate_ir::types::Type;
use hecate_ir::{Function, Op};
use std::collections::HashMap;
use std::sync::Arc;

/// The backend cost categories an IR operation lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostOp {
    /// Ciphertext + ciphertext.
    AddCC,
    /// Ciphertext + plaintext.
    AddCP,
    /// Ciphertext × ciphertext, including relinearization.
    MulCC,
    /// Ciphertext × plaintext.
    MulCP,
    /// Negation.
    Negate,
    /// Slot rotation (automorphism + key switch).
    Rotate,
    /// A slot rotation that shares a hoisted digit decomposition with
    /// other rotations of the same value (Halevi–Shoup hoisting): the
    /// decomposition and its forward NTTs are paid once by the group
    /// leader (costed as [`CostOp::Rotate`]), so each additional rotation
    /// is only the key multiply-accumulate, an evaluation-domain
    /// permutation, and the inverse-NTT/mod-down tail.
    RotateHoisted,
    /// Rescale (divide by the last prime).
    Rescale,
    /// Modulus switch (drop the last prime).
    ModSwitch,
}

impl CostOp {
    /// All cost categories.
    pub const ALL: [CostOp; 9] = [
        CostOp::AddCC,
        CostOp::AddCP,
        CostOp::MulCC,
        CostOp::MulCP,
        CostOp::Negate,
        CostOp::Rotate,
        CostOp::RotateHoisted,
        CostOp::Rescale,
        CostOp::ModSwitch,
    ];

    /// Stable lower-case name, used as the `cost_op` attribute on
    /// execution trace spans.
    pub fn name(self) -> &'static str {
        match self {
            CostOp::AddCC => "add_cc",
            CostOp::AddCP => "add_cp",
            CostOp::MulCC => "mul_cc",
            CostOp::MulCP => "mul_cp",
            CostOp::Negate => "negate",
            CostOp::Rotate => "rotate",
            CostOp::RotateHoisted => "rotate_hoisted",
            CostOp::Rescale => "rescale",
            CostOp::ModSwitch => "mod_switch",
        }
    }

    /// Parses a [`CostOp::name`] back into the category.
    pub fn from_name(name: &str) -> Option<CostOp> {
        CostOp::ALL.into_iter().find(|op| op.name() == name)
    }
}

/// A measured `(operation, active primes) → microseconds` table for one
/// ring degree, as produced by the backend profiler.
#[derive(Debug, Clone, Default)]
pub struct CostTable {
    /// Ring degree the table was measured at.
    pub degree: usize,
    entries: HashMap<(CostOp, usize), f64>,
}

impl CostTable {
    /// Creates an empty table for a degree.
    pub fn new(degree: usize) -> Self {
        CostTable {
            degree,
            entries: HashMap::new(),
        }
    }

    /// Records a measurement.
    pub fn set(&mut self, op: CostOp, active_primes: usize, micros: f64) {
        self.entries.insert((op, active_primes), micros);
    }

    /// All `(op, active primes, µs)` measurements, in no particular order.
    pub fn measurements(&self) -> impl Iterator<Item = (CostOp, usize, f64)> + '_ {
        self.entries.iter().map(|(&(op, c), &us)| (op, c, us))
    }

    /// Looks up a measurement; falls back to the nearest measured prefix
    /// scaled analytically if the exact prefix is missing.
    pub fn get(&self, op: CostOp, active_primes: usize) -> Option<f64> {
        if let Some(v) = self.entries.get(&(op, active_primes)) {
            return Some(*v);
        }
        // Nearest-neighbour fallback with analytic scaling.
        let nearest = self
            .entries
            .iter()
            .filter(|((o, _), _)| *o == op)
            .min_by_key(|((_, c), _)| c.abs_diff(active_primes))?;
        let ((_, c0), v0) = nearest;
        let a = analytic_cost_us(op, active_primes, self.degree);
        let b = analytic_cost_us(op, *c0, self.degree);
        Some(v0 * a / b)
    }

    /// Folds the per-op execution spans of a trace into a measured cost
    /// table — the loop-closing aggregation: the table this produces is
    /// exactly what [`CostModel::Profiled`] consumes, so a traced run
    /// re-calibrates the estimator against the backend it ran on.
    ///
    /// Spans named `exec-op` are paired per thread (unmatched begins and
    /// ends are skipped, so a torn trace degrades rather than fails). Each
    /// span carries its [`OpCostInfo::label`] as `cost_op`, the
    /// `active_primes` it executed at, and the measured kernel time `us`.
    /// Multi-category ops (a downscale is a plaintext multiply plus a
    /// rescale) split their time across categories in proportion to the
    /// analytic model. Cell means are then repaired to be nondecreasing in
    /// active primes by pool-adjacent-violators isotonic regression —
    /// physically, more primes is never less work, so monotone violations
    /// are measurement noise.
    pub fn from_trace(events: &[hecate_telemetry::Event], degree: usize) -> CostTable {
        // (op, active) → (Σ µs, sample count)
        let mut cells: HashMap<(CostOp, usize), (f64, f64)> = HashMap::new();
        let mut stacks: HashMap<u64, Vec<&hecate_telemetry::Event>> = HashMap::new();
        for ev in events {
            match ev.kind {
                hecate_telemetry::EventKind::Begin => {
                    stacks.entry(ev.tid).or_default().push(ev);
                }
                hecate_telemetry::EventKind::End => {
                    let Some(begin) = stacks.entry(ev.tid).or_default().pop() else {
                        continue;
                    };
                    if begin.name != "exec-op" || ev.name != "exec-op" {
                        continue;
                    }
                    let attr = |key: &str| {
                        ev.attrs
                            .iter()
                            .chain(begin.attrs.iter())
                            .find(|(k, _)| *k == key)
                            .map(|(_, v)| v)
                    };
                    let Some(us) = attr("us").and_then(|v| v.as_f64()) else {
                        continue;
                    };
                    let Some(active) = attr("active_primes").and_then(|v| v.as_i64()) else {
                        continue;
                    };
                    let active = active.max(1) as usize;
                    let cats: Vec<CostOp> = attr("cost_op")
                        .and_then(|v| v.as_str())
                        .map(|label| label.split('+').filter_map(CostOp::from_name).collect())
                        .unwrap_or_default();
                    if cats.is_empty() {
                        continue;
                    }
                    let analytic: Vec<f64> = cats
                        .iter()
                        .map(|&c| analytic_cost_us(c, active, degree).max(1e-12))
                        .collect();
                    let total: f64 = analytic.iter().sum();
                    for (&cat, &a) in cats.iter().zip(&analytic) {
                        let cell = cells.entry((cat, active)).or_insert((0.0, 0.0));
                        cell.0 += us * a / total;
                        cell.1 += 1.0;
                    }
                }
                _ => {}
            }
        }
        let mut table = CostTable::new(degree);
        for op in CostOp::ALL {
            let mut points: Vec<(usize, f64, f64)> = cells
                .iter()
                .filter(|((o, _), _)| *o == op)
                .map(|(&(_, active), &(sum, n))| (active, sum / n, n))
                .collect();
            if points.is_empty() {
                continue;
            }
            points.sort_by_key(|&(active, _, _)| active);
            for (active, us) in pava_nondecreasing(&points) {
                table.set(op, active, us);
            }
        }
        table
    }
}

/// Weighted pool-adjacent-violators: returns `(x, y)` with the smallest
/// weighted-L2 adjustment of `y` that is nondecreasing in `x`. Input must
/// be sorted by `x`; triples are `(x, y, weight)`.
fn pava_nondecreasing(points: &[(usize, f64, f64)]) -> Vec<(usize, f64)> {
    // Each block pools a run of adjacent points into their weighted mean.
    let mut blocks: Vec<(f64, f64, usize)> = Vec::new(); // (mean, weight, len)
    for &(_, y, w) in points {
        blocks.push((y, w, 1));
        while blocks.len() >= 2 {
            let (m2, w2, n2) = blocks[blocks.len() - 1];
            let (m1, w1, n1) = blocks[blocks.len() - 2];
            if m1 <= m2 {
                break;
            }
            blocks.truncate(blocks.len() - 2);
            let w = w1 + w2;
            blocks.push(((m1 * w1 + m2 * w2) / w, w, n1 + n2));
        }
    }
    let mut out = Vec::with_capacity(points.len());
    let mut i = 0;
    for (mean, _, len) in blocks {
        for _ in 0..len {
            out.push((points[i].0, mean));
            i += 1;
        }
    }
    out
}

/// Sums the measured kernel time (`us` attribute) over every `exec-op`
/// span end in a trace — the measured counterpart of
/// [`estimate_latency_us`] for a traced execution.
pub fn traced_total_us(events: &[hecate_telemetry::Event]) -> f64 {
    events
        .iter()
        .filter(|ev| matches!(ev.kind, hecate_telemetry::EventKind::End) && ev.name == "exec-op")
        .filter_map(|ev| {
            ev.attrs
                .iter()
                .find(|(k, _)| *k == "us")
                .and_then(|(_, v)| v.as_f64())
        })
        .sum()
}

/// The latency model used by the estimator.
#[derive(Debug, Clone, Default)]
pub enum CostModel {
    /// Deterministic asymptotic model.
    #[default]
    Analytic,
    /// Table measured on the execution backend.
    Profiled(Arc<CostTable>),
}

impl CostModel {
    /// Cost of one operation in microseconds at the given active-prime
    /// count and ring degree.
    pub fn cost_us(&self, op: CostOp, active_primes: usize, degree: usize) -> f64 {
        match self {
            CostModel::Analytic => analytic_cost_us(op, active_primes, degree),
            CostModel::Profiled(t) => t
                .get(op, active_primes)
                .unwrap_or_else(|| analytic_cost_us(op, active_primes, degree)),
        }
    }
}

/// The analytic latency model, microseconds.
///
/// Shapes (with `c` = active primes, `n` = degree, `lg = log2 n`):
/// elementwise passes are `Θ(n·c)`, NTTs are `Θ(n·lg)` each, and key
/// switching performs `Θ(c²)` NTTs plus `Θ(n·c²)` accumulation — the
/// quadratic-in-level behaviour the paper describes. Constants are
/// calibrated to this repository's interpreter-free Rust backend.
pub fn analytic_cost_us(op: CostOp, c: usize, n: usize) -> f64 {
    let c = c as f64;
    let n = n as f64;
    let lg = n.log2();
    // Calibration constants (µs): 4 ns per element for pointwise passes,
    // 6 ns per point-stage for NTTs — measured against this repository's
    // backend at n = 512–4096.
    let elem = 0.004;
    let ntt_pass = |count: f64| count * 0.006 * n * lg;
    let pass = |count: f64| count * elem * n * c;
    // Key switch at prefix c: c digit lifts, c·(c+1) forward NTTs,
    // 2·(c+1) inverse NTTs, 2·c·(c+1) multiply-accumulate passes,
    // and a mod-down pass.
    let keyswitch = ntt_pass(c * (c + 1.0) + 2.0 * (c + 1.0) + 2.0 * c)
        + 2.0 * elem * n * c * (c + 1.0)
        + pass(4.0);
    match op {
        CostOp::AddCC => pass(2.0),
        // Plaintexts are pre-transformed to NTT form, so ct⊙pt operations
        // are pointwise passes only.
        CostOp::AddCP => pass(1.0),
        CostOp::Negate => pass(2.0),
        CostOp::MulCP => pass(2.0),
        CostOp::MulCC => pass(4.0) + keyswitch,
        CostOp::Rotate => pass(2.0) + ntt_pass(4.0 * c) + keyswitch,
        // A hoisted rotation reuses the leader's digit decomposition and
        // forward NTTs; what remains is the evaluation-domain permutation
        // of each digit, the key multiply-accumulate, the inverse
        // NTT/mod-down tail, and the c0 permutation+add.
        CostOp::RotateHoisted => {
            pass(2.0)
                + ntt_pass(2.0 * (c + 1.0) + 2.0 * c)
                + 2.0 * elem * n * c * (c + 1.0)
                + elem * n * c * (c + 1.0)
                + pass(4.0)
        }
        CostOp::Rescale => ntt_pass(4.0 * c) + pass(4.0),
        CostOp::ModSwitch => 0.002 * n,
    }
}

/// Maps an IR operation (with its operand types) to its cost category.
///
/// `encode` and `const` cost nothing at runtime (plaintexts are prepared
/// ahead of execution); `upscale` lowers to a plaintext multiplication;
/// `downscale` lowers to a plaintext multiplication plus a rescale.
fn categorize(op: &Op, operand_is_plain: impl Fn(usize) -> bool) -> Vec<CostOp> {
    match op {
        Op::Input { .. } | Op::Const { .. } | Op::Encode { .. } => vec![],
        Op::Add(..) | Op::Sub(..) => {
            if operand_is_plain(0) || operand_is_plain(1) {
                vec![CostOp::AddCP]
            } else {
                vec![CostOp::AddCC]
            }
        }
        Op::Mul(..) => {
            if operand_is_plain(0) || operand_is_plain(1) {
                vec![CostOp::MulCP]
            } else {
                vec![CostOp::MulCC]
            }
        }
        Op::Negate(..) => vec![CostOp::Negate],
        Op::Rotate { .. } => vec![CostOp::Rotate],
        Op::Rescale(..) => vec![CostOp::Rescale],
        Op::ModSwitch(..) => vec![CostOp::ModSwitch],
        Op::Upscale { .. } => vec![CostOp::MulCP],
        Op::Downscale(..) => vec![CostOp::MulCP, CostOp::Rescale],
    }
}

/// Statically estimates the output noise of a typed program, in log2 of
/// the decoded-domain standard deviation ("noise bits"; more negative is
/// more precise).
///
/// This is the scale-driven first-order CKKS model (messages assumed O(1)):
/// fresh encryption and encodings contribute rounding/RLWE noise inversely
/// proportional to their scale, multiplications and rotations add
/// key-switch noise at the result scale, and rescales add rounding at the
/// new scale. The paper's follow-on work (ELASM) explores exactly this
/// scale-vs-error trade-off; [`crate::options::Objective`] exposes it.
pub fn estimate_noise_bits(func: &Function, types: &[Type], degree: usize) -> f64 {
    let n = degree as f64;
    // log2 helpers for the noise sources (standard deviations).
    let fresh = |scale: f64| 0.5 * (2.0 * n * 10.5).log2() - scale;
    let encode = |scale: f64| 0.5 * (n / 12.0).log2() - scale;
    let keyswitch = |scale: f64| 0.5 * (n * n * 10.5 / 6.0).log2() - scale;
    let rounding = |scale: f64| 0.5 * (n * n / 36.0).log2() - scale;
    // log2(sqrt(2^2a + 2^2b)) — combine independent noises.
    let join = |a: f64, b: f64| {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        hi + 0.5 * (1.0 + 2f64.powf(2.0 * (lo - hi))).log2()
    };
    let mut nb: Vec<f64> = Vec::with_capacity(func.len());
    for (i, op) in func.ops().iter().enumerate() {
        let scale = types[i].scale().unwrap_or(0.0);
        let of = |v: &hecate_ir::ValueId| nb[v.index()];
        let v = match op {
            Op::Input { .. } => fresh(scale),
            Op::Const { .. } => f64::NEG_INFINITY,
            Op::Encode { .. } => encode(scale),
            Op::Add(a, b) | Op::Sub(a, b) => join(of(a), of(b)),
            Op::Mul(a, b) => {
                let base = join(of(a), of(b));
                if types[a.index()].is_cipher() && types[b.index()].is_cipher() {
                    join(base, keyswitch(scale))
                } else {
                    base
                }
            }
            Op::Negate(a) => of(a),
            Op::Rotate { value, .. } => join(of(value), keyswitch(scale)),
            Op::Rescale(a) | Op::Downscale(a) => join(of(a), rounding(scale)),
            Op::ModSwitch(a) | Op::Upscale { value: a, .. } => of(a),
        };
        nb.push(v);
    }
    func.outputs()
        .iter()
        .map(|(_, v)| nb[v.index()])
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The tightest scale-vs-waterline margin of a typed program, in bits:
/// the minimum over all cipher values of `scale − S_w`. The verifier's C2
/// keeps this non-negative for any well-formed plan, so a negative margin
/// is diagnostic — it means the plan's scales no longer honor the
/// waterline it claims (a tampered or stale plan), and decoded precision
/// guarantees derived from `S_w` are void. The precision ledger and the
/// `hecatec --audit` report both surface this number.
///
/// Returns `f64::INFINITY` for a program with no cipher values.
pub fn min_waterline_margin_bits(func: &Function, types: &[Type], waterline: f64) -> f64 {
    func.ops()
        .iter()
        .enumerate()
        .filter(|(i, _)| types[*i].is_cipher())
        .filter_map(|(i, _)| types[i].scale())
        .map(|s| s - waterline)
        .fold(f64::INFINITY, f64::min)
}

/// Estimates the execution latency (microseconds) of a typed program on a
/// chain of `chain_len` primes at ring degree `degree`.
///
/// Each operation executes at the active-prime count implied by its
/// *operand* level (the work happens before the level changes).
pub fn estimate_latency_us(
    func: &Function,
    types: &[Type],
    model: &CostModel,
    chain_len: usize,
    degree: usize,
) -> f64 {
    latency_breakdown(func, types, model, chain_len, degree)
        .values()
        .sum()
}

/// Like [`estimate_latency_us`], but broken down per cost category —
/// useful for seeing where a compiled program spends its time (key
/// switching almost always dominates).
pub fn latency_breakdown(
    func: &Function,
    types: &[Type],
    model: &CostModel,
    chain_len: usize,
    degree: usize,
) -> std::collections::BTreeMap<CostOp, f64> {
    let mut totals = std::collections::BTreeMap::new();
    for info in op_cost_infos(func, types, chain_len) {
        for &cat in &info.cost_ops {
            *totals.entry(cat).or_insert(0.0) += model.cost_us(cat, info.active_primes, degree);
        }
    }
    totals
}

/// The estimator's view of one compiled operation: which backend cost
/// categories it lowers to and at what active-prime count it executes.
///
/// The execution backend attaches this to per-op trace spans so that
/// [`CostTable::from_trace`] can fold measured kernel times back into the
/// same `(category, active primes)` cells the estimator reads — closing
/// the loop the paper's Fig. 8 evaluates.
#[derive(Debug, Clone)]
pub struct OpCostInfo {
    /// Backend cost categories the operation lowers to (empty for free
    /// ops: inputs, constants, encodes).
    pub cost_ops: Vec<CostOp>,
    /// The operand level the work executes at.
    pub operand_level: usize,
    /// Active RNS primes during the work (`chain_len − operand_level`).
    pub active_primes: usize,
}

impl OpCostInfo {
    /// The span-attribute label: category names joined with `+`
    /// (e.g. `"mul_cp+rescale"` for a downscale), empty for free ops.
    pub fn label(&self) -> String {
        self.cost_ops
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Computes [`OpCostInfo`] for every operation of a typed program, using
/// exactly the categorization and level rules of [`latency_breakdown`].
///
/// Rotation fan-out is modeled the way the backend executes it: when a
/// value is rotated by two or more distinct steps, the first rotation
/// (the group leader, which pays the shared hoisted decomposition) is
/// costed as [`CostOp::Rotate`] and every later rotation of the same
/// value as the cheaper [`CostOp::RotateHoisted`].
pub fn op_cost_infos(func: &Function, types: &[Type], chain_len: usize) -> Vec<OpCostInfo> {
    // Distinct rotation steps per rotated value, to find hoisting groups.
    let mut rot_steps: HashMap<usize, std::collections::HashSet<usize>> = HashMap::new();
    for op in func.ops() {
        if let Op::Rotate { value, step } = op {
            rot_steps.entry(value.index()).or_default().insert(*step);
        }
    }
    let mut rotations_seen: HashMap<usize, usize> = HashMap::new();
    func.ops()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let operands = op.operands();
            let operand_level = operands
                .iter()
                .filter_map(|v| types[v.index()].level())
                .max()
                .or_else(|| types[i].level())
                .unwrap_or(0);
            let is_plain = |k: usize| {
                operands
                    .get(k)
                    .map(|v| types[v.index()].is_plain())
                    .unwrap_or(false)
            };
            let mut cost_ops = categorize(op, is_plain);
            if let Op::Rotate { value, .. } = op {
                let seen = rotations_seen.entry(value.index()).or_insert(0);
                let fanout = rot_steps[&value.index()].len();
                if fanout >= 2 && *seen > 0 {
                    for c in &mut cost_ops {
                        if *c == CostOp::Rotate {
                            *c = CostOp::RotateHoisted;
                        }
                    }
                }
                *seen += 1;
            }
            OpCostInfo {
                cost_ops,
                operand_level,
                active_primes: chain_len.saturating_sub(operand_level).max(1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::types::{infer_types, TypeConfig};
    use hecate_ir::FunctionBuilder;
    use hecate_telemetry::Event;

    #[test]
    fn deeper_level_is_cheaper() {
        for op in [
            CostOp::MulCC,
            CostOp::Rotate,
            CostOp::AddCC,
            CostOp::Rescale,
        ] {
            let shallow = analytic_cost_us(op, 8, 4096);
            let deep = analytic_cost_us(op, 2, 4096);
            assert!(deep < shallow, "{op:?} should be cheaper with fewer primes");
        }
    }

    #[test]
    fn mul_level1_speedup_is_in_paper_ballpark() {
        // §II-C: level-1 multiplication ≈ 2.25× faster than level 0 — the
        // analytic model must show a clearly super-linear drop.
        let l0 = analytic_cost_us(CostOp::MulCC, 6, 8192);
        let l1 = analytic_cost_us(CostOp::MulCC, 5, 8192);
        let ratio = l0 / l1;
        assert!(
            ratio > 1.2 && ratio < 3.0,
            "level-1 speedup {ratio} out of plausible range"
        );
    }

    #[test]
    fn keyswitch_ops_dominate_elementwise() {
        let mul = analytic_cost_us(CostOp::MulCC, 4, 4096);
        let add = analytic_cost_us(CostOp::AddCC, 4, 4096);
        assert!(mul > 20.0 * add);
    }

    #[test]
    fn estimate_sums_and_respects_levels() {
        let mut b = FunctionBuilder::new("e", 4);
        let x = b.input_cipher("x");
        let m = b.mul(x, x);
        b.output(m);
        let f = b.finish();
        let cfg = TypeConfig::new(20.0, 40.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let model = CostModel::Analytic;
        let est = estimate_latency_us(&f, &tys, &model, 3, 1024);
        let expect = analytic_cost_us(CostOp::MulCC, 3, 1024);
        assert!((est - expect).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_estimate() {
        let mut b = FunctionBuilder::new("bd", 4);
        let x = b.input_cipher("x");
        let m = b.mul(x, x);
        let r = b.rotate(m, 1);
        let a = b.add(r, r);
        b.output(a);
        let f = b.finish();
        let cfg = TypeConfig::new(20.0, 60.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let model = CostModel::Analytic;
        let table = latency_breakdown(&f, &tys, &model, 3, 1024);
        let total: f64 = table.values().sum();
        let est = estimate_latency_us(&f, &tys, &model, 3, 1024);
        assert!((total - est).abs() < 1e-9);
        assert!(table.contains_key(&CostOp::MulCC));
        assert!(table.contains_key(&CostOp::Rotate));
        assert!(table.contains_key(&CostOp::AddCC));
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn profiled_table_lookup_and_fallback() {
        let mut t = CostTable::new(1024);
        t.set(CostOp::MulCC, 4, 1000.0);
        t.set(CostOp::MulCC, 2, 300.0);
        assert_eq!(t.get(CostOp::MulCC, 4), Some(1000.0));
        // Missing prefix 3 falls back to nearest with analytic scaling —
        // monotone between the two anchors.
        let v = t.get(CostOp::MulCC, 3).unwrap();
        assert!(v > 300.0 && v < 1000.0, "interpolated {v}");
        assert_eq!(t.get(CostOp::Rotate, 3), None);
    }

    #[test]
    fn hoisted_rotation_is_cheaper_than_plain() {
        for (c, n) in [(2usize, 1024usize), (4, 4096), (8, 8192)] {
            let plain = analytic_cost_us(CostOp::Rotate, c, n);
            let hoisted = analytic_cost_us(CostOp::RotateHoisted, c, n);
            assert!(
                hoisted < plain,
                "c={c} n={n}: hoisted {hoisted} >= plain {plain}"
            );
        }
        // Still cheaper with fewer primes (level structure preserved).
        assert!(
            analytic_cost_us(CostOp::RotateHoisted, 2, 4096)
                < analytic_cost_us(CostOp::RotateHoisted, 8, 4096)
        );
    }

    #[test]
    fn rotation_fanout_labels_leader_and_followers() {
        // Three distinct rotations of one value: leader Rotate, two hoisted.
        let mut b = FunctionBuilder::new("fan", 8);
        let x = b.input_cipher("x");
        let r1 = b.rotate(x, 1);
        let r2 = b.rotate(x, 2);
        let r3 = b.rotate(x, 3);
        let a = b.add(r1, r2);
        let a2 = b.add(a, r3);
        b.output(a2);
        let f = b.finish();
        let cfg = TypeConfig::new(20.0, 60.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let infos = op_cost_infos(&f, &tys, 3);
        let rotates: Vec<&OpCostInfo> = infos
            .iter()
            .filter(|i| {
                i.cost_ops
                    .iter()
                    .any(|c| matches!(c, CostOp::Rotate | CostOp::RotateHoisted))
            })
            .collect();
        assert_eq!(rotates.len(), 3);
        assert_eq!(rotates[0].cost_ops, vec![CostOp::Rotate]);
        assert_eq!(rotates[1].cost_ops, vec![CostOp::RotateHoisted]);
        assert_eq!(rotates[2].cost_ops, vec![CostOp::RotateHoisted]);

        // A lone rotation stays a plain Rotate.
        let mut b = FunctionBuilder::new("lone", 8);
        let x = b.input_cipher("x");
        let r = b.rotate(x, 1);
        b.output(r);
        let f = b.finish();
        let tys = infer_types(&f, &cfg).unwrap();
        let infos = op_cost_infos(&f, &tys, 3);
        let rot = infos.iter().find(|i| !i.cost_ops.is_empty()).unwrap();
        assert_eq!(rot.cost_ops, vec![CostOp::Rotate]);
    }

    #[test]
    fn cost_op_names_round_trip() {
        for op in CostOp::ALL {
            assert_eq!(CostOp::from_name(op.name()), Some(op));
        }
        assert_eq!(CostOp::from_name("bogus"), None);
    }

    #[test]
    fn op_cost_infos_matches_breakdown() {
        let mut b = FunctionBuilder::new("oi", 4);
        let x = b.input_cipher("x");
        let m = b.mul(x, x);
        let r = b.rotate(m, 1);
        b.output(r);
        let f = b.finish();
        let cfg = TypeConfig::new(20.0, 60.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let infos = op_cost_infos(&f, &tys, 3);
        assert_eq!(infos.len(), f.len());
        let manual: f64 = infos
            .iter()
            .flat_map(|i| i.cost_ops.iter().map(|&c| (c, i.active_primes)))
            .map(|(c, a)| analytic_cost_us(c, a, 1024))
            .sum();
        let est = estimate_latency_us(&f, &tys, &CostModel::Analytic, 3, 1024);
        assert!((manual - est).abs() < 1e-9);
        // Inputs are free; the mul span label is the category name.
        assert!(infos[x.index()].cost_ops.is_empty());
        assert_eq!(infos[x.index()].label(), "");
        assert_eq!(infos[m.index()].label(), "mul_cc");
    }

    #[test]
    fn pava_repairs_monotone_violations() {
        // (x, y, w): the dip at x=3 pools with x=2.
        let pts = [
            (1, 10.0, 1.0),
            (2, 30.0, 1.0),
            (3, 20.0, 1.0),
            (4, 40.0, 1.0),
        ];
        let out = pava_nondecreasing(&pts);
        assert_eq!(out.len(), 4);
        for w in out.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12, "not monotone: {out:?}");
        }
        assert_eq!(out[0].1, 10.0);
        assert_eq!(out[1].1, 25.0);
        assert_eq!(out[2].1, 25.0);
        assert_eq!(out[3].1, 40.0);
    }

    fn exec_op_span(tid: u64, ts: u64, label: &'static str, active: i64, us: f64) -> [Event; 2] {
        use hecate_telemetry::EventKind;
        [
            Event {
                kind: EventKind::Begin,
                name: "exec-op",
                ts_ns: ts,
                tid,
                attrs: vec![("cost_op", label.into()), ("active_primes", active.into())],
            },
            Event {
                kind: EventKind::End,
                name: "exec-op",
                ts_ns: ts + 100,
                tid,
                attrs: vec![("us", us.into())],
            },
        ]
    }

    #[test]
    fn from_trace_folds_spans_into_cells() {
        let mut events: Vec<Event> = Vec::new();
        // Two mul_cc samples at 3 primes, one at 2 (cheaper), and a noisy
        // inversion for add_cc that PAVA must repair.
        events.extend(exec_op_span(1, 0, "mul_cc", 3, 900.0));
        events.extend(exec_op_span(1, 200, "mul_cc", 3, 1100.0));
        events.extend(exec_op_span(1, 400, "mul_cc", 2, 400.0));
        events.extend(exec_op_span(2, 0, "add_cc", 2, 9.0));
        events.extend(exec_op_span(2, 200, "add_cc", 3, 5.0));
        let table = CostTable::from_trace(&events, 1024);
        assert_eq!(table.get(CostOp::MulCC, 3), Some(1000.0), "mean of samples");
        assert_eq!(table.get(CostOp::MulCC, 2), Some(400.0));
        // add_cc was measured *decreasing* in primes; the repaired table
        // is nondecreasing (both cells pool to the mean).
        let a2 = table.get(CostOp::AddCC, 2).unwrap();
        let a3 = table.get(CostOp::AddCC, 3).unwrap();
        assert!(a2 <= a3 + 1e-12, "PAVA must repair {a2} > {a3}");
        assert!((a2 - 7.0).abs() < 1e-9 && (a3 - 7.0).abs() < 1e-9);
        assert_eq!(table.degree, 1024);
    }

    #[test]
    fn from_trace_splits_multi_category_ops() {
        let events: Vec<Event> = exec_op_span(1, 0, "mul_cp+rescale", 3, 100.0).into();
        let table = CostTable::from_trace(&events, 1024);
        let mulcp = table.get(CostOp::MulCP, 3).unwrap();
        let rescale = table.get(CostOp::Rescale, 3).unwrap();
        assert!(
            (mulcp + rescale - 100.0).abs() < 1e-9,
            "split conserves time"
        );
        // Rescale is analytically the pricier half, so it gets more.
        assert!(rescale > mulcp);
    }

    #[test]
    fn from_trace_tolerates_torn_and_foreign_spans() {
        use hecate_telemetry::EventKind;
        let mut events: Vec<Event> = Vec::new();
        // An unterminated outer span and a foreign pass span around a
        // valid exec-op span: the fold extracts the one good measurement.
        events.push(Event {
            kind: EventKind::Begin,
            name: "execute",
            ts_ns: 0,
            tid: 1,
            attrs: vec![],
        });
        events.extend(exec_op_span(1, 10, "rotate", 4, 250.0));
        events.push(Event {
            kind: EventKind::End,
            name: "exec-op", // end without begin on another thread
            ts_ns: 50,
            tid: 7,
            attrs: vec![("us", 1.0.into())],
        });
        let table = CostTable::from_trace(&events, 1024);
        assert_eq!(table.get(CostOp::Rotate, 4), Some(250.0));
        assert_eq!(table.measurements().count(), 1);
    }

    #[test]
    fn traced_total_sums_exec_op_time() {
        let mut events: Vec<Event> = Vec::new();
        events.extend(exec_op_span(1, 0, "mul_cc", 3, 900.0));
        events.extend(exec_op_span(1, 200, "add_cc", 3, 10.5));
        assert!((traced_total_us(&events) - 910.5).abs() < 1e-9);
        assert_eq!(traced_total_us(&[]), 0.0);
    }

    #[test]
    fn downscale_costs_mulcp_plus_rescale() {
        use hecate_ir::{Function, Op, ValueId};
        let mut f = Function::new("d", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        let d = f.push(Op::Downscale(m));
        f.mark_output("o", d);
        let _ = (m, d);
        let cfg = TypeConfig::new(20.0, 60.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let est = estimate_latency_us(&f, &tys, &CostModel::Analytic, 3, 1024);
        let expect = analytic_cost_us(CostOp::MulCC, 3, 1024)
            + analytic_cost_us(CostOp::MulCP, 3, 1024)
            + analytic_cost_us(CostOp::Rescale, 3, 1024);
        assert!((est - expect).abs() < 1e-9);
        let _ = ValueId(0);
    }
}
