//! The static performance estimator (paper §VI-C).
//!
//! The latency of an RNS-CKKS operation is determined by the operation
//! kind, the number of active RNS primes (`chain_len − level`), and the
//! ring degree `N`: linear in the active primes for elementwise work and
//! quadratic for key switching, with an `N log N` factor wherever NTTs are
//! involved. The estimator sums a per-operation cost table over the
//! compiled program; levels come straight from the type system.
//!
//! Two models are provided: an *analytic* model with the asymptotic shape
//! above (deterministic, used during exploration and in tests), and a
//! *profiled* table measured on the actual backend (what the paper does;
//! Fig. 8 shows the two agree within a few percent).

use hecate_ir::types::Type;
use hecate_ir::{Function, Op};
use std::collections::HashMap;
use std::sync::Arc;

/// The backend cost categories an IR operation lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CostOp {
    /// Ciphertext + ciphertext.
    AddCC,
    /// Ciphertext + plaintext.
    AddCP,
    /// Ciphertext × ciphertext, including relinearization.
    MulCC,
    /// Ciphertext × plaintext.
    MulCP,
    /// Negation.
    Negate,
    /// Slot rotation (automorphism + key switch).
    Rotate,
    /// Rescale (divide by the last prime).
    Rescale,
    /// Modulus switch (drop the last prime).
    ModSwitch,
}

impl CostOp {
    /// All cost categories.
    pub const ALL: [CostOp; 8] = [
        CostOp::AddCC,
        CostOp::AddCP,
        CostOp::MulCC,
        CostOp::MulCP,
        CostOp::Negate,
        CostOp::Rotate,
        CostOp::Rescale,
        CostOp::ModSwitch,
    ];
}

/// A measured `(operation, active primes) → microseconds` table for one
/// ring degree, as produced by the backend profiler.
#[derive(Debug, Clone, Default)]
pub struct CostTable {
    /// Ring degree the table was measured at.
    pub degree: usize,
    entries: HashMap<(CostOp, usize), f64>,
}

impl CostTable {
    /// Creates an empty table for a degree.
    pub fn new(degree: usize) -> Self {
        CostTable {
            degree,
            entries: HashMap::new(),
        }
    }

    /// Records a measurement.
    pub fn set(&mut self, op: CostOp, active_primes: usize, micros: f64) {
        self.entries.insert((op, active_primes), micros);
    }

    /// All `(op, active primes, µs)` measurements, in no particular order.
    pub fn measurements(&self) -> impl Iterator<Item = (CostOp, usize, f64)> + '_ {
        self.entries.iter().map(|(&(op, c), &us)| (op, c, us))
    }

    /// Looks up a measurement; falls back to the nearest measured prefix
    /// scaled analytically if the exact prefix is missing.
    pub fn get(&self, op: CostOp, active_primes: usize) -> Option<f64> {
        if let Some(v) = self.entries.get(&(op, active_primes)) {
            return Some(*v);
        }
        // Nearest-neighbour fallback with analytic scaling.
        let nearest = self
            .entries
            .iter()
            .filter(|((o, _), _)| *o == op)
            .min_by_key(|((_, c), _)| c.abs_diff(active_primes))?;
        let ((_, c0), v0) = nearest;
        let a = analytic_cost_us(op, active_primes, self.degree);
        let b = analytic_cost_us(op, *c0, self.degree);
        Some(v0 * a / b)
    }
}

/// The latency model used by the estimator.
#[derive(Debug, Clone, Default)]
pub enum CostModel {
    /// Deterministic asymptotic model.
    #[default]
    Analytic,
    /// Table measured on the execution backend.
    Profiled(Arc<CostTable>),
}

impl CostModel {
    /// Cost of one operation in microseconds at the given active-prime
    /// count and ring degree.
    pub fn cost_us(&self, op: CostOp, active_primes: usize, degree: usize) -> f64 {
        match self {
            CostModel::Analytic => analytic_cost_us(op, active_primes, degree),
            CostModel::Profiled(t) => t
                .get(op, active_primes)
                .unwrap_or_else(|| analytic_cost_us(op, active_primes, degree)),
        }
    }
}

/// The analytic latency model, microseconds.
///
/// Shapes (with `c` = active primes, `n` = degree, `lg = log2 n`):
/// elementwise passes are `Θ(n·c)`, NTTs are `Θ(n·lg)` each, and key
/// switching performs `Θ(c²)` NTTs plus `Θ(n·c²)` accumulation — the
/// quadratic-in-level behaviour the paper describes. Constants are
/// calibrated to this repository's interpreter-free Rust backend.
pub fn analytic_cost_us(op: CostOp, c: usize, n: usize) -> f64 {
    let c = c as f64;
    let n = n as f64;
    let lg = n.log2();
    // Calibration constants (µs): 4 ns per element for pointwise passes,
    // 6 ns per point-stage for NTTs — measured against this repository's
    // backend at n = 512–4096.
    let elem = 0.004;
    let ntt_pass = |count: f64| count * 0.006 * n * lg;
    let pass = |count: f64| count * elem * n * c;
    // Key switch at prefix c: c digit lifts, c·(c+1) forward NTTs,
    // 2·(c+1) inverse NTTs, 2·c·(c+1) multiply-accumulate passes,
    // and a mod-down pass.
    let keyswitch = ntt_pass(c * (c + 1.0) + 2.0 * (c + 1.0) + 2.0 * c)
        + 2.0 * elem * n * c * (c + 1.0)
        + pass(4.0);
    match op {
        CostOp::AddCC => pass(2.0),
        // Plaintexts are pre-transformed to NTT form, so ct⊙pt operations
        // are pointwise passes only.
        CostOp::AddCP => pass(1.0),
        CostOp::Negate => pass(2.0),
        CostOp::MulCP => pass(2.0),
        CostOp::MulCC => pass(4.0) + keyswitch,
        CostOp::Rotate => pass(2.0) + ntt_pass(4.0 * c) + keyswitch,
        CostOp::Rescale => ntt_pass(4.0 * c) + pass(4.0),
        CostOp::ModSwitch => 0.002 * n,
    }
}

/// Maps an IR operation (with its operand types) to its cost category.
///
/// `encode` and `const` cost nothing at runtime (plaintexts are prepared
/// ahead of execution); `upscale` lowers to a plaintext multiplication;
/// `downscale` lowers to a plaintext multiplication plus a rescale.
fn categorize(op: &Op, operand_is_plain: impl Fn(usize) -> bool) -> Vec<CostOp> {
    match op {
        Op::Input { .. } | Op::Const { .. } | Op::Encode { .. } => vec![],
        Op::Add(..) | Op::Sub(..) => {
            if operand_is_plain(0) || operand_is_plain(1) {
                vec![CostOp::AddCP]
            } else {
                vec![CostOp::AddCC]
            }
        }
        Op::Mul(..) => {
            if operand_is_plain(0) || operand_is_plain(1) {
                vec![CostOp::MulCP]
            } else {
                vec![CostOp::MulCC]
            }
        }
        Op::Negate(..) => vec![CostOp::Negate],
        Op::Rotate { .. } => vec![CostOp::Rotate],
        Op::Rescale(..) => vec![CostOp::Rescale],
        Op::ModSwitch(..) => vec![CostOp::ModSwitch],
        Op::Upscale { .. } => vec![CostOp::MulCP],
        Op::Downscale(..) => vec![CostOp::MulCP, CostOp::Rescale],
    }
}

/// Statically estimates the output noise of a typed program, in log2 of
/// the decoded-domain standard deviation ("noise bits"; more negative is
/// more precise).
///
/// This is the scale-driven first-order CKKS model (messages assumed O(1)):
/// fresh encryption and encodings contribute rounding/RLWE noise inversely
/// proportional to their scale, multiplications and rotations add
/// key-switch noise at the result scale, and rescales add rounding at the
/// new scale. The paper's follow-on work (ELASM) explores exactly this
/// scale-vs-error trade-off; [`crate::options::Objective`] exposes it.
pub fn estimate_noise_bits(func: &Function, types: &[Type], degree: usize) -> f64 {
    let n = degree as f64;
    // log2 helpers for the noise sources (standard deviations).
    let fresh = |scale: f64| 0.5 * (2.0 * n * 10.5).log2() - scale;
    let encode = |scale: f64| 0.5 * (n / 12.0).log2() - scale;
    let keyswitch = |scale: f64| 0.5 * (n * n * 10.5 / 6.0).log2() - scale;
    let rounding = |scale: f64| 0.5 * (n * n / 36.0).log2() - scale;
    // log2(sqrt(2^2a + 2^2b)) — combine independent noises.
    let join = |a: f64, b: f64| {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        hi + 0.5 * (1.0 + 2f64.powf(2.0 * (lo - hi))).log2()
    };
    let mut nb: Vec<f64> = Vec::with_capacity(func.len());
    for (i, op) in func.ops().iter().enumerate() {
        let scale = types[i].scale().unwrap_or(0.0);
        let of = |v: &hecate_ir::ValueId| nb[v.index()];
        let v = match op {
            Op::Input { .. } => fresh(scale),
            Op::Const { .. } => f64::NEG_INFINITY,
            Op::Encode { .. } => encode(scale),
            Op::Add(a, b) | Op::Sub(a, b) => join(of(a), of(b)),
            Op::Mul(a, b) => {
                let base = join(of(a), of(b));
                if types[a.index()].is_cipher() && types[b.index()].is_cipher() {
                    join(base, keyswitch(scale))
                } else {
                    base
                }
            }
            Op::Negate(a) => of(a),
            Op::Rotate { value, .. } => join(of(value), keyswitch(scale)),
            Op::Rescale(a) | Op::Downscale(a) => join(of(a), rounding(scale)),
            Op::ModSwitch(a) | Op::Upscale { value: a, .. } => of(a),
        };
        nb.push(v);
    }
    func.outputs()
        .iter()
        .map(|(_, v)| nb[v.index()])
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Estimates the execution latency (microseconds) of a typed program on a
/// chain of `chain_len` primes at ring degree `degree`.
///
/// Each operation executes at the active-prime count implied by its
/// *operand* level (the work happens before the level changes).
pub fn estimate_latency_us(
    func: &Function,
    types: &[Type],
    model: &CostModel,
    chain_len: usize,
    degree: usize,
) -> f64 {
    latency_breakdown(func, types, model, chain_len, degree)
        .values()
        .sum()
}

/// Like [`estimate_latency_us`], but broken down per cost category —
/// useful for seeing where a compiled program spends its time (key
/// switching almost always dominates).
pub fn latency_breakdown(
    func: &Function,
    types: &[Type],
    model: &CostModel,
    chain_len: usize,
    degree: usize,
) -> std::collections::BTreeMap<CostOp, f64> {
    let mut totals = std::collections::BTreeMap::new();
    for (i, op) in func.ops().iter().enumerate() {
        let operands = op.operands();
        let operand_level = operands
            .iter()
            .filter_map(|v| types[v.index()].level())
            .max()
            .or_else(|| types[i].level())
            .unwrap_or(0);
        let active = chain_len.saturating_sub(operand_level).max(1);
        let is_plain = |k: usize| {
            operands
                .get(k)
                .map(|v| types[v.index()].is_plain())
                .unwrap_or(false)
        };
        for cat in categorize(op, is_plain) {
            *totals.entry(cat).or_insert(0.0) += model.cost_us(cat, active, degree);
        }
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::types::{infer_types, TypeConfig};
    use hecate_ir::FunctionBuilder;

    #[test]
    fn deeper_level_is_cheaper() {
        for op in [
            CostOp::MulCC,
            CostOp::Rotate,
            CostOp::AddCC,
            CostOp::Rescale,
        ] {
            let shallow = analytic_cost_us(op, 8, 4096);
            let deep = analytic_cost_us(op, 2, 4096);
            assert!(deep < shallow, "{op:?} should be cheaper with fewer primes");
        }
    }

    #[test]
    fn mul_level1_speedup_is_in_paper_ballpark() {
        // §II-C: level-1 multiplication ≈ 2.25× faster than level 0 — the
        // analytic model must show a clearly super-linear drop.
        let l0 = analytic_cost_us(CostOp::MulCC, 6, 8192);
        let l1 = analytic_cost_us(CostOp::MulCC, 5, 8192);
        let ratio = l0 / l1;
        assert!(
            ratio > 1.2 && ratio < 3.0,
            "level-1 speedup {ratio} out of plausible range"
        );
    }

    #[test]
    fn keyswitch_ops_dominate_elementwise() {
        let mul = analytic_cost_us(CostOp::MulCC, 4, 4096);
        let add = analytic_cost_us(CostOp::AddCC, 4, 4096);
        assert!(mul > 20.0 * add);
    }

    #[test]
    fn estimate_sums_and_respects_levels() {
        let mut b = FunctionBuilder::new("e", 4);
        let x = b.input_cipher("x");
        let m = b.mul(x, x);
        b.output(m);
        let f = b.finish();
        let cfg = TypeConfig::new(20.0, 40.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let model = CostModel::Analytic;
        let est = estimate_latency_us(&f, &tys, &model, 3, 1024);
        let expect = analytic_cost_us(CostOp::MulCC, 3, 1024);
        assert!((est - expect).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_estimate() {
        let mut b = FunctionBuilder::new("bd", 4);
        let x = b.input_cipher("x");
        let m = b.mul(x, x);
        let r = b.rotate(m, 1);
        let a = b.add(r, r);
        b.output(a);
        let f = b.finish();
        let cfg = TypeConfig::new(20.0, 60.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let model = CostModel::Analytic;
        let table = latency_breakdown(&f, &tys, &model, 3, 1024);
        let total: f64 = table.values().sum();
        let est = estimate_latency_us(&f, &tys, &model, 3, 1024);
        assert!((total - est).abs() < 1e-9);
        assert!(table.contains_key(&CostOp::MulCC));
        assert!(table.contains_key(&CostOp::Rotate));
        assert!(table.contains_key(&CostOp::AddCC));
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn profiled_table_lookup_and_fallback() {
        let mut t = CostTable::new(1024);
        t.set(CostOp::MulCC, 4, 1000.0);
        t.set(CostOp::MulCC, 2, 300.0);
        assert_eq!(t.get(CostOp::MulCC, 4), Some(1000.0));
        // Missing prefix 3 falls back to nearest with analytic scaling —
        // monotone between the two anchors.
        let v = t.get(CostOp::MulCC, 3).unwrap();
        assert!(v > 300.0 && v < 1000.0, "interpolated {v}");
        assert_eq!(t.get(CostOp::Rotate, 3), None);
    }

    #[test]
    fn downscale_costs_mulcp_plus_rescale() {
        use hecate_ir::{Function, Op, ValueId};
        let mut f = Function::new("d", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        let d = f.push(Op::Downscale(m));
        f.mark_output("o", d);
        let _ = (m, d);
        let cfg = TypeConfig::new(20.0, 60.0);
        let tys = infer_types(&f, &cfg).unwrap();
        let est = estimate_latency_us(&f, &tys, &CostModel::Analytic, 3, 1024);
        let expect = analytic_cost_us(CostOp::MulCC, 3, 1024)
            + analytic_cost_us(CostOp::MulCP, 3, 1024)
            + analytic_cost_us(CostOp::Rescale, 3, 1024);
        assert!((est - expect).abs() < 1e-9);
        let _ = ValueId(0);
    }
}
