//! Scale management unit (SMU) generation — paper §V, Algorithm 1.
//!
//! SMSE explores where to insert scale-management operations. Doing so per
//! use–def edge is intractable (Table III's "naïve" column), so HECATE
//! first partitions the program's ciphertext values into *units* whose
//! members share a scale/level trajectory and can be managed together. The
//! three phases:
//!
//! 1. **Definition-aware merge** (forward): values produced with the same
//!    scale and level fall into the same unit; scale-changing operations
//!    open a new unit per distinct `(operator, operand units)` combination,
//!    so parallel identical operations share a unit.
//! 2. **Operation-aware split**: multiplication results are split from
//!    non-multiplication results, because the multiplication prefix always
//!    has scale headroom (`≥ S_w²`) for proactive management.
//! 3. **User-aware split** (backward): values consumed by different units
//!    are separated, since different downstream plans may suit them.
//!
//! Plans then assign optimization degrees to *edges between units*.

use hecate_ir::analysis::users;
use hecate_ir::{Function, Op, ValueId};
use std::collections::HashMap;

/// The result of scale-management-unit analysis.
#[derive(Debug, Clone)]
pub struct SmuAnalysis {
    /// Unit of each value (`None` for free/plain values, which are not
    /// scale-managed).
    pub unit_of: Vec<Option<u32>>,
    /// Number of units.
    pub unit_count: usize,
    /// Distinct def→use edges between different units, sorted.
    pub edges: Vec<(u32, u32)>,
}

impl SmuAnalysis {
    /// The edge index of `(from, to)` if such an inter-unit edge exists.
    pub fn edge_index(&self, from: u32, to: u32) -> Option<usize> {
        self.edges.binary_search(&(from, to)).ok()
    }
}

/// Virtual scales of an input (pre-management) program: inputs and
/// constants at the waterline, `mul` adds scales, everything else
/// preserves the larger operand scale. All levels are zero, so "same scale
/// and level" reduces to equal virtual scale.
fn virtual_scales(func: &Function, waterline: f64) -> Vec<f64> {
    let mut s: Vec<f64> = Vec::with_capacity(func.len());
    for op in func.ops() {
        let get = |v: &ValueId| s[v.index()];
        let v = match op {
            Op::Input { .. } | Op::Const { .. } | Op::Encode { .. } => waterline,
            Op::Mul(a, b) => get(a) + get(b),
            Op::Add(a, b) | Op::Sub(a, b) => get(a).max(get(b)),
            Op::Negate(a) | Op::Rotate { value: a, .. } => get(a),
            // Input programs contain no scale management; treat as identity.
            Op::Rescale(a) | Op::ModSwitch(a) | Op::Upscale { value: a, .. } | Op::Downscale(a) => {
                get(a)
            }
        };
        s.push(v);
    }
    s
}

/// Whether each value is a ciphertext in the input program (inputs are
/// encrypted; cipherness propagates through operations).
fn cipherness(func: &Function) -> Vec<bool> {
    let mut c = Vec::with_capacity(func.len());
    for op in func.ops() {
        let v = match op {
            Op::Input { .. } => true,
            Op::Const { .. } => false,
            _ => op.operands().iter().any(|v| c[v.index()]),
        };
        c.push(v);
    }
    c
}

/// Union-find over unit labels.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }
    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }
    fn find(&mut self, x: u32) -> u32 {
        let p = self.parent[x as usize];
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent[x as usize] = root;
        root
    }
    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
        ra
    }
}

/// Which of Algorithm 1's split phases to run — the merge phase is always
/// on. Disabling a split is an ablation knob: fewer, coarser units mean a
/// smaller search space but fewer distinguishable plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmuOptions {
    /// Phase 2: split multiplication results from the rest.
    pub operation_split: bool,
    /// Phase 3: split values consumed by different units.
    pub user_split: bool,
}

impl Default for SmuOptions {
    fn default() -> Self {
        SmuOptions {
            operation_split: true,
            user_split: true,
        }
    }
}

/// Runs the three-phase SMU analysis on an input program.
pub fn analyze(func: &Function, waterline: f64) -> SmuAnalysis {
    analyze_with(func, waterline, &SmuOptions::default())
}

/// Runs the SMU analysis with selected phases (ablation entry point).
pub fn analyze_with(func: &Function, waterline: f64, opts: &SmuOptions) -> SmuAnalysis {
    let scales = virtual_scales(func, waterline);
    let cipher = cipherness(func);
    let n = func.len();

    // ---- Phase 1: definition-aware merge (forward). ----
    let mut uf = UnionFind::new();
    let mut label: Vec<Option<u32>> = vec![None; n];
    // Memo of (operator, operand units) → unit, for scale-changing ops.
    let mut combo: HashMap<(&'static str, Vec<u32>), u32> = HashMap::new();
    let mut input_unit: Option<u32> = None;

    for (i, op) in func.ops().iter().enumerate() {
        if !cipher[i] {
            continue;
        }
        let cipher_operands: Vec<usize> = op
            .operands()
            .iter()
            .map(|v| v.index())
            .filter(|&v| cipher[v])
            .collect();
        let new_label = match op {
            Op::Input { .. } => {
                let u = *input_unit.get_or_insert_with(|| uf.make());
                u
            }
            Op::Add(a, b) | Op::Sub(a, b) if cipher[a.index()] && cipher[b.index()] => {
                let (ua, ub) = (
                    uf.find(label[a.index()].expect("cipher labelled")),
                    uf.find(label[b.index()].expect("cipher labelled")),
                );
                if (scales[a.index()] - scales[b.index()]).abs() < 1e-9 {
                    // Same scale and level: merge operands and result.
                    uf.union(ua, ub)
                } else {
                    let mut key = vec![ua, ub];
                    key.sort_unstable();
                    *combo.entry(("add", key)).or_insert_with(|| uf.make())
                }
            }
            Op::Add(..) | Op::Sub(..) => {
                // Plaintext addition: scale/level unchanged — join the
                // cipher operand's unit.
                uf.find(label[cipher_operands[0]].expect("cipher labelled"))
            }
            Op::Mul(a, b) => {
                if cipher[a.index()] && cipher[b.index()] {
                    let mut key = vec![
                        uf.find(label[a.index()].expect("labelled")),
                        uf.find(label[b.index()].expect("labelled")),
                    ];
                    key.sort_unstable();
                    *combo.entry(("mul", key)).or_insert_with(|| uf.make())
                } else {
                    let key = vec![uf.find(label[cipher_operands[0]].expect("labelled"))];
                    *combo.entry(("mulp", key)).or_insert_with(|| uf.make())
                }
            }
            // Scale/level-preserving unary operations join their operand.
            _ => uf.find(label[cipher_operands[0]].expect("cipher labelled")),
        };
        label[i] = Some(new_label);
    }

    // Resolve union-find to canonical phase-1 units.
    let mut phase1: Vec<Option<u32>> = label.iter().map(|l| l.map(|x| uf.find(x))).collect();

    // ---- Phase 2: operation-aware split (mul prefix vs the rest). ----
    let mut split2: HashMap<(u32, bool), u32> = HashMap::new();
    let mut next = 0u32;
    for (i, op) in func.ops().iter().enumerate() {
        if let Some(u) = phase1[i] {
            let is_mul = opts.operation_split && matches!(op, Op::Mul(..));
            let id = *split2.entry((u, is_mul)).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            phase1[i] = Some(id);
        }
    }

    // ---- Phase 3: user-aware split (backward). ----
    // The signature of a value is the set of (phase-2) units its users'
    // results belong to; members of a unit consumed by different units are
    // separated. Using phase-2 units keeps long same-unit chains together
    // (a final-unit signature would cascade a fresh unit down every link).
    let use_lists = users(func);
    let mut split3: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
    let mut next3 = 0u32;
    let mut unit_of: Vec<Option<u32>> = vec![None; n];
    for i in (0..n).rev() {
        let Some(u) = phase1[i] else { continue };
        let mut sig: Vec<u32> = if opts.user_split {
            use_lists[i]
                .iter()
                .filter_map(|user| phase1[user.index()])
                .collect()
        } else {
            Vec::new()
        };
        sig.sort_unstable();
        sig.dedup();
        let id = *split3.entry((u, sig)).or_insert_with(|| {
            let id = next3;
            next3 += 1;
            id
        });
        unit_of[i] = Some(id);
    }

    // ---- Edges between units. ----
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, op) in func.ops().iter().enumerate() {
        let Some(to) = unit_of[i] else { continue };
        for v in op.operands() {
            if let Some(from) = unit_of[v.index()] {
                if from != to {
                    edges.push((from, to));
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();

    SmuAnalysis {
        unit_of,
        unit_count: next3 as usize,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::FunctionBuilder;
    use std::collections::HashSet;

    /// The paper's Fig. 6 example: (x² + y²)·z.
    fn fig6() -> (Function, [ValueId; 7]) {
        let mut b = FunctionBuilder::new("fig6", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let z = b.input_cipher("z");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let sum = b.add(x2, y2);
        let prod = b.mul(sum, z);
        b.output(prod);
        (b.finish(), [x, y, z, x2, y2, sum, prod])
    }

    #[test]
    fn fig6_units_match_paper() {
        let (f, [x, y, z, x2, y2, sum, prod]) = fig6();
        let smu = analyze(&f, 20.0);
        let u = |v: ValueId| smu.unit_of[v.index()].unwrap();
        // Fig. 6c: {x, y}, {z}, {x², y²}, {x²+y²}, {(x²+y²)z}.
        assert_eq!(u(x), u(y));
        assert_ne!(u(x), u(z));
        assert_eq!(u(x2), u(y2));
        assert_ne!(u(x2), u(sum));
        assert_ne!(u(sum), u(prod));
        assert_eq!(smu.unit_count, 5);
        // Edges: inputs→squares, squares→sum, sum→prod, z→prod.
        assert_eq!(smu.edges.len(), 4);
        let expected: HashSet<(u32, u32)> = [
            (u(x), u(x2)),
            (u(x2), u(sum)),
            (u(sum), u(prod)),
            (u(z), u(prod)),
        ]
        .into_iter()
        .collect();
        assert_eq!(smu.edges.iter().copied().collect::<HashSet<_>>(), expected);
    }

    #[test]
    fn parallel_identical_ops_share_units() {
        // Sixteen parallel squares of inputs collapse into one unit.
        let mut b = FunctionBuilder::new("par", 4);
        let inputs: Vec<ValueId> = (0..16).map(|i| b.input_cipher(format!("x{i}"))).collect();
        let squares: Vec<ValueId> = inputs.iter().map(|&v| b.square(v)).collect();
        // Sum them pairwise (same scale, merges).
        let mut acc = squares[0];
        for &s in &squares[1..] {
            acc = b.add(acc, s);
        }
        b.output(acc);
        let f = b.finish();
        let smu = analyze(&f, 20.0);
        // Units: inputs; squares; intermediate sums; the final sum (outputs
        // have an empty user signature and split off): 4 units.
        assert_eq!(smu.unit_count, 4);
        assert!(smu.edges.len() <= 4);
    }

    #[test]
    fn plaintext_ops_stay_in_operand_unit() {
        let mut b = FunctionBuilder::new("pt", 4);
        let x = b.input_cipher("x");
        let c = b.splat(1.5);
        let shifted = b.add(x, c); // +p: same unit as x
        let rotated = b.rotate(shifted, 1); // preserves type: same unit
        b.output(rotated);
        let f = b.finish();
        let smu = analyze(&f, 20.0);
        assert_eq!(smu.unit_of[c.index()], None);
        assert_eq!(smu.unit_of[x.index()], smu.unit_of[shifted.index()]);
        // The output value has an empty user signature and splits off; the
        // +p and rotate results otherwise stay with their operand.
        assert_eq!(smu.unit_count, 2);
        assert!(smu.edges.len() <= 1);
    }

    #[test]
    fn ct_pt_mul_opens_new_unit_shared_across_parallel_uses() {
        let mut b = FunctionBuilder::new("ptmul", 4);
        let x = b.input_cipher("x");
        let c1 = b.splat(2.0);
        let c2 = b.splat(3.0);
        let m1 = b.mul(x, c1);
        let m2 = b.mul(x, c2);
        let s = b.add(m1, m2);
        b.output(s);
        let f = b.finish();
        let smu = analyze(&f, 20.0);
        // Both ct×pt muls from x's unit share one unit; the add (merged in
        // phase 1, split from the muls in phase 2) is its own output unit.
        assert_eq!(smu.unit_of[m1.index()], smu.unit_of[m2.index()]);
        assert_eq!(smu.unit_count, 3);
        assert_eq!(smu.edges.len(), 2);
    }

    #[test]
    fn user_aware_split_separates_differently_used_inputs() {
        // x used in a square; z used in a product with the square: the
        // inputs must not share a unit (Fig. 6 phase 3).
        let (f, [x, _, z, ..]) = fig6();
        let smu = analyze(&f, 20.0);
        assert_ne!(smu.unit_of[x.index()], smu.unit_of[z.index()]);
    }

    #[test]
    fn smu_count_far_below_uses_for_wide_programs() {
        // A reduction tree: many uses, few units (Table III's point).
        let mut b = FunctionBuilder::new("tree", 64);
        let inputs: Vec<ValueId> = (0..32).map(|i| b.input_cipher(format!("x{i}"))).collect();
        let prods: Vec<ValueId> = inputs.chunks(2).map(|p| b.mul(p[0], p[1])).collect();
        let mut layer = prods;
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|p| b.add(p[0], p[1])).collect();
        }
        b.output(layer[0]);
        let f = b.finish();
        let uses = hecate_ir::analysis::use_edge_count(&f);
        let smu = analyze(&f, 20.0);
        assert!(uses >= 60, "got {uses} uses");
        assert!(smu.unit_count <= 4, "got {} units", smu.unit_count);
    }
}
