//! The HECATE intermediate representation and type system (paper §IV).
//!
//! This crate defines the IR the compiler optimizes:
//!
//! - [`ir`] — the SSA value graph with homomorphic operations (`add`,
//!   `sub`, `mul`, `negate`, `rotate`) and the opaque scale-management
//!   operations (`encode`, `rescale`, `modswitch`, `upscale`, and HECATE's
//!   new `downscale`);
//! - [`types`] — the `free | plain(j,k) | cipher(j,k)` type system with
//!   inference rules Eq. 1–6 and the RNS-CKKS constraints C1–C3;
//! - [`builder`] — the frontend eDSL applications use to write programs;
//! - [`analysis`] — use–def information, liveness, and dead-code
//!   elimination;
//! - [`transform`] — common subexpression elimination and constant
//!   folding (the pre-scale-management cleanup pipeline);
//! - [`interp`] — the plaintext reference interpreter (the homomorphism
//!   ground truth);
//! - [`verify`] — the per-pass plan verifier re-checking the full
//!   invariant set (C1/C2, level monotonicity, rescale legality) after
//!   every transformation, reporting structured [`verify::VerifyError`]s;
//! - [`print`](mod@print) / [`parse`] — textual rendering in the style of
//!   the paper's Fig. 4, and parsing of the same form (used by the
//!   `hecatec` driver);
//! - [`hash`] — the stable FNV-1a content hash over the canonical print
//!   form, which the serving layer uses as its compilation-cache key.
//!
//! Scales are nominal log2 bits: inputs enter at the waterline, `mul` adds
//! scales, `rescale` subtracts the rescale factor `S_f`, and `downscale`
//! resets to the waterline. Backends absorb the tiny offset between `2^{S_f}`
//! and the actual rescale primes by re-declaring scales after rescaling,
//! exactly as EVA/SEAL practice does.
//!
//! # Example
//!
//! ```
//! use hecate_ir::builder::FunctionBuilder;
//! use hecate_ir::types::{infer_types, TypeConfig, Type};
//!
//! let mut b = FunctionBuilder::new("square", 4);
//! let x = b.input_cipher("x");
//! let sq = b.square(x);
//! b.output(sq);
//! let f = b.finish();
//!
//! let tys = infer_types(&f, &TypeConfig::new(20.0, 40.0))?;
//! assert_eq!(tys[1], Type::Cipher { scale: 40.0, level: 0 });
//! # Ok::<(), hecate_ir::types::TypeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod hash;
pub mod interp;
pub mod ir;
pub mod parse;
pub mod print;
pub mod transform;
pub mod types;
pub mod verify;

pub use analysis::{packed_shift, slot_footprint, slot_reaches, SlotFootprint};
pub use builder::FunctionBuilder;
pub use hash::function_hash;
pub use ir::{ConstData, Function, Op, ValueId};
pub use types::{infer_types, Type, TypeConfig, TypeError};
pub use verify::{verify_input, verify_plan, Invariant, VerifyError};
