//! The HECATE intermediate representation (paper Fig. 4).
//!
//! A [`Function`] is a flat SSA arena: instruction `i` defines value `i`,
//! and operands always refer to earlier instructions, so index order is a
//! topological order. *Homomorphic* operations (`add`, `sub`, `mul`,
//! `negate`, `rotate`) mirror their plaintext counterparts; *opaque*
//! operations (`rescale`, `modswitch`, `upscale`, `downscale`, `encode`)
//! only manipulate the scale/level properties and never appear in input
//! programs — the compiler inserts them.

use std::fmt;

/// A value in the SSA arena (the index of its defining operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Constant payload: a vector of reals, broadcast if shorter than the
/// function's vector size (a single element is a scalar splat).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstData {
    /// The raw values.
    pub values: Vec<f64>,
}

impl ConstData {
    /// A scalar constant, broadcast across all slots.
    pub fn splat(v: f64) -> Self {
        ConstData { values: vec![v] }
    }

    /// A full vector constant.
    pub fn vector(values: Vec<f64>) -> Self {
        ConstData { values }
    }

    /// The value at slot `i` under broadcast semantics.
    pub fn at(&self, i: usize) -> f64 {
        if self.values.len() == 1 {
            self.values[0]
        } else {
            self.values.get(i).copied().unwrap_or(0.0)
        }
    }

    /// The largest magnitude in the payload (used for waterline selection).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

/// One IR operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// An encrypted input (cipher type at the waterline scale, level 0).
    Input {
        /// Parameter name.
        name: String,
    },
    /// An unencoded constant (free type).
    Const {
        /// The payload.
        data: ConstData,
    },
    /// Encodes a free value into a plaintext at a given scale and level
    /// (PARS step (a)).
    Encode {
        /// The free-type operand.
        value: ValueId,
        /// Scale of the plaintext, log2 bits.
        scale_bits: f64,
        /// Level (RNS prefix) of the plaintext.
        level: usize,
    },
    /// Homomorphic addition.
    Add(ValueId, ValueId),
    /// Homomorphic subtraction.
    Sub(ValueId, ValueId),
    /// Homomorphic multiplication.
    Mul(ValueId, ValueId),
    /// Homomorphic negation.
    Negate(ValueId),
    /// Cyclic left rotation of the slot vector.
    Rotate {
        /// The cipher operand.
        value: ValueId,
        /// Left-rotation amount (slots).
        step: usize,
    },
    /// Divide the scale by the rescale factor `S_f`, level +1 (Table I).
    Rescale(ValueId),
    /// Keep the scale, level +1 (Table I).
    ModSwitch(ValueId),
    /// Raise the scale to `target_bits` by multiplying with a constant-one
    /// plaintext (syntactic sugar, Eq. 5).
    Upscale {
        /// The scaled operand.
        value: ValueId,
        /// Desired scale, log2 bits.
        target_bits: f64,
    },
    /// Reduce the scale to the waterline `S_w`, level +1 — HECATE's new
    /// operation (Table I, Eq. 6).
    Downscale(ValueId),
}

impl Op {
    /// The operand values of this operation, in order.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Op::Input { .. } | Op::Const { .. } => vec![],
            Op::Encode { value, .. }
            | Op::Negate(value)
            | Op::Rotate { value, .. }
            | Op::Rescale(value)
            | Op::ModSwitch(value)
            | Op::Upscale { value, .. }
            | Op::Downscale(value) => vec![*value],
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => vec![*a, *b],
        }
    }

    /// Whether this is one of the opaque scale-management operations
    /// (inserted by the compiler, absent from input programs).
    pub fn is_scale_management(&self) -> bool {
        matches!(
            self,
            Op::Encode { .. }
                | Op::Rescale(_)
                | Op::ModSwitch(_)
                | Op::Upscale { .. }
                | Op::Downscale(_)
        )
    }

    /// A short mnemonic for printing.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Const { .. } => "const",
            Op::Encode { .. } => "encode",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Negate(..) => "negate",
            Op::Rotate { .. } => "rotate",
            Op::Rescale(..) => "rescale",
            Op::ModSwitch(..) => "modswitch",
            Op::Upscale { .. } => "upscale",
            Op::Downscale(..) => "downscale",
        }
    }
}

/// Structural errors found by [`Function::verify_structure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// An operand refers to a later (or same) instruction.
    ForwardReference {
        /// The offending instruction.
        at: ValueId,
        /// The operand that points forward.
        operand: ValueId,
    },
    /// An operand index is out of range.
    DanglingOperand {
        /// The offending instruction.
        at: ValueId,
        /// The out-of-range operand.
        operand: ValueId,
    },
    /// An output refers to a value that does not exist.
    DanglingOutput {
        /// The output name.
        name: String,
    },
    /// The function has no outputs.
    NoOutputs,
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::ForwardReference { at, operand } => {
                write!(f, "instruction {at} uses not-yet-defined value {operand}")
            }
            StructureError::DanglingOperand { at, operand } => {
                write!(f, "instruction {at} uses out-of-range value {operand}")
            }
            StructureError::DanglingOutput { name } => {
                write!(f, "output '{name}' refers to a missing value")
            }
            StructureError::NoOutputs => write!(f, "function has no outputs"),
        }
    }
}

impl std::error::Error for StructureError {}

/// An FHE function: a flat list of operations plus named outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (used in printing and reports).
    pub name: String,
    /// Logical vector width of all values (≤ the backend's slot count).
    pub vec_size: usize,
    ops: Vec<Op>,
    outputs: Vec<(String, ValueId)>,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, vec_size: usize) -> Self {
        Function {
            name: name.into(),
            vec_size,
            ops: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Appends an operation, returning its value.
    pub fn push(&mut self, op: Op) -> ValueId {
        let id = ValueId(self.ops.len() as u32);
        self.ops.push(op);
        id
    }

    /// Marks a value as a named output.
    pub fn mark_output(&mut self, name: impl Into<String>, v: ValueId) {
        self.outputs.push((name.into(), v));
    }

    /// The operations in definition (= topological) order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The operation defining `v`.
    pub fn op(&self, v: ValueId) -> &Op {
        &self.ops[v.index()]
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the function has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, ValueId)] {
        &self.outputs
    }

    /// All values over which this function iterates.
    pub fn value_ids(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.ops.len() as u32).map(ValueId)
    }

    /// Checks SSA well-formedness: operands defined before use, outputs in
    /// range, at least one output.
    ///
    /// # Errors
    /// Returns the first [`StructureError`] found.
    pub fn verify_structure(&self) -> Result<(), StructureError> {
        for (i, op) in self.ops.iter().enumerate() {
            let at = ValueId(i as u32);
            for operand in op.operands() {
                if operand.index() >= self.ops.len() {
                    return Err(StructureError::DanglingOperand { at, operand });
                }
                if operand.index() >= i {
                    return Err(StructureError::ForwardReference { at, operand });
                }
            }
        }
        if self.outputs.is_empty() {
            return Err(StructureError::NoOutputs);
        }
        for (name, v) in &self.outputs {
            if v.index() >= self.ops.len() {
                return Err(StructureError::DanglingOutput { name: name.clone() });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Function {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let y = f.push(Op::Mul(x, x));
        f.mark_output("out", y);
        f
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let f = tiny();
        assert_eq!(f.len(), 2);
        assert_eq!(f.op(ValueId(1)).operands(), vec![ValueId(0), ValueId(0)]);
    }

    #[test]
    fn structure_ok_for_wellformed() {
        assert_eq!(tiny().verify_structure(), Ok(()));
    }

    #[test]
    fn forward_reference_detected() {
        let mut f = Function::new("bad", 4);
        let x = f.push(Op::Negate(ValueId(1))); // refers to itself +1
        f.push(Op::Input { name: "x".into() });
        f.mark_output("o", x);
        assert!(matches!(
            f.verify_structure(),
            Err(StructureError::ForwardReference { .. })
        ));
    }

    #[test]
    fn dangling_operand_detected() {
        let mut f = Function::new("bad", 4);
        let x = f.push(Op::Negate(ValueId(99)));
        f.mark_output("o", x);
        assert!(matches!(
            f.verify_structure(),
            Err(StructureError::DanglingOperand { .. })
        ));
    }

    #[test]
    fn missing_outputs_detected() {
        let mut f = Function::new("bad", 4);
        f.push(Op::Input { name: "x".into() });
        assert_eq!(f.verify_structure(), Err(StructureError::NoOutputs));
        f.mark_output("ghost", ValueId(9));
        assert!(matches!(
            f.verify_structure(),
            Err(StructureError::DanglingOutput { .. })
        ));
    }

    #[test]
    fn const_broadcast_semantics() {
        let s = ConstData::splat(2.5);
        assert_eq!(s.at(0), 2.5);
        assert_eq!(s.at(7), 2.5);
        let v = ConstData::vector(vec![1.0, -3.0]);
        assert_eq!(v.at(1), -3.0);
        assert_eq!(v.at(2), 0.0);
        assert_eq!(v.max_abs(), 3.0);
    }

    #[test]
    fn scale_management_classification() {
        let x = ValueId(0);
        assert!(Op::Rescale(x).is_scale_management());
        assert!(Op::Downscale(x).is_scale_management());
        assert!(Op::ModSwitch(x).is_scale_management());
        assert!(Op::Upscale {
            value: x,
            target_bits: 40.0
        }
        .is_scale_management());
        assert!(!Op::Mul(x, x).is_scale_management());
        assert!(!Op::Rotate { value: x, step: 1 }.is_scale_management());
    }
}
