//! The HECATE scale/level type system (paper §IV-B).
//!
//! Every value has a type: `free` (an unencoded constant), `plain(j, k)`
//! (encoded, scale `j`, level `k`), or `cipher(j, k)` (encrypted). Scales
//! are tracked in log2 bits. Type inference implements the typing rules
//! Eq. 1–6 and simultaneously checks the three RNS-CKKS constraints:
//!
//! - **C1** — the scale never exceeds the available coefficient modulus;
//! - **C2** — rescaling never pushes a scale below the waterline `S_w`;
//! - **C3** — binary-operation operands sit at the same level (and adds at
//!   the same scale).
//!
//! Inference is deterministic given the [`TypeConfig`], so the compiler
//! re-runs it after every transformation as a verifier.

use crate::ir::{Function, Op, ValueId};

/// Comparison slack for scale equality, in log2 bits. Nominal scales are
/// integers, so anything below 1e-6 is a genuine mismatch.
pub const SCALE_EPS: f64 = 1e-6;

/// The type of an IR value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Type {
    /// An unencoded message (constants before the encode step).
    Free,
    /// An encoded plaintext with scale (log2 bits) and level.
    Plain {
        /// Scale, log2 bits.
        scale: f64,
        /// Rescaling level.
        level: usize,
    },
    /// A ciphertext with scale (log2 bits) and level.
    Cipher {
        /// Scale, log2 bits.
        scale: f64,
        /// Rescaling level.
        level: usize,
    },
}

impl Type {
    /// The scale, if this is a scaled (plain/cipher) type.
    pub fn scale(&self) -> Option<f64> {
        match self {
            Type::Free => None,
            Type::Plain { scale, .. } | Type::Cipher { scale, .. } => Some(*scale),
        }
    }

    /// The level, if this is a scaled type.
    pub fn level(&self) -> Option<usize> {
        match self {
            Type::Free => None,
            Type::Plain { level, .. } | Type::Cipher { level, .. } => Some(*level),
        }
    }

    /// True for ciphertexts.
    pub fn is_cipher(&self) -> bool {
        matches!(self, Type::Cipher { .. })
    }

    /// True for plaintexts.
    pub fn is_plain(&self) -> bool {
        matches!(self, Type::Plain { .. })
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Free => write!(f, "free"),
            Type::Plain { scale, level } => write!(f, "plain({scale:.0},{level})"),
            Type::Cipher { scale, level } => write!(f, "cipher({scale:.0},{level})"),
        }
    }
}

/// The scale-management environment type inference runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeConfig {
    /// The waterline `S_w` (minimum scale), log2 bits.
    pub waterline: f64,
    /// The rescale factor `S_f`, log2 bits.
    pub rescale_bits: f64,
    /// Maximum level the modulus chain supports, if already fixed.
    pub max_level: Option<usize>,
    /// Modulus budget for C1: available modulus bits at level 0 (the whole
    /// chain). At level `k` the budget shrinks by `k·rescale_bits`.
    pub modulus_bits: Option<f64>,
}

impl TypeConfig {
    /// A config with the given waterline and rescale factor and no modulus
    /// budget (C1 deferred until parameter selection).
    pub fn new(waterline: f64, rescale_bits: f64) -> Self {
        TypeConfig {
            waterline,
            rescale_bits,
            max_level: None,
            modulus_bits: None,
        }
    }

    /// Modulus bits available at `level`, if a budget is set.
    pub fn budget_at(&self, level: usize) -> Option<f64> {
        self.modulus_bits
            .map(|m| m - level as f64 * self.rescale_bits)
    }
}

/// Type errors — one per violated rule or constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A binary operation saw a free operand (the encode step is missing).
    FreeOperand {
        /// The offending instruction.
        at: ValueId,
    },
    /// Operand levels differ (C3).
    LevelMismatch {
        /// The offending instruction.
        at: ValueId,
        /// Left level.
        lhs: usize,
        /// Right level.
        rhs: usize,
    },
    /// Add/sub operand scales differ (C3).
    ScaleMismatch {
        /// The offending instruction.
        at: ValueId,
        /// Left scale (bits).
        lhs: f64,
        /// Right scale (bits).
        rhs: f64,
    },
    /// Rescale would push the scale below the waterline (C2).
    BelowWaterline {
        /// The offending instruction.
        at: ValueId,
        /// Scale after the operation (bits).
        result_scale: f64,
    },
    /// Scale exceeds the modulus budget (C1).
    ScaleOverflow {
        /// The offending instruction.
        at: ValueId,
        /// Scale (bits).
        scale: f64,
        /// Budget at the value's level (bits).
        budget: f64,
    },
    /// Level exceeds the chain length.
    LevelOverflow {
        /// The offending instruction.
        at: ValueId,
        /// The level reached.
        level: usize,
        /// The maximum allowed.
        max: usize,
    },
    /// An operation required a cipher (or scaled) operand but got another
    /// kind — e.g. `rescale` on a plaintext (Eq. 3) or `downscale` where
    /// `rescale` was applicable (Eq. 6).
    BadOperandKind {
        /// The offending instruction.
        at: ValueId,
        /// Human-readable rule violated.
        rule: &'static str,
    },
    /// `upscale` with a target below the current scale (Eq. 5).
    UpscaleBelowCurrent {
        /// The offending instruction.
        at: ValueId,
        /// Current scale (bits).
        current: f64,
        /// Requested target (bits).
        target: f64,
    },
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::FreeOperand { at } => {
                write!(f, "{at}: free operand in binary operation (missing encode)")
            }
            TypeError::LevelMismatch { at, lhs, rhs } => {
                write!(f, "{at}: operand levels {lhs} and {rhs} differ (C3)")
            }
            TypeError::ScaleMismatch { at, lhs, rhs } => {
                write!(
                    f,
                    "{at}: operand scales 2^{lhs:.2} and 2^{rhs:.2} differ (C3)"
                )
            }
            TypeError::BelowWaterline { at, result_scale } => {
                write!(f, "{at}: scale 2^{result_scale:.2} below waterline (C2)")
            }
            TypeError::ScaleOverflow { at, scale, budget } => {
                write!(
                    f,
                    "{at}: scale 2^{scale:.2} exceeds budget 2^{budget:.2} (C1)"
                )
            }
            TypeError::LevelOverflow { at, level, max } => {
                write!(f, "{at}: level {level} exceeds chain maximum {max}")
            }
            TypeError::BadOperandKind { at, rule } => write!(f, "{at}: {rule}"),
            TypeError::UpscaleBelowCurrent {
                at,
                current,
                target,
            } => {
                write!(
                    f,
                    "{at}: upscale target 2^{target:.2} below current 2^{current:.2}"
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Infers the type of every value and verifies C1–C3 (plus the per-rule
/// side conditions of Eq. 3–6).
///
/// # Errors
/// Returns the first [`TypeError`] encountered in definition order.
pub fn infer_types(func: &Function, cfg: &TypeConfig) -> Result<Vec<Type>, TypeError> {
    let mut types: Vec<Type> = Vec::with_capacity(func.len());
    for (i, op) in func.ops().iter().enumerate() {
        let at = ValueId(i as u32);
        let ty = infer_op(op, &types, cfg, at)?;
        types.push(ty);
    }
    Ok(types)
}

/// Infers the type of a single operation given the types of all earlier
/// values. This is the incremental form of [`infer_types`] used by the
/// compiler's code generators, which type-check as they emit.
///
/// # Errors
/// Returns a [`TypeError`] if the operation violates a typing rule.
pub fn infer_op(op: &Op, types: &[Type], cfg: &TypeConfig, at: ValueId) -> Result<Type, TypeError> {
    let ty = infer_one(op, types, cfg, at)?;
    // C1 / level-bound checks for the produced value.
    if let (Some(scale), Some(level)) = (ty.scale(), ty.level()) {
        if let Some(max) = cfg.max_level {
            if level > max {
                return Err(TypeError::LevelOverflow { at, level, max });
            }
        }
        if let Some(budget) = cfg.budget_at(level) {
            if scale > budget + SCALE_EPS {
                return Err(TypeError::ScaleOverflow { at, scale, budget });
            }
        }
    }
    Ok(ty)
}

fn infer_one(op: &Op, types: &[Type], cfg: &TypeConfig, at: ValueId) -> Result<Type, TypeError> {
    let ty = |v: ValueId| types[v.index()];
    match op {
        Op::Input { .. } => Ok(Type::Cipher {
            scale: cfg.waterline,
            level: 0,
        }),
        Op::Const { .. } => Ok(Type::Free),
        Op::Encode {
            value,
            scale_bits,
            level,
        } => match ty(*value) {
            Type::Free => Ok(Type::Plain {
                scale: *scale_bits,
                level: *level,
            }),
            _ => Err(TypeError::BadOperandKind {
                at,
                rule: "encode requires a free operand",
            }),
        },
        Op::Add(a, b) | Op::Sub(a, b) => {
            let (ta, tb) = (ty(*a), ty(*b));
            let (sa, sb) = match (ta.scale(), tb.scale()) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err(TypeError::FreeOperand { at }),
            };
            let (la, lb) = (ta.level().unwrap(), tb.level().unwrap());
            if la != lb {
                return Err(TypeError::LevelMismatch {
                    at,
                    lhs: la,
                    rhs: lb,
                });
            }
            if (sa - sb).abs() > SCALE_EPS {
                return Err(TypeError::ScaleMismatch {
                    at,
                    lhs: sa,
                    rhs: sb,
                });
            }
            if !(ta.is_cipher() || tb.is_cipher()) {
                return Err(TypeError::BadOperandKind {
                    at,
                    rule: "binary operation needs at least one cipher operand",
                });
            }
            Ok(Type::Cipher {
                scale: sa,
                level: la,
            })
        }
        Op::Mul(a, b) => {
            let (ta, tb) = (ty(*a), ty(*b));
            let (sa, sb) = match (ta.scale(), tb.scale()) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err(TypeError::FreeOperand { at }),
            };
            let (la, lb) = (ta.level().unwrap(), tb.level().unwrap());
            if la != lb {
                return Err(TypeError::LevelMismatch {
                    at,
                    lhs: la,
                    rhs: lb,
                });
            }
            if !(ta.is_cipher() || tb.is_cipher()) {
                return Err(TypeError::BadOperandKind {
                    at,
                    rule: "binary operation needs at least one cipher operand",
                });
            }
            Ok(Type::Cipher {
                scale: sa + sb,
                level: la,
            })
        }
        Op::Negate(v) => match ty(*v) {
            Type::Cipher { scale, level } => Ok(Type::Cipher { scale, level }),
            _ => Err(TypeError::BadOperandKind {
                at,
                rule: "negate requires a cipher operand",
            }),
        },
        Op::Rotate { value, .. } => match ty(*value) {
            Type::Cipher { scale, level } => Ok(Type::Cipher { scale, level }),
            _ => Err(TypeError::BadOperandKind {
                at,
                rule: "rotate requires a cipher operand",
            }),
        },
        Op::Rescale(v) => match ty(*v) {
            Type::Cipher { scale, level } => {
                let result = scale - cfg.rescale_bits;
                if result < cfg.waterline - SCALE_EPS {
                    return Err(TypeError::BelowWaterline {
                        at,
                        result_scale: result,
                    });
                }
                Ok(Type::Cipher {
                    scale: result,
                    level: level + 1,
                })
            }
            _ => Err(TypeError::BadOperandKind {
                at,
                rule: "rescale requires a cipher operand (Eq. 3)",
            }),
        },
        Op::ModSwitch(v) => match ty(*v) {
            Type::Cipher { scale, level } => Ok(Type::Cipher {
                scale,
                level: level + 1,
            }),
            Type::Plain { scale, level } => Ok(Type::Plain {
                scale,
                level: level + 1,
            }),
            Type::Free => Err(TypeError::BadOperandKind {
                at,
                rule: "modswitch requires a scaled operand (Eq. 4)",
            }),
        },
        Op::Upscale { value, target_bits } => {
            let t = ty(*value);
            let (scale, level) = match (t.scale(), t.level()) {
                (Some(s), Some(l)) => (s, l),
                _ => {
                    return Err(TypeError::BadOperandKind {
                        at,
                        rule: "upscale requires a scaled operand (Eq. 5)",
                    })
                }
            };
            if *target_bits < scale - SCALE_EPS {
                return Err(TypeError::UpscaleBelowCurrent {
                    at,
                    current: scale,
                    target: *target_bits,
                });
            }
            match t {
                Type::Cipher { .. } => Ok(Type::Cipher {
                    scale: *target_bits,
                    level,
                }),
                _ => Ok(Type::Plain {
                    scale: *target_bits,
                    level,
                }),
            }
        }
        Op::Downscale(v) => match ty(*v) {
            Type::Cipher { scale, level } => {
                // Eq. 6: downscale only where rescale is not applicable and
                // there is actually scale to shed.
                if scale - cfg.rescale_bits >= cfg.waterline - SCALE_EPS {
                    return Err(TypeError::BadOperandKind {
                        at,
                        rule: "downscale where rescale applies (Eq. 6)",
                    });
                }
                if scale < cfg.waterline - SCALE_EPS {
                    return Err(TypeError::BelowWaterline {
                        at,
                        result_scale: scale,
                    });
                }
                Ok(Type::Cipher {
                    scale: cfg.waterline,
                    level: level + 1,
                })
            }
            _ => Err(TypeError::BadOperandKind {
                at,
                rule: "downscale requires a cipher operand (Eq. 6)",
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ConstData, Function, Op};

    fn cfg() -> TypeConfig {
        TypeConfig::new(20.0, 40.0)
    }

    #[test]
    fn input_gets_waterline_cipher() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        f.mark_output("o", x);
        let tys = infer_types(&f, &cfg()).unwrap();
        assert_eq!(
            tys[0],
            Type::Cipher {
                scale: 20.0,
                level: 0
            }
        );
    }

    #[test]
    fn mul_adds_scales_add_keeps() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        let a = f.push(Op::Add(m, m));
        f.mark_output("o", a);
        let tys = infer_types(&f, &cfg()).unwrap();
        assert_eq!(
            tys[1],
            Type::Cipher {
                scale: 40.0,
                level: 0
            }
        );
        assert_eq!(
            tys[2],
            Type::Cipher {
                scale: 40.0,
                level: 0
            }
        );
    }

    #[test]
    fn rescale_semantics_and_waterline_guard() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x)); // scale 40
        let m2 = f.push(Op::Mul(m, m)); // scale 80
        let r = f.push(Op::Rescale(m2)); // 80-40=40 ≥ 20 OK
        f.mark_output("o", r);
        let tys = infer_types(&f, &cfg()).unwrap();
        assert_eq!(
            tys[3],
            Type::Cipher {
                scale: 40.0,
                level: 1
            }
        );

        // Rescaling the scale-40 value would give 0 < waterline.
        let mut g = Function::new("t", 4);
        let x = g.push(Op::Input { name: "x".into() });
        let m = g.push(Op::Mul(x, x));
        let r = g.push(Op::Rescale(m));
        g.mark_output("o", r);
        assert!(matches!(
            infer_types(&g, &cfg()),
            Err(TypeError::BelowWaterline { .. })
        ));
    }

    #[test]
    fn downscale_only_where_rescale_impossible() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x)); // scale 40 < Sw+Sf = 60
        let d = f.push(Op::Downscale(m));
        f.mark_output("o", d);
        let tys = infer_types(&f, &cfg()).unwrap();
        assert_eq!(
            tys[2],
            Type::Cipher {
                scale: 20.0,
                level: 1
            }
        );

        // scale 80 ≥ 60 means rescale applies — downscale is rejected.
        let mut g = Function::new("t", 4);
        let x = g.push(Op::Input { name: "x".into() });
        let m = g.push(Op::Mul(x, x));
        let m2 = g.push(Op::Mul(m, m));
        let d = g.push(Op::Downscale(m2));
        g.mark_output("o", d);
        assert!(matches!(
            infer_types(&g, &cfg()),
            Err(TypeError::BadOperandKind { .. })
        ));
    }

    #[test]
    fn level_mismatch_rejected() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        let m2 = f.push(Op::Mul(m, m));
        let r = f.push(Op::Rescale(m2)); // level 1
        let bad = f.push(Op::Mul(r, x)); // level 1 vs 0
        f.mark_output("o", bad);
        assert!(matches!(
            infer_types(&f, &cfg()),
            Err(TypeError::LevelMismatch { at, .. }) if at == ValueId(4)
        ));
    }

    #[test]
    fn add_scale_mismatch_rejected() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x)); // scale 40
        let bad = f.push(Op::Add(m, x)); // 40 vs 20
        f.mark_output("o", bad);
        assert!(matches!(
            infer_types(&f, &cfg()),
            Err(TypeError::ScaleMismatch { .. })
        ));
    }

    #[test]
    fn free_operand_rejected_and_encode_fixes() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let c = f.push(Op::Const {
            data: ConstData::splat(2.0),
        });
        let bad = f.push(Op::Mul(x, c));
        f.mark_output("o", bad);
        assert!(matches!(
            infer_types(&f, &cfg()),
            Err(TypeError::FreeOperand { .. })
        ));

        let mut g = Function::new("t", 4);
        let x = g.push(Op::Input { name: "x".into() });
        let c = g.push(Op::Const {
            data: ConstData::splat(2.0),
        });
        let e = g.push(Op::Encode {
            value: c,
            scale_bits: 20.0,
            level: 0,
        });
        let ok = g.push(Op::Mul(x, e));
        g.mark_output("o", ok);
        let tys = infer_types(&g, &cfg()).unwrap();
        assert_eq!(
            tys[2],
            Type::Plain {
                scale: 20.0,
                level: 0
            }
        );
        assert_eq!(
            tys[3],
            Type::Cipher {
                scale: 40.0,
                level: 0
            }
        );
    }

    #[test]
    fn upscale_raises_scale_only_upward() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let u = f.push(Op::Upscale {
            value: x,
            target_bits: 40.0,
        });
        f.mark_output("o", u);
        let tys = infer_types(&f, &cfg()).unwrap();
        assert_eq!(
            tys[1],
            Type::Cipher {
                scale: 40.0,
                level: 0
            }
        );

        let mut g = Function::new("t", 4);
        let x = g.push(Op::Input { name: "x".into() });
        let u = g.push(Op::Upscale {
            value: x,
            target_bits: 10.0,
        });
        g.mark_output("o", u);
        assert!(matches!(
            infer_types(&g, &cfg()),
            Err(TypeError::UpscaleBelowCurrent { .. })
        ));
    }

    #[test]
    fn modswitch_keeps_scale_bumps_level() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::ModSwitch(x));
        f.mark_output("o", m);
        let tys = infer_types(&f, &cfg()).unwrap();
        assert_eq!(
            tys[1],
            Type::Cipher {
                scale: 20.0,
                level: 1
            }
        );
    }

    #[test]
    fn c1_budget_enforced() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x)); // 40
        let m2 = f.push(Op::Mul(m, m)); // 80
        f.mark_output("o", m2);
        let mut c = cfg();
        c.modulus_bits = Some(70.0);
        assert!(matches!(
            infer_types(&f, &c),
            Err(TypeError::ScaleOverflow { .. })
        ));
        c.modulus_bits = Some(120.0);
        assert!(infer_types(&f, &c).is_ok());
    }

    #[test]
    fn max_level_enforced() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m1 = f.push(Op::ModSwitch(x));
        let m2 = f.push(Op::ModSwitch(m1));
        f.mark_output("o", m2);
        let mut c = cfg();
        c.max_level = Some(1);
        assert!(matches!(
            infer_types(&f, &c),
            Err(TypeError::LevelOverflow { .. })
        ));
    }
}
