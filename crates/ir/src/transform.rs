//! Semantics-preserving IR cleanups: common subexpression elimination and
//! constant folding.
//!
//! Input programs built from reusable components (stencils, diagonal
//! matrix–vector products) repeat structurally identical operations —
//! most importantly rotations, the second most expensive FHE operation.
//! CSE merges them before scale management, shrinking both the compiled
//! program and the SMU graph. Folding collapses arithmetic between
//! constants so the scale manager only ever sees one `free` operand per
//! operation.

use crate::analysis::eliminate_dead_code;
use crate::ir::{ConstData, Function, Op, ValueId};
use std::collections::HashMap;

/// A hashable structural key for an operation (constants are keyed by
/// bit-exact payload).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpKey {
    Input(String),
    Const(Vec<u64>),
    Encode(ValueId, u64, usize),
    Add(ValueId, ValueId),
    Sub(ValueId, ValueId),
    Mul(ValueId, ValueId),
    Negate(ValueId),
    Rotate(ValueId, usize),
    Rescale(ValueId),
    ModSwitch(ValueId),
    Upscale(ValueId, u64),
    Downscale(ValueId),
}

fn key_of(op: &Op) -> OpKey {
    let bits = |v: &f64| v.to_bits();
    match op {
        Op::Input { name } => OpKey::Input(name.clone()),
        Op::Const { data } => OpKey::Const(data.values.iter().map(bits).collect()),
        Op::Encode {
            value,
            scale_bits,
            level,
        } => OpKey::Encode(*value, bits(scale_bits), *level),
        Op::Add(a, b) => {
            // Addition and multiplication are commutative: canonicalize.
            let (x, y) = if a <= b { (*a, *b) } else { (*b, *a) };
            OpKey::Add(x, y)
        }
        Op::Mul(a, b) => {
            let (x, y) = if a <= b { (*a, *b) } else { (*b, *a) };
            OpKey::Mul(x, y)
        }
        Op::Sub(a, b) => OpKey::Sub(*a, *b),
        Op::Negate(a) => OpKey::Negate(*a),
        Op::Rotate { value, step } => OpKey::Rotate(*value, *step),
        Op::Rescale(a) => OpKey::Rescale(*a),
        Op::ModSwitch(a) => OpKey::ModSwitch(*a),
        Op::Upscale { value, target_bits } => OpKey::Upscale(*value, bits(target_bits)),
        Op::Downscale(a) => OpKey::Downscale(*a),
    }
}

/// Eliminates structurally identical operations, keeping the first
/// occurrence. Returns the cleaned function.
///
/// Inputs with the same name are merged (they denote the same ciphertext);
/// constants are merged by exact payload.
pub fn eliminate_common_subexpressions(func: &Function) -> Function {
    let mut out = Function::new(func.name.clone(), func.vec_size);
    let mut remap: Vec<Option<ValueId>> = vec![None; func.len()];
    let mut seen: HashMap<OpKey, ValueId> = HashMap::new();
    for (i, op) in func.ops().iter().enumerate() {
        let remapped = crate::analysis::remap_op(op, &remap);
        let key = key_of(&remapped);
        let id = match seen.get(&key) {
            Some(&v) => v,
            None => {
                let v = out.push(remapped);
                seen.insert(key, v);
                v
            }
        };
        remap[i] = Some(id);
    }
    for (name, v) in func.outputs() {
        out.mark_output(name.clone(), remap[v.index()].expect("output mapped"));
    }
    let (clean, _) = eliminate_dead_code(&out);
    clean
}

/// Folds operations whose operands are all constants into constants, and
/// applies the algebraic identities `x·1 → x`, `x+0 → x`, `x−0 → x`
/// when the constant side is an exact splat. Returns the cleaned function.
pub fn fold_constants(func: &Function) -> Function {
    let n = func.vec_size;
    let mut out = Function::new(func.name.clone(), n);
    let mut remap: Vec<Option<ValueId>> = vec![None; func.len()];
    // Track constant payloads of values in the *new* function.
    let mut consts: HashMap<ValueId, ConstData> = HashMap::new();
    let splat_of = |c: &ConstData| -> Option<f64> {
        let v0 = c.at(0);
        (0..n).all(|i| c.at(i) == v0).then_some(v0)
    };
    for (i, op) in func.ops().iter().enumerate() {
        let remapped = crate::analysis::remap_op(op, &remap);
        let const_of = |v: &ValueId| consts.get(v).cloned();
        let materialize =
            |f: Box<dyn Fn(usize) -> f64>| ConstData::vector((0..n).map(&f).collect());
        let folded: Option<ConstData> = match &remapped {
            Op::Add(a, b) => match (const_of(a), const_of(b)) {
                (Some(ca), Some(cb)) => Some(materialize(Box::new(move |k| ca.at(k) + cb.at(k)))),
                _ => None,
            },
            Op::Sub(a, b) => match (const_of(a), const_of(b)) {
                (Some(ca), Some(cb)) => Some(materialize(Box::new(move |k| ca.at(k) - cb.at(k)))),
                _ => None,
            },
            Op::Mul(a, b) => match (const_of(a), const_of(b)) {
                (Some(ca), Some(cb)) => Some(materialize(Box::new(move |k| ca.at(k) * cb.at(k)))),
                _ => None,
            },
            Op::Negate(a) => const_of(a).map(|ca| materialize(Box::new(move |k| -ca.at(k)))),
            Op::Rotate { value, step } => const_of(value).map(|ca| {
                let step = *step;
                materialize(Box::new(move |k| ca.at((k + step) % n)))
            }),
            _ => None,
        };
        // Identity simplifications on mixed const/cipher operations.
        let identity: Option<ValueId> = match &remapped {
            Op::Add(a, b) | Op::Sub(a, b) => {
                let zb = consts.get(b).and_then(&splat_of) == Some(0.0);
                let za = consts.get(a).and_then(&splat_of) == Some(0.0);
                if zb {
                    Some(*a)
                } else if za && matches!(remapped, Op::Add(..)) {
                    Some(*b)
                } else {
                    None
                }
            }
            Op::Mul(a, b) => {
                if consts.get(b).and_then(&splat_of) == Some(1.0) {
                    Some(*a)
                } else if consts.get(a).and_then(&splat_of) == Some(1.0) {
                    Some(*b)
                } else {
                    None
                }
            }
            _ => None,
        };
        let id = if let Some(data) = folded {
            let v = out.push(Op::Const { data: data.clone() });
            consts.insert(v, data);
            v
        } else if let Some(v) = identity {
            v
        } else {
            let v = out.push(remapped.clone());
            if let Op::Const { data } = &remapped {
                consts.insert(v, data.clone());
            }
            v
        };
        remap[i] = Some(id);
    }
    for (name, v) in func.outputs() {
        out.mark_output(name.clone(), remap[v.index()].expect("output mapped"));
    }
    let (clean, _) = eliminate_dead_code(&out);
    clean
}

/// The standard cleanup pipeline applied before scale management: fold,
/// then CSE (folding can expose identical subtrees).
pub fn canonicalize(func: &Function) -> Function {
    eliminate_common_subexpressions(&fold_constants(func))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::interpret;
    use std::collections::HashMap as Map;

    fn run(f: &Function, x: Vec<f64>) -> Vec<f64> {
        let mut ins = Map::new();
        ins.insert("x".to_string(), x);
        interpret(f, &ins).unwrap()["out0"].clone()
    }

    #[test]
    fn cse_merges_identical_rotations() {
        let mut b = FunctionBuilder::new("cse", 8);
        let x = b.input_cipher("x");
        let r1 = b.rotate(x, 2);
        let r2 = b.rotate(x, 2); // identical
        let s = b.add(r1, r2);
        b.output(s);
        let f = b.finish();
        let g = eliminate_common_subexpressions(&f);
        let rotations = g
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Rotate { .. }))
            .count();
        assert_eq!(rotations, 1);
        let input: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert_eq!(run(&f, input.clone()), run(&g, input));
    }

    #[test]
    fn cse_respects_commutativity() {
        let mut b = FunctionBuilder::new("comm", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let m1 = b.mul(x, y);
        let m2 = b.mul(y, x); // same product
        let s = b.add(m1, m2);
        b.output(s);
        let g = eliminate_common_subexpressions(&b.finish());
        let muls = g.ops().iter().filter(|o| matches!(o, Op::Mul(..))).count();
        assert_eq!(muls, 1);
    }

    #[test]
    fn cse_does_not_merge_sub_operand_orders() {
        let mut b = FunctionBuilder::new("sub", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let d1 = b.sub(x, y);
        let d2 = b.sub(y, x);
        let s = b.add(d1, d2);
        b.output(s);
        let g = eliminate_common_subexpressions(&b.finish());
        let subs = g.ops().iter().filter(|o| matches!(o, Op::Sub(..))).count();
        assert_eq!(subs, 2, "x−y and y−x are different");
    }

    #[test]
    fn folding_collapses_constant_trees() {
        let mut b = FunctionBuilder::new("fold", 4);
        let x = b.input_cipher("x");
        let c1 = b.splat(2.0);
        let c2 = b.splat(3.0);
        let c3 = b.mul(c1, c2); // 6
        let c4 = b.neg(c3); // -6
        let y = b.mul(x, c4);
        b.output(y);
        let f = b.finish();
        let g = fold_constants(&f);
        // One constant op (the folded −6) plus input plus mul.
        assert_eq!(g.len(), 3, "{g:?}");
        assert_eq!(
            run(&f, vec![1.0, 2.0, 0.0, 0.0]),
            run(&g, vec![1.0, 2.0, 0.0, 0.0])
        );
    }

    #[test]
    fn identities_simplify() {
        let mut b = FunctionBuilder::new("id", 4);
        let x = b.input_cipher("x");
        let one = b.splat(1.0);
        let zero = b.splat(0.0);
        let m = b.mul(x, one); // → x
        let s = b.add(m, zero); // → x
        b.output(s);
        let g = fold_constants(&b.finish());
        assert_eq!(g.len(), 1, "only the input remains: {g:?}");
        assert_eq!(run(&g, vec![5.0; 4]), vec![5.0; 4]);
    }

    #[test]
    fn canonicalize_preserves_semantics_on_stencil_like_code() {
        let mut b = FunctionBuilder::new("mix", 8);
        let x = b.input_cipher("x");
        let k1 = b.splat(0.5);
        let k2 = b.splat(0.5);
        let r1 = b.rotate(x, 1);
        let r2 = b.rotate(x, 1);
        let t1 = b.mul(r1, k1);
        let t2 = b.mul(r2, k2);
        let s = b.add(t1, t2);
        b.output(s);
        let f = b.finish();
        let g = canonicalize(&f);
        assert!(g.len() < f.len());
        let input: Vec<f64> = (0..8).map(|i| 0.25 * i as f64).collect();
        let (a, c) = (run(&f, input.clone()), run(&g, input));
        for (x, y) in a.iter().zip(&c) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
