//! An ergonomic builder for writing input programs.
//!
//! This is the reproduction's frontend, standing in for the paper's Python
//! frontend: applications construct homomorphic expressions directly. Only
//! homomorphic operations are exposed — scale-management operations are the
//! compiler's job (paper Fig. 4: input programs contain homomorphic
//! expressions only).

use crate::ir::{ConstData, Function, Op, ValueId};

/// Builds a [`Function`] one operation at a time.
///
/// # Example
/// ```
/// use hecate_ir::builder::FunctionBuilder;
///
/// let mut b = FunctionBuilder::new("axpy", 8);
/// let x = b.input_cipher("x");
/// let a = b.splat(2.0);
/// let ax = b.mul(x, a);
/// b.output(ax);
/// let f = b.finish();
/// assert_eq!(f.len(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    outputs: u32,
}

impl FunctionBuilder {
    /// Starts a function with the given name and logical vector width.
    pub fn new(name: impl Into<String>, vec_size: usize) -> Self {
        FunctionBuilder {
            func: Function::new(name, vec_size),
            outputs: 0,
        }
    }

    /// Declares an encrypted input.
    pub fn input_cipher(&mut self, name: impl Into<String>) -> ValueId {
        self.func.push(Op::Input { name: name.into() })
    }

    /// Introduces a constant from raw data.
    pub fn constant(&mut self, data: ConstData) -> ValueId {
        self.func.push(Op::Const { data })
    }

    /// Introduces a scalar constant (broadcast).
    pub fn splat(&mut self, v: f64) -> ValueId {
        self.constant(ConstData::splat(v))
    }

    /// Introduces a vector constant.
    pub fn vector(&mut self, values: Vec<f64>) -> ValueId {
        self.constant(ConstData::vector(values))
    }

    /// Homomorphic addition.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.func.push(Op::Add(a, b))
    }

    /// Homomorphic subtraction.
    pub fn sub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.func.push(Op::Sub(a, b))
    }

    /// Homomorphic multiplication.
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.func.push(Op::Mul(a, b))
    }

    /// Squares a value.
    pub fn square(&mut self, a: ValueId) -> ValueId {
        self.mul(a, a)
    }

    /// Homomorphic negation.
    pub fn neg(&mut self, a: ValueId) -> ValueId {
        self.func.push(Op::Negate(a))
    }

    /// Cyclic left rotation by `step` slots.
    pub fn rotate(&mut self, a: ValueId, step: usize) -> ValueId {
        self.func.push(Op::Rotate { value: a, step })
    }

    /// Sums `a` across a power-of-two window of `width` slots by
    /// rotate-and-add (log2(width) rotations). Slot 0 of each window ends
    /// up holding the window's sum.
    ///
    /// # Panics
    /// Panics if `width` is not a power of two.
    pub fn rotate_sum(&mut self, a: ValueId, width: usize) -> ValueId {
        assert!(width.is_power_of_two(), "rotate_sum needs a power of two");
        let mut acc = a;
        let mut step = width / 2;
        while step >= 1 {
            let rot = self.rotate(acc, step);
            acc = self.add(acc, rot);
            step /= 2;
        }
        acc
    }

    /// Marks `v` as an output with an auto-generated name.
    pub fn output(&mut self, v: ValueId) {
        let name = format!("out{}", self.outputs);
        self.outputs += 1;
        self.func.mark_output(name, v);
    }

    /// Marks `v` as an output with an explicit name.
    pub fn output_named(&mut self, name: impl Into<String>, v: ValueId) {
        self.outputs += 1;
        self.func.mark_output(name, v);
    }

    /// Finalizes the function.
    ///
    /// # Panics
    /// Panics if the function is structurally invalid (builder misuse).
    pub fn finish(self) -> Function {
        self.func
            .verify_structure()
            .expect("builder produced malformed function");
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;

    #[test]
    fn builds_motivating_example() {
        // (x² + y²)³ from the paper.
        let mut b = FunctionBuilder::new("motivating", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let z = b.add(x2, y2);
        let z2 = b.mul(z, z);
        let z3 = b.mul(z2, z);
        b.output(z3);
        let f = b.finish();
        assert_eq!(f.len(), 7);
        assert_eq!(f.outputs().len(), 1);
        assert!(matches!(f.op(z3), Op::Mul(a, b) if *a == z2 && *b == z));
    }

    #[test]
    fn rotate_sum_emits_log_rotations() {
        let mut b = FunctionBuilder::new("rs", 16);
        let x = b.input_cipher("x");
        let s = b.rotate_sum(x, 8);
        b.output(s);
        let f = b.finish();
        // 3 rotations + 3 adds + input = 7 ops.
        assert_eq!(f.len(), 7);
        let rotations: Vec<usize> = f
            .ops()
            .iter()
            .filter_map(|op| match op {
                Op::Rotate { step, .. } => Some(*step),
                _ => None,
            })
            .collect();
        assert_eq!(rotations, vec![4, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rotate_sum_rejects_nonpow2() {
        let mut b = FunctionBuilder::new("rs", 16);
        let x = b.input_cipher("x");
        b.rotate_sum(x, 6);
    }

    #[test]
    fn named_and_auto_outputs() {
        let mut b = FunctionBuilder::new("o", 4);
        let x = b.input_cipher("x");
        b.output(x);
        b.output_named("result", x);
        let f = b.finish();
        assert_eq!(f.outputs()[0].0, "out0");
        assert_eq!(f.outputs()[1].0, "result");
    }
}
