//! Structural analyses over IR functions: use–def information, liveness
//! from outputs, dead-code elimination, and the statistics the paper's
//! Table III reports (use counts).

use crate::ir::{Function, Op, ValueId};

/// For every value, the list of instructions that use it (in order).
pub fn users(func: &Function) -> Vec<Vec<ValueId>> {
    let mut out = vec![Vec::new(); func.len()];
    for (i, op) in func.ops().iter().enumerate() {
        for v in op.operands() {
            out[v.index()].push(ValueId(i as u32));
        }
    }
    out
}

/// Total number of use–def edges (the "uses" column of Table III).
pub fn use_edge_count(func: &Function) -> usize {
    func.ops().iter().map(|op| op.operands().len()).sum()
}

/// Values reachable from the outputs (live values).
pub fn live_values(func: &Function) -> Vec<bool> {
    let mut live = vec![false; func.len()];
    let mut stack: Vec<ValueId> = func.outputs().iter().map(|(_, v)| *v).collect();
    while let Some(v) = stack.pop() {
        if live[v.index()] {
            continue;
        }
        live[v.index()] = true;
        stack.extend(func.op(v).operands());
    }
    live
}

/// Removes dead operations, preserving order. Returns the new function and
/// the value remapping (`old → Some(new)` for surviving values).
pub fn eliminate_dead_code(func: &Function) -> (Function, Vec<Option<ValueId>>) {
    let live = live_values(func);
    let mut remap: Vec<Option<ValueId>> = vec![None; func.len()];
    let mut out = Function::new(func.name.clone(), func.vec_size);
    for (i, op) in func.ops().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let new_op = remap_op(op, &remap);
        remap[i] = Some(out.push(new_op));
    }
    for (name, v) in func.outputs() {
        out.mark_output(name.clone(), remap[v.index()].expect("output is live"));
    }
    (out, remap)
}

/// Rewrites an operation's operands through a remapping table.
///
/// # Panics
/// Panics if an operand has no mapping (caller must process in order).
pub fn remap_op(op: &Op, remap: &[Option<ValueId>]) -> Op {
    let m = |v: ValueId| remap[v.index()].expect("operand mapped");
    match op {
        Op::Input { name } => Op::Input { name: name.clone() },
        Op::Const { data } => Op::Const { data: data.clone() },
        Op::Encode {
            value,
            scale_bits,
            level,
        } => Op::Encode {
            value: m(*value),
            scale_bits: *scale_bits,
            level: *level,
        },
        Op::Add(a, b) => Op::Add(m(*a), m(*b)),
        Op::Sub(a, b) => Op::Sub(m(*a), m(*b)),
        Op::Mul(a, b) => Op::Mul(m(*a), m(*b)),
        Op::Negate(a) => Op::Negate(m(*a)),
        Op::Rotate { value, step } => Op::Rotate {
            value: m(*value),
            step: *step,
        },
        Op::Rescale(a) => Op::Rescale(m(*a)),
        Op::ModSwitch(a) => Op::ModSwitch(m(*a)),
        Op::Upscale { value, target_bits } => Op::Upscale {
            value: m(*value),
            target_bits: *target_bits,
        },
        Op::Downscale(a) => Op::Downscale(m(*a)),
    }
}

/// Counts operations by mnemonic (diagnostics and reports).
pub fn op_histogram(func: &Function) -> std::collections::BTreeMap<&'static str, usize> {
    let mut h = std::collections::BTreeMap::new();
    for op in func.ops() {
        *h.entry(op.mnemonic()).or_insert(0) += 1;
    }
    h
}

/// How far a plan's values spill outside a `width`-slot window when the
/// ciphertext is shared between tenants (slot batching).
///
/// Each tenant occupies a block of `block_slots()` contiguous slots. The
/// tenant's logical `width`-slot vector sits in the middle; rotations smear
/// neighbouring tenants' data into up to `back` slots before it and `fwd`
/// slots after it, which the demultiplexer must skip. A plan fits `B`
/// tenants into `slots` physical slots iff `B * block_slots() <= slots`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotFootprint {
    /// The logical vector width (`Function::vec_size`).
    pub width: usize,
    /// Maximum backward contamination reach (slots before the window).
    pub back: usize,
    /// Maximum forward contamination reach (slots after the window).
    pub fwd: usize,
    /// Peak number of simultaneously live values (ciphertext working set).
    pub max_live: usize,
}

impl SlotFootprint {
    /// Slots one tenant needs: guard band + logical window + guard band.
    pub fn block_slots(&self) -> usize {
        self.back + self.width + self.fwd
    }

    /// Largest power-of-two occupancy that fits in `slots` physical slots
    /// (0 when even a single block does not fit).
    pub fn max_occupancy(&self, slots: usize) -> usize {
        let block = self.block_slots().max(1);
        let mut b = 1usize;
        while b * 2 * block <= slots {
            b *= 2;
        }
        if b * block <= slots {
            b
        } else {
            0
        }
    }
}

/// How a logical rotation by `step` moves data inside a packed block of
/// logical width `width`. Returns `(fwd_add, back_add)`: the extra forward
/// and backward contamination this rotation adds.
///
/// The packed executor realizes a logical rotate-left by `step` as either a
/// physical rotate-left by `step % width` (cheap direction) or a physical
/// rotate-right by `width - step % width`, whichever moves data less. This
/// function is the single source of truth for that direction choice — the
/// backend's physical step mapping must agree with it.
pub fn packed_shift(step: usize, width: usize) -> (usize, usize) {
    if width == 0 {
        return (0, 0);
    }
    let s = step % width;
    if s == 0 {
        (0, 0)
    } else if s <= width - s {
        (s, 0) // rotate left: data smears forward past the window end
    } else {
        (0, width - s) // rotate right: data smears backward before the start
    }
}

/// Per-value contamination reach `(back, fwd)` under packed execution.
///
/// Leaves (inputs, constants, encodes of fresh constants) start clean at
/// `(0, 0)`; a rotation adds [`packed_shift`] to its operand's reach; every
/// other op takes the element-wise max over its operands (slot-wise ops
/// cannot clean a contaminated slot).
pub fn slot_reaches(func: &Function) -> Vec<(usize, usize)> {
    let w = func.vec_size;
    let mut reach: Vec<(usize, usize)> = Vec::with_capacity(func.len());
    for op in func.ops() {
        let mut r = (0usize, 0usize);
        for v in op.operands() {
            let (b, f) = reach[v.index()];
            r.0 = r.0.max(b);
            r.1 = r.1.max(f);
        }
        if let Op::Rotate { step, .. } = op {
            let (fwd_add, back_add) = packed_shift(*step, w);
            r.0 += back_add;
            r.1 += fwd_add;
        }
        reach.push(r);
    }
    reach
}

/// Computes the plan's [`SlotFootprint`]: worst-case contamination reach
/// over every value plus the liveness peak.
pub fn slot_footprint(func: &Function) -> SlotFootprint {
    let reach = slot_reaches(func);
    let (mut back, mut fwd) = (0usize, 0usize);
    for &(b, f) in &reach {
        back = back.max(b);
        fwd = fwd.max(f);
    }
    // Peak live values: a value is live from its definition to its last
    // use (outputs stay live to the end).
    let n = func.len();
    let mut last_use = vec![0usize; n];
    for (i, op) in func.ops().iter().enumerate() {
        for v in op.operands() {
            last_use[v.index()] = i;
        }
    }
    for (_, v) in func.outputs() {
        last_use[v.index()] = n.saturating_sub(1);
    }
    let mut max_live = 0usize;
    let mut live_now = 0usize;
    let mut dying_at = vec![0usize; n];
    for (i, &lu) in last_use.iter().enumerate() {
        dying_at[lu.max(i)] += 1;
    }
    for &d in &dying_at {
        live_now += 1; // one value defined at each op
        max_live = max_live.max(live_now);
        live_now -= d;
    }
    SlotFootprint {
        width: func.vec_size,
        back,
        fwd,
        max_live,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn with_dead_code() -> Function {
        let mut b = FunctionBuilder::new("d", 4);
        let x = b.input_cipher("x");
        let live = b.mul(x, x);
        let _dead = b.add(x, x); // never used
        b.output(live);
        b.finish()
    }

    #[test]
    fn users_and_edge_count() {
        let f = with_dead_code();
        let u = users(&f);
        assert_eq!(u[0].len(), 4); // x used twice by mul, twice by add
        assert_eq!(use_edge_count(&f), 4);
    }

    #[test]
    fn liveness_from_outputs() {
        let f = with_dead_code();
        let live = live_values(&f);
        assert_eq!(live, vec![true, true, false]);
    }

    #[test]
    fn dce_removes_dead_and_remaps() {
        let f = with_dead_code();
        let (g, remap) = eliminate_dead_code(&f);
        assert_eq!(g.len(), 2);
        assert_eq!(remap[2], None);
        assert!(g.verify_structure().is_ok());
        assert_eq!(g.outputs()[0].1, remap[1].unwrap());
    }

    #[test]
    fn histogram_counts() {
        let f = with_dead_code();
        let h = op_histogram(&f);
        assert_eq!(h["input"], 1);
        assert_eq!(h["mul"], 1);
        assert_eq!(h["add"], 1);
    }

    #[test]
    fn packed_shift_picks_the_short_direction() {
        // Rotate-left by 1 in a width-8 block: smears 1 slot forward.
        assert_eq!(packed_shift(1, 8), (1, 0));
        // Rotate-left by 7 == rotate-right by 1: smears 1 slot backward.
        assert_eq!(packed_shift(7, 8), (0, 1));
        // Half-width ties go forward; full rotations are free.
        assert_eq!(packed_shift(4, 8), (4, 0));
        assert_eq!(packed_shift(8, 8), (0, 0));
        assert_eq!(packed_shift(17, 8), (1, 0));
    }

    #[test]
    fn footprint_tracks_rotation_reach() {
        let mut b = FunctionBuilder::new("rot", 8);
        let x = b.input_cipher("x");
        let left = b.rotate(x, 1); // fwd 1
        let right = b.rotate(x, 7); // back 1
        let sum = b.add(left, right); // (back 1, fwd 1)
        let deeper = b.rotate(sum, 2); // fwd grows to 3
        b.output(deeper);
        let f = b.finish();

        let reach = slot_reaches(&f);
        assert_eq!(reach[x.index()], (0, 0));
        assert_eq!(reach[left.index()], (0, 1));
        assert_eq!(reach[right.index()], (1, 0));
        assert_eq!(reach[sum.index()], (1, 1));
        assert_eq!(reach[deeper.index()], (1, 3));

        let fp = slot_footprint(&f);
        assert_eq!(fp.width, 8);
        assert_eq!(fp.back, 1);
        assert_eq!(fp.fwd, 3);
        assert_eq!(fp.block_slots(), 12);
        assert!(fp.max_live >= 2);
    }

    #[test]
    fn rotation_free_plan_has_tight_footprint() {
        let f = with_dead_code();
        let fp = slot_footprint(&f);
        assert_eq!((fp.back, fp.fwd), (0, 0));
        assert_eq!(fp.block_slots(), f.vec_size);
    }

    #[test]
    fn max_occupancy_is_the_largest_fitting_power_of_two() {
        let fp = SlotFootprint {
            width: 8,
            back: 1,
            fwd: 3,
            max_live: 2,
        };
        // block = 12: 64 slots fit 4 blocks (48), not 8 (96).
        assert_eq!(fp.max_occupancy(64), 4);
        assert_eq!(fp.max_occupancy(12), 1);
        assert_eq!(fp.max_occupancy(11), 0);
        let tight = SlotFootprint {
            width: 8,
            back: 0,
            fwd: 0,
            max_live: 1,
        };
        assert_eq!(tight.max_occupancy(64), 8);
    }
}
