//! Structural analyses over IR functions: use–def information, liveness
//! from outputs, dead-code elimination, and the statistics the paper's
//! Table III reports (use counts).

use crate::ir::{Function, Op, ValueId};

/// For every value, the list of instructions that use it (in order).
pub fn users(func: &Function) -> Vec<Vec<ValueId>> {
    let mut out = vec![Vec::new(); func.len()];
    for (i, op) in func.ops().iter().enumerate() {
        for v in op.operands() {
            out[v.index()].push(ValueId(i as u32));
        }
    }
    out
}

/// Total number of use–def edges (the "uses" column of Table III).
pub fn use_edge_count(func: &Function) -> usize {
    func.ops().iter().map(|op| op.operands().len()).sum()
}

/// Values reachable from the outputs (live values).
pub fn live_values(func: &Function) -> Vec<bool> {
    let mut live = vec![false; func.len()];
    let mut stack: Vec<ValueId> = func.outputs().iter().map(|(_, v)| *v).collect();
    while let Some(v) = stack.pop() {
        if live[v.index()] {
            continue;
        }
        live[v.index()] = true;
        stack.extend(func.op(v).operands());
    }
    live
}

/// Removes dead operations, preserving order. Returns the new function and
/// the value remapping (`old → Some(new)` for surviving values).
pub fn eliminate_dead_code(func: &Function) -> (Function, Vec<Option<ValueId>>) {
    let live = live_values(func);
    let mut remap: Vec<Option<ValueId>> = vec![None; func.len()];
    let mut out = Function::new(func.name.clone(), func.vec_size);
    for (i, op) in func.ops().iter().enumerate() {
        if !live[i] {
            continue;
        }
        let new_op = remap_op(op, &remap);
        remap[i] = Some(out.push(new_op));
    }
    for (name, v) in func.outputs() {
        out.mark_output(name.clone(), remap[v.index()].expect("output is live"));
    }
    (out, remap)
}

/// Rewrites an operation's operands through a remapping table.
///
/// # Panics
/// Panics if an operand has no mapping (caller must process in order).
pub fn remap_op(op: &Op, remap: &[Option<ValueId>]) -> Op {
    let m = |v: ValueId| remap[v.index()].expect("operand mapped");
    match op {
        Op::Input { name } => Op::Input { name: name.clone() },
        Op::Const { data } => Op::Const { data: data.clone() },
        Op::Encode {
            value,
            scale_bits,
            level,
        } => Op::Encode {
            value: m(*value),
            scale_bits: *scale_bits,
            level: *level,
        },
        Op::Add(a, b) => Op::Add(m(*a), m(*b)),
        Op::Sub(a, b) => Op::Sub(m(*a), m(*b)),
        Op::Mul(a, b) => Op::Mul(m(*a), m(*b)),
        Op::Negate(a) => Op::Negate(m(*a)),
        Op::Rotate { value, step } => Op::Rotate {
            value: m(*value),
            step: *step,
        },
        Op::Rescale(a) => Op::Rescale(m(*a)),
        Op::ModSwitch(a) => Op::ModSwitch(m(*a)),
        Op::Upscale { value, target_bits } => Op::Upscale {
            value: m(*value),
            target_bits: *target_bits,
        },
        Op::Downscale(a) => Op::Downscale(m(*a)),
    }
}

/// Counts operations by mnemonic (diagnostics and reports).
pub fn op_histogram(func: &Function) -> std::collections::BTreeMap<&'static str, usize> {
    let mut h = std::collections::BTreeMap::new();
    for op in func.ops() {
        *h.entry(op.mnemonic()).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn with_dead_code() -> Function {
        let mut b = FunctionBuilder::new("d", 4);
        let x = b.input_cipher("x");
        let live = b.mul(x, x);
        let _dead = b.add(x, x); // never used
        b.output(live);
        b.finish()
    }

    #[test]
    fn users_and_edge_count() {
        let f = with_dead_code();
        let u = users(&f);
        assert_eq!(u[0].len(), 4); // x used twice by mul, twice by add
        assert_eq!(use_edge_count(&f), 4);
    }

    #[test]
    fn liveness_from_outputs() {
        let f = with_dead_code();
        let live = live_values(&f);
        assert_eq!(live, vec![true, true, false]);
    }

    #[test]
    fn dce_removes_dead_and_remaps() {
        let f = with_dead_code();
        let (g, remap) = eliminate_dead_code(&f);
        assert_eq!(g.len(), 2);
        assert_eq!(remap[2], None);
        assert!(g.verify_structure().is_ok());
        assert_eq!(g.outputs()[0].1, remap[1].unwrap());
    }

    #[test]
    fn histogram_counts() {
        let f = with_dead_code();
        let h = op_histogram(&f);
        assert_eq!(h["input"], 1);
        assert_eq!(h["mul"], 1);
        assert_eq!(h["add"], 1);
    }
}
