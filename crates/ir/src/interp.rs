//! Reference interpretation of IR on unencrypted vectors.
//!
//! By the homomorphism property (paper §IV-A), a correct FHE program must
//! compute the same function as its plaintext counterpart, with opaque
//! scale-management operations acting as the identity on values. This
//! interpreter is the ground truth the backends are validated against and
//! the source of the "expected" outputs for RMS-error measurements.

use crate::ir::{Function, Op, ValueId};
use std::collections::HashMap;

/// Evaluation error: an input binding is missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingInput {
    /// The unbound input name.
    pub name: String,
}

impl std::fmt::Display for MissingInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no binding for input '{}'", self.name)
    }
}

impl std::error::Error for MissingInput {}

/// Evaluates the function on plaintext vectors.
///
/// Each input name must be bound to a vector of length `vec_size` (shorter
/// vectors are zero-padded). Returns one vector per named output.
///
/// # Errors
/// Returns [`MissingInput`] if an input has no binding.
pub fn interpret(
    func: &Function,
    inputs: &HashMap<String, Vec<f64>>,
) -> Result<HashMap<String, Vec<f64>>, MissingInput> {
    let n = func.vec_size;
    let mut vals: Vec<Vec<f64>> = Vec::with_capacity(func.len());
    let get = |vals: &Vec<Vec<f64>>, v: ValueId| vals[v.index()].clone();
    for op in func.ops() {
        let v = match op {
            Op::Input { name } => {
                let raw = inputs
                    .get(name)
                    .ok_or_else(|| MissingInput { name: name.clone() })?;
                let mut padded = raw.clone();
                padded.resize(n, 0.0);
                padded
            }
            Op::Const { data } => (0..n).map(|i| data.at(i)).collect(),
            // Opaque operations are value-identities.
            Op::Encode { value, .. }
            | Op::Rescale(value)
            | Op::ModSwitch(value)
            | Op::Upscale { value, .. }
            | Op::Downscale(value) => get(&vals, *value),
            Op::Add(a, b) => binop(&get(&vals, *a), &get(&vals, *b), |x, y| x + y),
            Op::Sub(a, b) => binop(&get(&vals, *a), &get(&vals, *b), |x, y| x - y),
            Op::Mul(a, b) => binop(&get(&vals, *a), &get(&vals, *b), |x, y| x * y),
            Op::Negate(a) => get(&vals, *a).iter().map(|x| -x).collect(),
            Op::Rotate { value, step } => {
                let src = get(&vals, *value);
                (0..n).map(|i| src[(i + step) % n]).collect()
            }
        };
        vals.push(v);
    }
    Ok(func
        .outputs()
        .iter()
        .map(|(name, v)| (name.clone(), vals[v.index()].clone()))
        .collect())
}

fn binop(a: &[f64], b: &[f64], f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| f(*x, *y)).collect()
}

/// Root-mean-square error between two slot vectors.
pub fn rms_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn evaluates_motivating_example() {
        let mut b = FunctionBuilder::new("m", 4);
        let x = b.input_cipher("x");
        let y = b.input_cipher("y");
        let x2 = b.square(x);
        let y2 = b.square(y);
        let z = b.add(x2, y2);
        let z2 = b.mul(z, z);
        let z3 = b.mul(z2, z);
        b.output(z3);
        let f = b.finish();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![1.0, 2.0]);
        inputs.insert("y".to_string(), vec![2.0, 0.0]);
        let out = interpret(&f, &inputs).unwrap();
        let o = &out["out0"];
        assert_eq!(o[0], 125.0); // (1+4)^3
        assert_eq!(o[1], 64.0); // (4+0)^3
        assert_eq!(o[2], 0.0); // zero-padded
    }

    #[test]
    fn rotation_and_negate() {
        let mut b = FunctionBuilder::new("r", 4);
        let x = b.input_cipher("x");
        let r = b.rotate(x, 1);
        let nr = b.neg(r);
        b.output(nr);
        let f = b.finish();
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![1.0, 2.0, 3.0, 4.0]);
        let out = interpret(&f, &inputs).unwrap();
        assert_eq!(out["out0"], vec![-2.0, -3.0, -4.0, -1.0]);
    }

    #[test]
    fn opaque_ops_are_identity() {
        use crate::ir::Op;
        let mut b = FunctionBuilder::new("i", 2);
        let x = b.input_cipher("x");
        b.output(x);
        let mut f = b.finish();
        // Manually splice in scale management and redirect the output.
        let r = f.push(Op::Rescale(ValueId(0)));
        let d = f.push(Op::Downscale(r));
        f.mark_output("managed", d);
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![5.0, -1.0]);
        let out = interpret(&f, &inputs).unwrap();
        assert_eq!(out["managed"], vec![5.0, -1.0]);
    }

    #[test]
    fn missing_input_reported() {
        let mut b = FunctionBuilder::new("m", 2);
        let x = b.input_cipher("x");
        b.output(x);
        let f = b.finish();
        let err = interpret(&f, &HashMap::new()).unwrap_err();
        assert_eq!(err.name, "x");
    }

    #[test]
    fn rms_error_basics() {
        assert_eq!(rms_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rms_error(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
