//! Textual printing of IR functions, mirroring the paper's Fig. 4 syntax.

use crate::ir::{Function, Op};
use crate::types::Type;
use std::fmt::Write;

/// Renders a function as text with complete constant payloads, suitable
/// for re-parsing with [`crate::parse::parse_function`].
pub fn print_function_full(func: &Function) -> String {
    print_impl(func, None, true)
}

/// Renders a function as text; when `types` is given, each value is
/// annotated with its inferred type. Large constants are abbreviated — use
/// [`print_function_full`] for a re-parsable form.
pub fn print_function(func: &Function, types: Option<&[Type]>) -> String {
    print_impl(func, types, false)
}

fn print_impl(func: &Function, types: Option<&[Type]>, full_consts: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "func @{}(vec {}) {{", func.name, func.vec_size);
    for (i, op) in func.ops().iter().enumerate() {
        let _ = write!(s, "  %{i} = {}", op.mnemonic());
        match op {
            Op::Input { name } => {
                let _ = write!(s, " \"{name}\"");
            }
            Op::Const { data } => {
                if data.values.len() == 1 {
                    let _ = write!(s, " {}", data.values[0]);
                } else if full_consts {
                    let items: Vec<String> = data.values.iter().map(|v| format!("{v}")).collect();
                    let _ = write!(s, " [{}]", items.join(", "));
                } else {
                    let _ = write!(s, " [{} values]", data.values.len());
                }
            }
            Op::Encode {
                value,
                scale_bits,
                level,
            } => {
                // `{}` is Rust's shortest round-trip float form: exact for
                // re-parsing and for content hashing, and identical to the
                // old `{:.0}` rendering for the (usual) integer scales.
                let _ = write!(s, " {value}, scale=2^{scale_bits}, level={level}");
            }
            Op::Rotate { value, step } => {
                let _ = write!(s, " {value}, {step}");
            }
            Op::Upscale { value, target_bits } => {
                let _ = write!(s, " {value}, 2^{target_bits}");
            }
            _ => {
                for (k, v) in op.operands().iter().enumerate() {
                    let sep = if k == 0 { " " } else { ", " };
                    let _ = write!(s, "{sep}{v}");
                }
            }
        }
        if let Some(tys) = types {
            let _ = write!(s, " : {}", tys[i]);
        }
        let _ = writeln!(s);
    }
    for (name, v) in func.outputs() {
        let _ = writeln!(s, "  output \"{name}\" = {v}");
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{infer_types, TypeConfig};

    #[test]
    fn prints_ops_and_outputs() {
        let mut b = FunctionBuilder::new("p", 4);
        let x = b.input_cipher("x");
        let c = b.splat(3.0);
        let r = b.rotate(x, 2);
        let m = b.mul(x, x);
        let _ = (c, r);
        b.output_named("res", m);
        let f = b.finish();
        let text = print_function(&f, None);
        assert!(text.contains("func @p"));
        assert!(text.contains("%0 = input \"x\""));
        assert!(text.contains("%1 = const 3"));
        assert!(text.contains("%2 = rotate %0, 2"));
        assert!(text.contains("%3 = mul %0, %0"));
        assert!(text.contains("output \"res\" = %3"));
    }

    #[test]
    fn prints_types_when_given() {
        let mut b = FunctionBuilder::new("p", 4);
        let x = b.input_cipher("x");
        let m = b.mul(x, x);
        b.output(m);
        let f = b.finish();
        let tys = infer_types(&f, &TypeConfig::new(20.0, 40.0)).unwrap();
        let text = print_function(&f, Some(&tys));
        assert!(text.contains("cipher(20,0)"));
        assert!(text.contains("cipher(40,0)"));
    }
}
