//! The plan verifier: per-pass checking of the paper's type-system
//! invariants.
//!
//! [`types::infer_types`](crate::types::infer_types) rejects ill-typed IR,
//! but a panic-free compiler needs more: after *every* transformation the
//! pipeline re-checks the full invariant set and reports a structured
//! [`VerifyError`] naming the offending operation, the pass that produced
//! it, and the violated [`Invariant`] — so a buggy pass (or an injected
//! fault) surfaces as a diagnosable error instead of a panic or a garbled
//! decryption.
//!
//! The invariants, from the paper's scaled type system (§IV-B):
//!
//! - **Structure** — SSA well-formedness (operands defined before use,
//!   outputs in range, ≥ 1 output);
//! - **Typing** — the inference rules Eq. 1–6 hold at every operation;
//! - **Waterline** — every ciphertext scale stays at or above `S_w` (C2);
//! - **ModulusBudget** — scale plus `level·S_f` fits the modulus budget at
//!   every program point (C1);
//! - **LevelMonotonicity** — levels never decrease along def-use edges
//!   (RNS prefixes only shrink);
//! - **RescaleLegality** — each `rescale` sheds exactly `S_f` bits and
//!   lands at or above the waterline; each `downscale` is used only where
//!   `rescale` is inapplicable (Eq. 6);
//! - **OutputKind** — at least one program output is a scaled (non-free)
//!   value; a program whose every output is free computes nothing under
//!   encryption (individual free outputs are folded constants, which the
//!   backend passes through).
//!
//! Two entry points: [`verify_input`] for source programs (structural
//! checks only — source programs carry no scale management and therefore
//! no scale types), and [`verify_plan`] for scale-managed programs.

use crate::ir::{Function, Op, StructureError, ValueId};
use crate::types::{infer_types, Type, TypeConfig, TypeError, SCALE_EPS};

/// The invariant classes the verifier enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// SSA well-formedness.
    Structure,
    /// The typing rules Eq. 1–6.
    Typing,
    /// C2: ciphertext scales never fall below the waterline.
    Waterline,
    /// C1: scales fit the modulus available at their level.
    ModulusBudget,
    /// Levels never decrease along def-use edges.
    LevelMonotonicity,
    /// Rescale/downscale side conditions (Eq. 3, Eq. 6).
    RescaleLegality,
    /// At least one output must be a scaled value.
    OutputKind,
}

impl std::fmt::Display for Invariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Invariant::Structure => "structure",
            Invariant::Typing => "typing",
            Invariant::Waterline => "waterline (C2)",
            Invariant::ModulusBudget => "modulus budget (C1)",
            Invariant::LevelMonotonicity => "level monotonicity",
            Invariant::RescaleLegality => "rescale legality",
            Invariant::OutputKind => "output kind",
        };
        f.write_str(s)
    }
}

/// A structured verification failure: which pass produced the program,
/// which operation violates which invariant, and a human-readable detail.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// The pass whose output failed verification.
    pub pass: String,
    /// The offending operation, if attributable to one.
    pub at: Option<ValueId>,
    /// The offending operation's mnemonic, if attributable.
    pub op: Option<&'static str>,
    /// The violated invariant.
    pub invariant: Invariant,
    /// Human-readable description of the violation.
    pub detail: String,
}

impl VerifyError {
    fn new(
        pass: &str,
        at: Option<ValueId>,
        op: Option<&'static str>,
        invariant: Invariant,
        detail: impl Into<String>,
    ) -> Self {
        VerifyError {
            pass: pass.to_string(),
            at,
            op,
            invariant,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pass '{}' violated {}", self.pass, self.invariant)?;
        if let Some(at) = self.at {
            write!(f, " at {at}")?;
            if let Some(op) = self.op {
                write!(f, " ({op})")?;
            }
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for VerifyError {}

fn structure_error(pass: &str, e: StructureError) -> VerifyError {
    let at = match &e {
        StructureError::ForwardReference { at, .. }
        | StructureError::DanglingOperand { at, .. } => Some(*at),
        _ => None,
    };
    VerifyError::new(pass, at, None, Invariant::Structure, e.to_string())
}

fn type_error(pass: &str, func: &Function, e: TypeError) -> VerifyError {
    let at = match &e {
        TypeError::FreeOperand { at }
        | TypeError::LevelMismatch { at, .. }
        | TypeError::ScaleMismatch { at, .. }
        | TypeError::BelowWaterline { at, .. }
        | TypeError::ScaleOverflow { at, .. }
        | TypeError::LevelOverflow { at, .. }
        | TypeError::BadOperandKind { at, .. }
        | TypeError::UpscaleBelowCurrent { at, .. } => *at,
    };
    // Classify the typing failure into the closest invariant class so the
    // report names what the pass actually broke.
    let invariant = match &e {
        TypeError::BelowWaterline { .. } => Invariant::Waterline,
        TypeError::ScaleOverflow { .. } | TypeError::LevelOverflow { .. } => {
            Invariant::ModulusBudget
        }
        TypeError::BadOperandKind { rule, .. }
            if rule.contains("Eq. 3") || rule.contains("Eq. 6") =>
        {
            Invariant::RescaleLegality
        }
        _ => Invariant::Typing,
    };
    let op = func.ops().get(at.index()).map(|o| o.mnemonic());
    VerifyError::new(pass, Some(at), op, invariant, e.to_string())
}

/// Verifies a *source* program (before scale management): SSA structure
/// and the absence of compiler-inserted scale-management operations.
///
/// # Errors
/// Returns the first [`VerifyError`] found.
pub fn verify_input(func: &Function, pass: &str) -> Result<(), VerifyError> {
    func.verify_structure()
        .map_err(|e| structure_error(pass, e))?;
    for (i, op) in func.ops().iter().enumerate() {
        if op.is_scale_management() {
            return Err(VerifyError::new(
                pass,
                Some(ValueId(i as u32)),
                Some(op.mnemonic()),
                Invariant::Structure,
                "source programs must not contain scale-management operations",
            ));
        }
    }
    Ok(())
}

/// Verifies a scale-managed program against the full invariant set and
/// returns the inferred types on success.
///
/// Runs after every compiler pass; `pass` names the producer for the
/// error report.
///
/// # Errors
/// Returns the first [`VerifyError`] found, in definition order.
pub fn verify_plan(
    func: &Function,
    cfg: &TypeConfig,
    pass: &str,
) -> Result<Vec<Type>, VerifyError> {
    func.verify_structure()
        .map_err(|e| structure_error(pass, e))?;
    let types = infer_types(func, cfg).map_err(|e| type_error(pass, func, e))?;

    for (i, op) in func.ops().iter().enumerate() {
        let at = ValueId(i as u32);
        let ty = types[i];

        // Waterline (C2): no ciphertext below S_w. Inference checks the
        // rescale/downscale rules, but a buggy pass could still construct
        // e.g. an encode below the waterline feeding a multiply.
        if let Type::Cipher { scale, .. } = ty {
            if scale < cfg.waterline - SCALE_EPS {
                return Err(VerifyError::new(
                    pass,
                    Some(at),
                    Some(op.mnemonic()),
                    Invariant::Waterline,
                    format!(
                        "cipher scale 2^{scale:.2} below waterline 2^{:.2}",
                        cfg.waterline
                    ),
                ));
            }
        }

        // Modulus budget (C1), when the chain is already fixed.
        if let (Some(scale), Some(level)) = (ty.scale(), ty.level()) {
            if let Some(budget) = cfg.budget_at(level) {
                if scale > budget + SCALE_EPS {
                    return Err(VerifyError::new(
                        pass,
                        Some(at),
                        Some(op.mnemonic()),
                        Invariant::ModulusBudget,
                        format!(
                            "scale 2^{scale:.2} exceeds 2^{budget:.2} available at level {level}"
                        ),
                    ));
                }
            }
            if let Some(max) = cfg.max_level {
                if level > max {
                    return Err(VerifyError::new(
                        pass,
                        Some(at),
                        Some(op.mnemonic()),
                        Invariant::ModulusBudget,
                        format!("level {level} exceeds chain maximum {max}"),
                    ));
                }
            }
        }

        // Level monotonicity along def-use edges. `encode` mints a fresh
        // plaintext at an arbitrary level, so it is exempt.
        if !matches!(op, Op::Encode { .. }) {
            if let Some(result_level) = ty.level() {
                for v in op.operands() {
                    if let Some(op_level) = types[v.index()].level() {
                        if result_level < op_level {
                            return Err(VerifyError::new(
                                pass,
                                Some(at),
                                Some(op.mnemonic()),
                                Invariant::LevelMonotonicity,
                                format!(
                                    "result level {result_level} below operand {v} level {op_level}"
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // Rescale legality (Eq. 3): a rescale sheds exactly S_f bits and
        // its result must sit at or above the waterline.
        if let Op::Rescale(v) = op {
            let before = types[v.index()].scale().unwrap_or(0.0);
            let after = ty.scale().unwrap_or(0.0);
            if (before - after - cfg.rescale_bits).abs() > SCALE_EPS {
                return Err(VerifyError::new(
                    pass,
                    Some(at),
                    Some(op.mnemonic()),
                    Invariant::RescaleLegality,
                    format!(
                        "rescale dropped {:.2} bits, expected S_f = {:.2}",
                        before - after,
                        cfg.rescale_bits
                    ),
                ));
            }
        }
    }

    let all_free = func
        .outputs()
        .iter()
        .all(|(_, v)| matches!(types[v.index()], Type::Free));
    if all_free {
        let (name, v) = &func.outputs()[0];
        return Err(VerifyError::new(
            pass,
            Some(*v),
            Some(func.op(*v).mnemonic()),
            Invariant::OutputKind,
            format!("every output (e.g. '{name}') is a free value; nothing is computed under encryption"),
        ));
    }

    Ok(types)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ConstData;

    fn cfg() -> TypeConfig {
        TypeConfig::new(20.0, 40.0)
    }

    #[test]
    fn wellformed_plan_passes_and_returns_types() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x)); // scale 40
        let m2 = f.push(Op::Mul(m, m)); // scale 80
        let r = f.push(Op::Rescale(m2)); // 40 at level 1
        f.mark_output("o", r);
        let types = verify_plan(&f, &cfg(), "test").unwrap();
        assert_eq!(
            types[3],
            Type::Cipher {
                scale: 40.0,
                level: 1
            }
        );
    }

    #[test]
    fn structure_violation_names_pass_and_invariant() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Negate(ValueId(7)));
        f.mark_output("o", x);
        let e = verify_plan(&f, &cfg(), "sabotaged-pass").unwrap_err();
        assert_eq!(e.invariant, Invariant::Structure);
        assert_eq!(e.pass, "sabotaged-pass");
    }

    #[test]
    fn waterline_violation_classified_as_c2() {
        // Rescaling scale 40 under S_f 40 lands at 0 < waterline 20.
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        let r = f.push(Op::Rescale(m));
        f.mark_output("o", r);
        let e = verify_plan(&f, &cfg(), "p").unwrap_err();
        assert_eq!(e.invariant, Invariant::Waterline);
        assert_eq!(e.at, Some(ValueId(2)));
        assert_eq!(e.op, Some("rescale"));
    }

    #[test]
    fn budget_violation_classified_as_c1() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        let m2 = f.push(Op::Mul(m, m)); // scale 80
        f.mark_output("o", m2);
        let mut c = cfg();
        c.modulus_bits = Some(70.0);
        let e = verify_plan(&f, &c, "p").unwrap_err();
        assert_eq!(e.invariant, Invariant::ModulusBudget);
    }

    #[test]
    fn free_output_rejected() {
        let mut f = Function::new("t", 4);
        f.push(Op::Input { name: "x".into() });
        let c = f.push(Op::Const {
            data: ConstData::splat(1.0),
        });
        f.mark_output("o", c);
        let e = verify_plan(&f, &cfg(), "p").unwrap_err();
        assert_eq!(e.invariant, Invariant::OutputKind);
    }

    #[test]
    fn input_verifier_rejects_scale_management() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let r = f.push(Op::ModSwitch(x));
        f.mark_output("o", r);
        let e = verify_input(&f, "frontend").unwrap_err();
        assert_eq!(e.invariant, Invariant::Structure);
        assert!(e.detail.contains("scale-management"));
    }

    #[test]
    fn error_display_names_everything() {
        let mut f = Function::new("t", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let m = f.push(Op::Mul(x, x));
        let r = f.push(Op::Rescale(m));
        f.mark_output("o", r);
        let e = verify_plan(&f, &cfg(), "pars").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("pars") && msg.contains("%2"), "{msg}");
    }
}
