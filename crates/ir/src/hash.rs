//! Stable content hashing of IR programs.
//!
//! The serving layer (`hecate-runtime`) caches compiled plans by the
//! *content* of the input program, not by object identity: two
//! independently built but structurally identical functions must map to
//! the same cache key, and any semantic difference — an operation, an
//! operand, a constant payload, the vector width — must change it. The
//! canonical textual form ([`crate::print::print_function_full`]) already
//! has exactly this injectivity (it round-trips through
//! [`crate::parse::parse_function`]), so the content hash is defined as
//! FNV-1a over that rendering.
//!
//! FNV-1a is used instead of `std::hash` deliberately: `DefaultHasher` is
//! documented to be unstable across releases and processes, while a cache
//! key must be stable enough to name serialized plan artifacts on disk.

use crate::ir::Function;
use crate::print::print_function_full;

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// # Example
/// ```
/// use hecate_ir::hash::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write(b"hello");
/// let once = h.finish();
/// let mut h2 = Fnv1a::new();
/// h2.write(b"hel");
/// h2.write(b"lo");
/// assert_eq!(once, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of a byte slice in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// The stable content hash of a function: FNV-1a over its canonical
/// re-parsable print form.
///
/// Two functions hash equal iff their canonical prints are equal, which
/// holds exactly when they have the same name, vector width, operation
/// sequence (including constant payloads, rotation steps, and scale
/// parameters), and outputs.
pub fn function_hash(func: &Function) -> u64 {
    fnv1a(print_function_full(func).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::ir::{ConstData, Op};

    fn sample(scale: f64, rot: usize, konst: f64) -> Function {
        let mut f = Function::new("sample", 8);
        let x = f.push(Op::Input { name: "x".into() });
        let c = f.push(Op::Const {
            data: ConstData::splat(konst),
        });
        let e = f.push(Op::Encode {
            value: c,
            scale_bits: scale,
            level: 0,
        });
        let m = f.push(Op::Mul(x, e));
        let r = f.push(Op::Rotate {
            value: m,
            step: rot,
        });
        f.mark_output("o", r);
        f
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn independently_built_identical_programs_hash_equal() {
        // Built through the raw arena and through the builder eDSL.
        let mut raw = Function::new("square", 4);
        let x = raw.push(Op::Input { name: "x".into() });
        let m = raw.push(Op::Mul(x, x));
        raw.mark_output("out0", m);

        let mut b = FunctionBuilder::new("square", 4);
        let x = b.input_cipher("x");
        let sq = b.square(x);
        b.output(sq);
        let built = b.finish();

        assert_eq!(function_hash(&raw), function_hash(&built));
    }

    #[test]
    fn any_semantic_change_alters_the_hash() {
        let base = function_hash(&sample(20.0, 1, 2.0));
        assert_ne!(base, function_hash(&sample(21.0, 1, 2.0)), "encode scale");
        assert_ne!(
            base,
            function_hash(&sample(20.5, 1, 2.0)),
            "fractional scale"
        );
        assert_ne!(base, function_hash(&sample(20.0, 2, 2.0)), "rotation step");
        assert_ne!(base, function_hash(&sample(20.0, 1, 2.5)), "constant");
    }

    #[test]
    fn structural_changes_alter_the_hash() {
        let mut f = sample(20.0, 1, 2.0);
        let base = function_hash(&sample(20.0, 1, 2.0));
        // Extra (even dead) operation changes the content.
        f.push(Op::Input { name: "y".into() });
        assert_ne!(base, function_hash(&f));
        // Different vector width.
        let mut g = Function::new("sample", 16);
        let x = g.push(Op::Input { name: "x".into() });
        g.mark_output("o", x);
        let mut h = Function::new("sample", 8);
        let x = h.push(Op::Input { name: "x".into() });
        h.mark_output("o", x);
        assert_ne!(function_hash(&g), function_hash(&h));
    }

    #[test]
    fn op_substitution_alters_the_hash() {
        let mut add = Function::new("f", 4);
        let x = add.push(Op::Input { name: "x".into() });
        let a = add.push(Op::Add(x, x));
        add.mark_output("o", a);
        let mut sub = Function::new("f", 4);
        let x = sub.push(Op::Input { name: "x".into() });
        let s = sub.push(Op::Sub(x, x));
        sub.mark_output("o", s);
        assert_ne!(function_hash(&add), function_hash(&sub));
    }
}
