//! Parsing of the textual IR form.
//!
//! Accepts the syntax produced by [`crate::print::print_function`] (with
//! full constant payloads, as printed by
//! [`crate::print::print_function_full`]), enabling file-based workflows:
//! write a program, inspect it, feed it to the `hecatec` driver. Type
//! annotations (after `:`) are ignored on input — types are always
//! re-inferred.

use crate::ir::{ConstData, Function, Op, ValueId};
use std::collections::HashMap;

/// A parse failure with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a function from its textual form.
///
/// # Errors
/// Returns a [`ParseError`] describing the first offending line.
///
/// # Example
/// ```
/// use hecate_ir::parse::parse_function;
/// let src = r#"
/// func @square(vec 8) {
///   %0 = input "x"
///   %1 = mul %0, %0
///   output "out" = %1
/// }
/// "#;
/// let f = parse_function(src)?;
/// assert_eq!(f.len(), 2);
/// # Ok::<(), hecate_ir::parse::ParseError>(())
/// ```
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let mut func: Option<Function> = None;
    let mut ids: HashMap<u32, ValueId> = HashMap::new();
    let mut done = false;

    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments and type annotations.
        let text = raw.split("//").next().unwrap_or("");
        let text = text.split(" : ").next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if done {
            return Err(err(line, "content after closing '}'"));
        }
        if let Some(rest) = text.strip_prefix("func @") {
            if func.is_some() {
                return Err(err(line, "nested function"));
            }
            // func @name(vec N) {
            let (name, rest) = rest
                .split_once("(vec ")
                .ok_or_else(|| err(line, "expected '(vec N)'"))?;
            let (vec_str, _) = rest
                .split_once(')')
                .ok_or_else(|| err(line, "unterminated '(vec N)'"))?;
            let vec_size: usize = vec_str
                .trim()
                .parse()
                .map_err(|_| err(line, "bad vector size"))?;
            func = Some(Function::new(name.trim(), vec_size));
            continue;
        }
        let Some(f) = func.as_mut() else {
            return Err(err(line, "statement before 'func'"));
        };
        if text == "}" {
            done = true;
            continue;
        }
        if let Some(rest) = text.strip_prefix("output ") {
            // output "name" = %v
            let (name, v) = parse_output(rest).ok_or_else(|| err(line, "bad output"))?;
            let vid = *ids
                .get(&v)
                .ok_or_else(|| err(line, format!("unknown value %{v}")))?;
            f.mark_output(name, vid);
            continue;
        }
        // %N = op ...
        let (lhs, rhs) = text
            .split_once('=')
            .ok_or_else(|| err(line, "expected '%N = op ...'"))?;
        let def: u32 = lhs
            .trim()
            .strip_prefix('%')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(line, "bad value id"))?;
        let rhs = rhs.trim();
        let (mnemonic, args) = rhs.split_once(' ').unwrap_or((rhs, ""));
        let args = args.trim();
        let resolve = |tok: &str| -> Result<ValueId, ParseError> {
            let id: u32 = tok
                .trim()
                .strip_prefix('%')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line, format!("bad operand '{tok}'")))?;
            ids.get(&id)
                .copied()
                .ok_or_else(|| err(line, format!("unknown value %{id}")))
        };
        let two = |args: &str| -> Result<(ValueId, ValueId), ParseError> {
            let (a, b) = args
                .split_once(',')
                .ok_or_else(|| err(line, "expected two operands"))?;
            Ok((resolve(a)?, resolve(b)?))
        };
        let op = match mnemonic {
            "input" => Op::Input {
                name: parse_quoted(args).ok_or_else(|| err(line, "expected \"name\""))?,
            },
            "const" => Op::Const {
                data: parse_const(args).ok_or_else(|| err(line, "bad constant payload"))?,
            },
            "encode" => {
                // %v, scale=2^S, level=L
                let mut parts = args.split(',').map(str::trim);
                let v = resolve(parts.next().unwrap_or(""))?;
                let scale = parts
                    .next()
                    .and_then(|p| p.strip_prefix("scale=2^"))
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| err(line, "expected scale=2^S"))?;
                let level = parts
                    .next()
                    .and_then(|p| p.strip_prefix("level="))
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| err(line, "expected level=L"))?;
                Op::Encode {
                    value: v,
                    scale_bits: scale,
                    level,
                }
            }
            "add" => {
                let (a, b) = two(args)?;
                Op::Add(a, b)
            }
            "sub" => {
                let (a, b) = two(args)?;
                Op::Sub(a, b)
            }
            "mul" => {
                let (a, b) = two(args)?;
                Op::Mul(a, b)
            }
            "negate" => Op::Negate(resolve(args)?),
            "rotate" => {
                let (v, s) = args
                    .split_once(',')
                    .ok_or_else(|| err(line, "expected '%v, step'"))?;
                Op::Rotate {
                    value: resolve(v)?,
                    step: s
                        .trim()
                        .parse()
                        .map_err(|_| err(line, "bad rotation step"))?,
                }
            }
            "rescale" => Op::Rescale(resolve(args)?),
            "modswitch" => Op::ModSwitch(resolve(args)?),
            "upscale" => {
                let (v, t) = args
                    .split_once(',')
                    .ok_or_else(|| err(line, "expected '%v, 2^T'"))?;
                Op::Upscale {
                    value: resolve(v)?,
                    target_bits: t
                        .trim()
                        .strip_prefix("2^")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(line, "bad upscale target"))?,
                }
            }
            "downscale" => Op::Downscale(resolve(args)?),
            other => return Err(err(line, format!("unknown operation '{other}'"))),
        };
        let vid = f.push(op);
        ids.insert(def, vid);
    }
    let func = func.ok_or_else(|| err(0, "no function found"))?;
    func.verify_structure()
        .map_err(|e| err(0, format!("malformed function: {e}")))?;
    Ok(func)
}

fn parse_quoted(s: &str) -> Option<String> {
    let s = s.trim();
    s.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

fn parse_const(s: &str) -> Option<ConstData> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let values: Option<Vec<f64>> = inner
            .split(',')
            .map(|v| v.trim().parse::<f64>().ok())
            .collect();
        Some(ConstData::vector(values?))
    } else {
        s.parse::<f64>().ok().map(ConstData::splat)
    }
}

/// Parses `"name" = %v`.
fn parse_output(s: &str) -> Option<(String, u32)> {
    let (name, v) = s.split_once('=')?;
    let name = parse_quoted(name)?;
    let id = v.trim().strip_prefix('%')?.parse().ok()?;
    Some((name, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::print::print_function_full;

    #[test]
    fn parses_the_motivating_example() {
        let src = r#"
        func @motivating(vec 4) {
          %0 = input "x"
          %1 = input "y"
          %2 = mul %0, %0
          %3 = mul %1, %1
          %4 = add %2, %3
          %5 = mul %4, %4
          %6 = mul %5, %4
          output "result" = %6
        }
        "#;
        let f = parse_function(src).unwrap();
        assert_eq!(f.len(), 7);
        assert_eq!(f.vec_size, 4);
        assert_eq!(f.outputs()[0].0, "result");
    }

    #[test]
    fn roundtrips_through_the_printer() {
        let mut b = FunctionBuilder::new("round", 8);
        let x = b.input_cipher("x");
        let c = b.vector(vec![1.0, -2.5, 3.0]);
        let r = b.rotate(x, 3);
        let m = b.mul(r, c);
        let n = b.neg(m);
        let s = b.sub(n, x);
        b.output_named("res", s);
        let f = b.finish();
        let text = print_function_full(&f);
        let g = parse_function(&text).unwrap();
        assert_eq!(f, g, "print → parse must be the identity:\n{text}");
    }

    #[test]
    fn roundtrips_scale_management_ops() {
        use crate::ir::Op;
        let mut f = Function::new("sm", 4);
        let x = f.push(Op::Input { name: "x".into() });
        let c = f.push(Op::Const {
            data: ConstData::splat(2.0),
        });
        let e = f.push(Op::Encode {
            value: c,
            scale_bits: 20.0,
            level: 1,
        });
        let m = f.push(Op::Mul(x, x));
        let m2 = f.push(Op::Mul(m, m));
        let r = f.push(Op::Rescale(m2));
        let ms = f.push(Op::ModSwitch(x));
        let u = f.push(Op::Upscale {
            value: ms,
            target_bits: 40.0,
        });
        let d = f.push(Op::Downscale(m));
        let _ = (e, u, d, r);
        f.mark_output("o", r);
        let text = print_function_full(&f);
        let g = parse_function(&text).unwrap();
        assert_eq!(f, g, "{text}");
    }

    #[test]
    fn type_annotations_and_comments_ignored() {
        let src = r#"
        // a comment
        func @t(vec 4) {
          %0 = input "x" : cipher(20,0)
          %1 = mul %0, %0 : cipher(40,0)  // another
          output "o" = %1
        }
        "#;
        assert_eq!(parse_function(src).unwrap().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "func @t(vec 4) {\n  %0 = input \"x\"\n  %1 = frobnicate %0\n}";
        let e = parse_function(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));

        let e2 = parse_function("func @t(vec 4) {\n  %1 = mul %0, %0\n}").unwrap_err();
        assert_eq!(e2.line, 2);
        assert!(e2.message.contains("unknown value"));
    }

    #[test]
    fn missing_output_rejected() {
        let e = parse_function("func @t(vec 4) {\n  %0 = input \"x\"\n}").unwrap_err();
        assert!(e.message.contains("malformed"));
    }
}
