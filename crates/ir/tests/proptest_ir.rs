//! Property-based tests of the IR infrastructure: the printer/parser
//! round-trip, and semantics preservation of the transform passes.

use hecate_ir::interp::{interpret, rms_error};
use hecate_ir::parse::parse_function;
use hecate_ir::print::print_function_full;
use hecate_ir::transform::{canonicalize, eliminate_common_subexpressions, fold_constants};
use hecate_ir::{ConstData, Function, Op, ValueId};
use proptest::prelude::*;
use std::collections::HashMap;

const VEC: usize = 8;

#[derive(Debug, Clone)]
enum Pick {
    Add,
    Sub,
    Mul,
    Negate,
    Rotate(usize),
    Const(i32),
    ConstVec(Vec<i32>),
    Rescale,
    ModSwitch,
    Downscale,
    Upscale(u32),
    Encode(u32),
}

fn pick() -> impl Strategy<Value = Pick> {
    prop_oneof![
        4 => Just(Pick::Add),
        2 => Just(Pick::Sub),
        4 => Just(Pick::Mul),
        1 => Just(Pick::Negate),
        2 => (1usize..VEC).prop_map(Pick::Rotate),
        2 => (-50i32..50).prop_map(Pick::Const),
        1 => proptest::collection::vec(-50i32..50, 2..VEC).prop_map(Pick::ConstVec),
        1 => Just(Pick::Rescale),
        1 => Just(Pick::ModSwitch),
        1 => Just(Pick::Downscale),
        1 => (20u32..60).prop_map(Pick::Upscale),
        1 => (10u32..40).prop_map(Pick::Encode),
    ]
}

/// Builds a structurally valid (not necessarily well-typed) function — the
/// printer and parser must handle any well-formed SSA, typed or not.
fn build(picks: &[(Pick, u64, u64)]) -> Function {
    let mut f = Function::new("rand", VEC);
    let mut vals: Vec<ValueId> = vec![f.push(Op::Input { name: "x".into() })];
    for (p, s1, s2) in picks {
        let a = vals[(*s1 % vals.len() as u64) as usize];
        let b = vals[(*s2 % vals.len() as u64) as usize];
        let v = match p {
            Pick::Add => f.push(Op::Add(a, b)),
            Pick::Sub => f.push(Op::Sub(a, b)),
            Pick::Mul => f.push(Op::Mul(a, b)),
            Pick::Negate => f.push(Op::Negate(a)),
            Pick::Rotate(s) => f.push(Op::Rotate { value: a, step: *s }),
            Pick::Const(c) => f.push(Op::Const {
                data: ConstData::splat(*c as f64 / 8.0),
            }),
            Pick::ConstVec(v) => f.push(Op::Const {
                data: ConstData::vector(v.iter().map(|c| *c as f64 / 8.0).collect()),
            }),
            Pick::Rescale => f.push(Op::Rescale(a)),
            Pick::ModSwitch => f.push(Op::ModSwitch(a)),
            Pick::Downscale => f.push(Op::Downscale(a)),
            Pick::Upscale(t) => f.push(Op::Upscale {
                value: a,
                target_bits: *t as f64,
            }),
            Pick::Encode(s) => f.push(Op::Encode {
                value: a,
                scale_bits: *s as f64,
                level: (*s1 % 3) as usize,
            }),
        };
        vals.push(v);
    }
    f.mark_output("out", *vals.last().expect("non-empty"));
    f
}

fn inputs() -> HashMap<String, Vec<f64>> {
    let mut m = HashMap::new();
    m.insert(
        "x".to_string(),
        (0..VEC).map(|i| 0.25 * i as f64 - 1.0).collect(),
    );
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip(
        picks in proptest::collection::vec((pick(), any::<u64>(), any::<u64>()), 1..30),
    ) {
        let f = build(&picks);
        let text = print_function_full(&f);
        let g = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(&f, &g, "roundtrip changed the function:\n{}", text);
    }

    #[test]
    fn transforms_preserve_interpretation(
        picks in proptest::collection::vec((pick(), any::<u64>(), any::<u64>()), 1..30),
    ) {
        let f = build(&picks);
        let ins = inputs();
        let reference = interpret(&f, &ins).unwrap();
        for (name, g) in [
            ("cse", eliminate_common_subexpressions(&f)),
            ("fold", fold_constants(&f)),
            ("canonicalize", canonicalize(&f)),
        ] {
            prop_assert!(g.verify_structure().is_ok(), "{name} broke SSA");
            prop_assert!(g.len() <= f.len(), "{name} grew the program");
            let out = interpret(&g, &ins).unwrap();
            for (k, expect) in &reference {
                let err = rms_error(&out[k], expect);
                prop_assert!(err < 1e-9, "{name}: output {k} drifted by {err}");
            }
        }
    }

    #[test]
    fn dce_is_idempotent_after_canonicalize(
        picks in proptest::collection::vec((pick(), any::<u64>(), any::<u64>()), 1..20),
    ) {
        let f = canonicalize(&build(&picks));
        let (g, _) = hecate_ir::analysis::eliminate_dead_code(&f);
        prop_assert_eq!(f, g, "canonicalized functions contain no dead code");
    }
}
