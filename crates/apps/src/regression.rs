//! Linear and polynomial regression by encrypted gradient descent —
//! paper §VII-A (LR E2/E3, PR E2/E3).
//!
//! Both benchmarks train on packed sample vectors: predictions and
//! residuals are elementwise, and gradients are means computed with a
//! rotate-and-sum reduction (which leaves the sum replicated in every
//! slot, so updated parameters remain well-formed scalar ciphertexts).
//! Each additional epoch deepens the multiplicative chain, which is why
//! the paper evaluates 2- and 3-epoch variants.

use crate::workloads::{linear_targets, quadratic_targets, uniform_samples};
use hecate_ir::{Function, FunctionBuilder, ValueId};
use std::collections::HashMap;

/// Configuration for the regression benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct RegressionConfig {
    /// Number of samples (power of two; paper uses 16384).
    pub n: usize,
    /// Gradient-descent epochs (paper: 2 and 3).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Workload seed.
    pub seed: u64,
}

impl RegressionConfig {
    /// Paper-scale: 16384 samples.
    pub fn paper(epochs: usize, seed: u64) -> Self {
        RegressionConfig {
            n: 16384,
            epochs,
            lr: 0.5,
            seed,
        }
    }

    /// Reduced scale for fast encrypted runs.
    pub fn small(epochs: usize, seed: u64) -> Self {
        RegressionConfig {
            n: 256,
            epochs,
            lr: 0.5,
            seed,
        }
    }
}

/// Emits `mean(v)` replicated across all slots.
fn mean(b: &mut FunctionBuilder, v: ValueId, n: usize) -> ValueId {
    let sum = b.rotate_sum(v, n);
    let inv = b.splat(1.0 / n as f64);
    b.mul(sum, inv)
}

/// Builds the linear-regression benchmark (`y ≈ w·x + c`), outputting the
/// trained parameters.
pub fn build_linear(cfg: &RegressionConfig) -> (Function, HashMap<String, Vec<f64>>) {
    assert!(cfg.n.is_power_of_two());
    let mut b = FunctionBuilder::new(format!("lr_e{}", cfg.epochs), cfg.n);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let mut w = b.splat(0.0);
    let mut c = b.splat(0.0);
    for _ in 0..cfg.epochs {
        let wx = b.mul(w, x);
        let pred = b.add(wx, c);
        let err = b.sub(pred, y);
        let err_x = b.mul(err, x);
        let gw = mean(&mut b, err_x, cfg.n);
        let gc = mean(&mut b, err, cfg.n);
        let lr = b.splat(cfg.lr);
        let dw = b.mul(gw, lr);
        let dc = b.mul(gc, lr);
        w = b.sub(w, dw);
        c = b.sub(c, dc);
    }
    b.output_named("w", w);
    b.output_named("c", c);

    let xs = uniform_samples(cfg.n, cfg.seed);
    let ys = linear_targets(&xs, 0.7, 0.2, 0.05, cfg.seed.wrapping_add(1));
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), xs);
    inputs.insert("y".to_string(), ys);
    (b.finish(), inputs)
}

/// Builds the quadratic polynomial-regression benchmark
/// (`y ≈ a·x² + b·x + c`), outputting the trained parameters.
pub fn build_poly(cfg: &RegressionConfig) -> (Function, HashMap<String, Vec<f64>>) {
    assert!(cfg.n.is_power_of_two());
    let mut b = FunctionBuilder::new(format!("pr_e{}", cfg.epochs), cfg.n);
    let x = b.input_cipher("x");
    let y = b.input_cipher("y");
    let x2 = b.square(x);
    let mut pa = b.splat(0.0);
    let mut pb = b.splat(0.0);
    let mut pc = b.splat(0.0);
    for _ in 0..cfg.epochs {
        let ax2 = b.mul(pa, x2);
        let bx = b.mul(pb, x);
        let quad_lin = b.add(ax2, bx);
        let pred = b.add(quad_lin, pc);
        let err = b.sub(pred, y);
        let err_x2 = b.mul(err, x2);
        let err_x = b.mul(err, x);
        let ga = mean(&mut b, err_x2, cfg.n);
        let gb = mean(&mut b, err_x, cfg.n);
        let gc = mean(&mut b, err, cfg.n);
        let lr = b.splat(cfg.lr);
        let da = b.mul(ga, lr);
        let db = b.mul(gb, lr);
        let dc = b.mul(gc, lr);
        pa = b.sub(pa, da);
        pb = b.sub(pb, db);
        pc = b.sub(pc, dc);
    }
    b.output_named("a", pa);
    b.output_named("b", pb);
    b.output_named("c", pc);

    let xs = uniform_samples(cfg.n, cfg.seed);
    let ys = quadratic_targets(&xs, 0.5, -0.3, 0.1, 0.05, cfg.seed.wrapping_add(1));
    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), xs);
    inputs.insert("y".to_string(), ys);
    (b.finish(), inputs)
}

/// Plain-domain gradient descent matching [`build_linear`], for testing.
pub fn reference_linear(xs: &[f64], ys: &[f64], epochs: usize, lr: f64) -> (f64, f64) {
    let n = xs.len() as f64;
    let (mut w, mut c) = (0.0f64, 0.0f64);
    for _ in 0..epochs {
        let mut gw = 0.0;
        let mut gc = 0.0;
        for (x, y) in xs.iter().zip(ys) {
            let err = w * x + c - y;
            gw += err * x;
            gc += err;
        }
        w -= lr * gw / n;
        c -= lr * gc / n;
    }
    (w, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;

    #[test]
    fn circuit_matches_reference_descent() {
        let cfg = RegressionConfig::small(3, 1);
        let (f, ins) = build_linear(&cfg);
        let out = interpret(&f, &ins).unwrap();
        let (w, c) = reference_linear(&ins["x"], &ins["y"], 3, cfg.lr);
        // Every slot holds the replicated parameter.
        for k in [0usize, 17, 255] {
            assert!((out["w"][k] - w).abs() < 1e-9, "{} vs {w}", out["w"][k]);
            assert!((out["c"][k] - c).abs() < 1e-9);
        }
    }

    #[test]
    fn training_moves_toward_ground_truth() {
        let cfg = RegressionConfig::small(3, 2);
        let (f, ins) = build_linear(&cfg);
        let out = interpret(&f, &ins).unwrap();
        // Ground truth: y = 0.7x + 0.2. Three epochs of GD at lr 0.5 should
        // get meaningfully closer than the zero initialization.
        let w = out["w"][0];
        let c = out["c"][0];
        assert!((w - 0.7).abs() < 0.5, "w={w}");
        assert!((c - 0.2).abs() < 0.2, "c={c}");
        assert!(w > 0.2, "w should have moved well off zero: {w}");
    }

    #[test]
    fn poly_regression_learns_curvature_sign() {
        let cfg = RegressionConfig::small(3, 3);
        let (f, ins) = build_poly(&cfg);
        let out = interpret(&f, &ins).unwrap();
        // Target curvature 0.5 > 0: after 3 epochs the sign is settled.
        assert!(out["a"][0] > 0.0, "a={}", out["a"][0]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn extra_epochs_deepen_the_circuit() {
        let c2 = build_linear(&RegressionConfig::small(2, 1)).0;
        let c3 = build_linear(&RegressionConfig::small(3, 1)).0;
        assert!(c3.len() > c2.len());
    }
}
