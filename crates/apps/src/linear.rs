//! Packed linear algebra on encrypted vectors.
//!
//! The vision and network benchmarks reduce to linear maps over packed
//! slot vectors. [`linear_layer`] applies a dense (or structurally sparse)
//! matrix with the standard *diagonal method*:
//!
//! `y = Σ_d diag_d(W) ⊙ rot(x, d)`  with  `diag_d[j] = W[j][(j+d) mod V]`,
//!
//! skipping all-zero diagonals — for convolution matrices most diagonals
//! vanish, so the rotation count tracks the kernel's true footprint.
//! [`stencil`] applies a 2-D stencil (image filter) with one rotation per
//! tap, the layout the image benchmarks use.

use hecate_ir::{FunctionBuilder, ValueId};

/// Applies `y = W·x + bias` over vector width `vec`.
///
/// `weights` is `out_dim` rows by `in_dim` columns with
/// `max(out_dim, in_dim) ≤ vec`; slots ≥ `out_dim` of the result hold
/// zeros (up to noise). A `bias` of `None` skips the addition.
///
/// # Panics
/// Panics if the matrix is empty, ragged, larger than `vec`, or entirely
/// zero.
pub fn linear_layer(
    b: &mut FunctionBuilder,
    x: ValueId,
    weights: &[Vec<f64>],
    bias: Option<&[f64]>,
    vec: usize,
) -> ValueId {
    let out_dim = weights.len();
    assert!(out_dim > 0, "empty weight matrix");
    let in_dim = weights[0].len();
    assert!(weights.iter().all(|r| r.len() == in_dim), "ragged matrix");
    assert!(
        out_dim <= vec && in_dim <= vec,
        "matrix exceeds vector width"
    );

    let mut acc: Option<ValueId> = None;
    for d in 0..vec {
        let diag: Vec<f64> = (0..vec)
            .map(|j| {
                let col = (j + d) % vec;
                if j < out_dim && col < in_dim {
                    weights[j][col]
                } else {
                    0.0
                }
            })
            .collect();
        if diag.iter().all(|v| *v == 0.0) {
            continue;
        }
        let rx = if d == 0 { x } else { b.rotate(x, d) };
        let c = b.vector(diag);
        let term = b.mul(rx, c);
        acc = Some(match acc {
            None => term,
            Some(a) => b.add(a, term),
        });
    }
    let mut y = acc.expect("weight matrix must have a nonzero entry");
    if let Some(bias) = bias {
        let mut padded = bias.to_vec();
        padded.resize(vec, 0.0);
        let c = b.vector(padded);
        y = b.add(y, c);
    }
    y
}

/// One tap of a 2-D stencil: `(dr, dc, coefficient)`.
pub type Tap = (i64, i64, f64);

/// Applies a stencil over an `h×w` image packed row-major in a width-`vec`
/// vector (`h·w ≤ vec`), with cyclic boundary handling (the packed-FHE
/// convention the paper's image benchmarks use).
///
/// # Panics
/// Panics if the image does not fit or every coefficient is zero.
pub fn stencil(
    b: &mut FunctionBuilder,
    x: ValueId,
    taps: &[Tap],
    h: usize,
    w: usize,
    vec: usize,
) -> ValueId {
    assert!(h * w <= vec, "image exceeds vector width");
    let mut acc: Option<ValueId> = None;
    for &(dr, dc, coef) in taps {
        if coef == 0.0 {
            continue;
        }
        let offset = dr * w as i64 + dc;
        let step = offset.rem_euclid(vec as i64) as usize;
        let rx = if step == 0 { x } else { b.rotate(x, step) };
        let term = if (coef - 1.0).abs() < 1e-15 {
            rx
        } else {
            let c = b.splat(coef);
            b.mul(rx, c)
        };
        acc = Some(match acc {
            None => term,
            Some(a) => b.add(a, term),
        });
    }
    acc.expect("stencil must have a nonzero tap")
}

/// Applies `y = W·x + bias` with the baby-step/giant-step (BSGS) variant
/// of the diagonal method.
///
/// Writing each diagonal index `d = k·b + j` with `b ≈ √V` baby steps and
/// `g = V/b` giant steps, the identity
/// `diag_d ⊙ rot(x, d) = rot(rot⁻¹(diag_d, k·b) ⊙ rot(x, j), k·b)`
/// shares the `b` baby rotations across all giant groups:
/// `O(√V)` rotations instead of `O(V)` for a dense matrix. Zero diagonals
/// and empty giant groups are skipped, like [`linear_layer`].
///
/// # Panics
/// Same conditions as [`linear_layer`]; additionally `vec` must be a
/// perfect square of powers of two (any power-of-two `vec` works).
pub fn linear_layer_bsgs(
    b: &mut FunctionBuilder,
    x: ValueId,
    weights: &[Vec<f64>],
    bias: Option<&[f64]>,
    vec: usize,
) -> ValueId {
    let out_dim = weights.len();
    assert!(out_dim > 0, "empty weight matrix");
    let in_dim = weights[0].len();
    assert!(weights.iter().all(|r| r.len() == in_dim), "ragged matrix");
    assert!(
        out_dim <= vec && in_dim <= vec,
        "matrix exceeds vector width"
    );
    assert!(vec.is_power_of_two());

    let baby = 1usize << (vec.trailing_zeros() / 2);
    let giant = vec / baby;
    let diag = |d: usize, i: usize| {
        let col = (i + d) % vec;
        if i < out_dim && col < in_dim {
            weights[i][col]
        } else {
            0.0
        }
    };
    // Lazily materialized baby rotations of x.
    let mut baby_rot: Vec<Option<ValueId>> = vec![None; baby];
    baby_rot[0] = Some(x);
    let mut acc: Option<ValueId> = None;
    for k in 0..giant {
        let shift = k * baby;
        let mut inner: Option<ValueId> = None;
        for j in 0..baby {
            let d = shift + j;
            // rot⁻¹(diag_d, shift)[i] = diag_d[(i − shift) mod vec].
            let pre: Vec<f64> = (0..vec).map(|i| diag(d, (i + vec - shift) % vec)).collect();
            if pre.iter().all(|v| *v == 0.0) {
                continue;
            }
            let rx = *baby_rot[j].get_or_insert_with(|| b.rotate(x, j));
            let c = b.vector(pre);
            let term = b.mul(rx, c);
            inner = Some(match inner {
                None => term,
                Some(a) => b.add(a, term),
            });
        }
        if let Some(inner) = inner {
            let shifted = if shift == 0 {
                inner
            } else {
                b.rotate(inner, shift)
            };
            acc = Some(match acc {
                None => shifted,
                Some(a) => b.add(a, shifted),
            });
        }
    }
    let mut y = acc.expect("weight matrix must have a nonzero entry");
    if let Some(bias) = bias {
        let mut padded = bias.to_vec();
        padded.resize(vec, 0.0);
        let c = b.vector(padded);
        y = b.add(y, c);
    }
    y
}

/// Dense matrix–vector product on plain data (reference semantics for
/// tests and weight preparation).
pub fn matvec(weights: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    weights
        .iter()
        .map(|row| row.iter().zip(x).map(|(w, v)| w * v).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;
    use std::collections::HashMap;

    fn run(func: &hecate_ir::Function, x: Vec<f64>) -> Vec<f64> {
        let mut ins = HashMap::new();
        ins.insert("x".to_string(), x);
        interpret(func, &ins).unwrap()["out0"].clone()
    }

    #[test]
    fn linear_layer_matches_matvec() {
        let vec = 16;
        let weights = crate::workloads::xavier_weights(5, 12, 3);
        let mut b = FunctionBuilder::new("lin", vec);
        let x = b.input_cipher("x");
        let y = linear_layer(&mut b, x, &weights, None, vec);
        b.output(y);
        let f = b.finish();
        let input: Vec<f64> = (0..12).map(|i| 0.1 * i as f64 - 0.5).collect();
        let mut padded = input.clone();
        padded.resize(vec, 0.0);
        let got = run(&f, padded);
        let expect = matvec(&weights, &input);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{g} vs {e}");
        }
        for g in &got[5..] {
            assert!(g.abs() < 1e-9, "slots beyond out_dim must be zero");
        }
    }

    #[test]
    fn bias_is_added() {
        let vec = 8;
        let weights = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let bias = [0.5, -0.25];
        let mut b = FunctionBuilder::new("bias", vec);
        let x = b.input_cipher("x");
        let y = linear_layer(&mut b, x, &weights, Some(&bias), vec);
        b.output(y);
        let f = b.finish();
        let got = run(&f, vec![1.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!((got[0] - 1.5).abs() < 1e-12);
        assert!((got[1] - 1.75).abs() < 1e-12);
    }

    #[test]
    fn zero_diagonals_are_skipped() {
        // Identity matrix: only diagonal 0 is nonzero — no rotations.
        let vec = 8;
        let weights: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..4).map(|j| if i == j { 2.0 } else { 0.0 }).collect())
            .collect();
        let mut b = FunctionBuilder::new("id", vec);
        let x = b.input_cipher("x");
        let y = linear_layer(&mut b, x, &weights, None, vec);
        b.output(y);
        let f = b.finish();
        let rotations = f
            .ops()
            .iter()
            .filter(|o| matches!(o, hecate_ir::Op::Rotate { .. }))
            .count();
        assert_eq!(rotations, 0);
    }

    #[test]
    fn bsgs_matches_plain_diagonal_method() {
        let vec = 16;
        let weights = crate::workloads::xavier_weights(9, 14, 5);
        let input: Vec<f64> = (0..14).map(|i| 0.2 * i as f64 - 1.0).collect();
        let mut padded = input.clone();
        padded.resize(vec, 0.0);

        let mut b1 = FunctionBuilder::new("plain", vec);
        let x1 = b1.input_cipher("x");
        let y1 = linear_layer(&mut b1, x1, &weights, Some(&[0.1; 9]), vec);
        b1.output(y1);
        let f1 = b1.finish();

        let mut b2 = FunctionBuilder::new("bsgs", vec);
        let x2 = b2.input_cipher("x");
        let y2 = linear_layer_bsgs(&mut b2, x2, &weights, Some(&[0.1; 9]), vec);
        b2.output(y2);
        let f2 = b2.finish();

        let (o1, o2) = (run(&f1, padded.clone()), run(&f2, padded));
        for (a, b) in o1.iter().zip(&o2) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn bsgs_uses_fewer_rotations_on_dense_matrices() {
        let vec = 64;
        let weights = crate::workloads::xavier_weights(64, 64, 6);
        let count_rot = |f: &hecate_ir::Function| {
            f.ops()
                .iter()
                .filter(|o| matches!(o, hecate_ir::Op::Rotate { .. }))
                .count()
        };
        let mut b1 = FunctionBuilder::new("plain", vec);
        let x1 = b1.input_cipher("x");
        let y1 = linear_layer(&mut b1, x1, &weights, None, vec);
        b1.output(y1);
        let plain_rots = count_rot(&b1.finish());

        let mut b2 = FunctionBuilder::new("bsgs", vec);
        let x2 = b2.input_cipher("x");
        let y2 = linear_layer_bsgs(&mut b2, x2, &weights, None, vec);
        b2.output(y2);
        let bsgs_rots = count_rot(&b2.finish());

        assert_eq!(plain_rots, 63);
        // 7 baby + 7 giant rotations for a dense 64-wide matrix.
        assert_eq!(bsgs_rots, 14, "BSGS should use ~2·√V rotations");
    }

    #[test]
    fn stencil_shifts_and_scales() {
        // 4×4 image; tap (0,1,1.0) shifts left by one column (cyclically).
        let (h, w, vec) = (4, 4, 16);
        let mut b = FunctionBuilder::new("st", vec);
        let x = b.input_cipher("x");
        let y = stencil(&mut b, x, &[(0, 1, 1.0)], h, w, vec);
        b.output(y);
        let f = b.finish();
        let img: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let got = run(&f, img);
        assert_eq!(got[0], 1.0);
        assert_eq!(got[3], 4.0, "cyclic wrap crosses row boundary");
    }

    #[test]
    fn stencil_combines_taps() {
        let (h, w, vec) = (4, 4, 16);
        let mut b = FunctionBuilder::new("st2", vec);
        let x = b.input_cipher("x");
        let y = stencil(&mut b, x, &[(0, 0, 2.0), (1, 0, -1.0)], h, w, vec);
        b.output(y);
        let f = b.finish();
        let img: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let got = run(&f, img);
        // got[i] = 2·img[i] − img[i+4 (mod 16)]
        assert_eq!(got[0], 2.0 * 0.0 - 4.0);
        assert_eq!(got[5], 2.0 * 5.0 - 9.0);
    }
}
