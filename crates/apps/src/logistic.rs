//! Logistic-regression inference (beyond the paper's benchmark set).
//!
//! A classic privacy-preserving-ML workload: `p = σ(w·x + b)` over an
//! encrypted feature vector, with the sigmoid replaced by its degree-3
//! least-squares polynomial `σ(t) ≈ 0.5 + 0.197·t − 0.004·t³` (the
//! standard approximation from the HE literature, accurate on
//! `t ∈ [−8, 8]`). Included to demonstrate extending the benchmark suite;
//! it is not part of the paper's Fig. 7 set.

use crate::linear::matvec;
use crate::workloads::{uniform_samples, xavier_weights};
use hecate_ir::{Function, FunctionBuilder};
use std::collections::HashMap;

/// Degree-3 sigmoid approximation coefficients `(c0, c1, c3)`.
pub const SIGMOID_POLY: (f64, f64, f64) = (0.5, 0.197, -0.004);

/// Configuration for logistic-regression inference.
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Feature dimension.
    pub features: usize,
    /// Number of classifier rows evaluated at once (packed).
    pub classes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl LogisticConfig {
    /// A small, fast configuration.
    pub fn small(seed: u64) -> Self {
        LogisticConfig {
            features: 32,
            classes: 4,
            seed,
        }
    }
}

/// Builds the benchmark: function plus input bindings.
pub fn build(cfg: &LogisticConfig) -> (Function, HashMap<String, Vec<f64>>) {
    let vec = cfg.features.next_power_of_two();
    let w = xavier_weights(cfg.classes, cfg.features, cfg.seed.wrapping_add(77));
    let mut b = FunctionBuilder::new("logistic", vec);
    let x = b.input_cipher("x");
    let t = crate::linear::linear_layer(&mut b, x, &w, None, vec);
    // σ(t) ≈ c0 + c1·t + c3·t³
    let (c0, c1, c3) = SIGMOID_POLY;
    let t2 = b.square(t);
    let t3 = b.mul(t2, t);
    let k1 = b.splat(c1);
    let lin = b.mul(t, k1);
    let k3 = b.splat(c3);
    let cub = b.mul(t3, k3);
    let poly = b.add(lin, cub);
    let k0 = b.splat(c0);
    let p = b.add(poly, k0);
    b.output_named("probs", p);

    let mut inputs = HashMap::new();
    inputs.insert("x".to_string(), uniform_samples(cfg.features, cfg.seed));
    (b.finish(), inputs)
}

/// Plain-domain reference inference.
pub fn reference(cfg: &LogisticConfig, x: &[f64]) -> Vec<f64> {
    let w = xavier_weights(cfg.classes, cfg.features, cfg.seed.wrapping_add(77));
    let (c0, c1, c3) = SIGMOID_POLY;
    matvec(&w, x)
        .into_iter()
        .map(|t| c0 + c1 * t + c3 * t * t * t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;

    #[test]
    fn circuit_matches_reference() {
        let cfg = LogisticConfig::small(3);
        let (f, ins) = build(&cfg);
        let got = &interpret(&f, &ins).unwrap()["probs"];
        let expect = reference(&cfg, &ins["x"]);
        for (g, e) in got.iter().zip(&expect) {
            assert!((g - e).abs() < 1e-9, "{g} vs {e}");
        }
    }

    #[test]
    fn sigmoid_poly_tracks_sigmoid_near_zero() {
        let (c0, c1, c3) = SIGMOID_POLY;
        for t in [-2.0f64, -1.0, -0.25, 0.0, 0.5, 1.5, 2.0] {
            let approx = c0 + c1 * t + c3 * t * t * t;
            let exact = 1.0 / (1.0 + (-t).exp());
            assert!((approx - exact).abs() < 0.1, "t={t}: {approx} vs {exact}");
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let cfg = LogisticConfig::small(9);
        let (f, ins) = build(&cfg);
        let got = &interpret(&f, &ins).unwrap()["probs"];
        for p in got.iter().take(cfg.classes) {
            assert!((-0.1..=1.1).contains(p), "probability-ish output {p}");
        }
    }

    #[test]
    fn compiles_and_runs_under_all_schemes() {
        use hecate_compiler::{compile, CompileOptions, Scheme};
        let cfg = LogisticConfig::small(1);
        let (f, _) = build(&cfg);
        let mut opts = CompileOptions::with_waterline(24.0);
        opts.degree = Some(256);
        for scheme in Scheme::ALL {
            let prog = compile(&f, scheme, &opts).unwrap();
            assert!(prog.stats.estimated_latency_us > 0.0, "{scheme}");
        }
    }
}
