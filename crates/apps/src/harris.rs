//! Harris corner detection (HCD) — paper §VII-A.
//!
//! Computes image gradients with the Sobel kernels, accumulates the
//! structure tensor over a 3×3 window (`Sxx`, `Syy`, `Sxy`), and evaluates
//! the Harris response `R = Sxx·Syy − Sxy² − k·(Sxx + Syy)²` with
//! `k = 0.04`. Deeper than Sobel (multiplicative depth 4), which gives the
//! scale manager more room.

use crate::linear::{stencil, Tap};
use crate::sobel::{gx_taps, gy_taps};
use crate::workloads::synth_image;
use hecate_ir::{Function, FunctionBuilder, ValueId};
use std::collections::HashMap;

/// Configuration for the Harris benchmark.
#[derive(Debug, Clone, Copy)]
pub struct HarrisConfig {
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Workload seed.
    pub seed: u64,
}

/// The Harris sensitivity constant.
pub const HARRIS_K: f64 = 0.04;

fn box_taps() -> Vec<Tap> {
    let mut taps = Vec::new();
    for dr in -1..=1 {
        for dc in -1..=1 {
            taps.push((dr, dc, 1.0 / 9.0));
        }
    }
    taps
}

/// Emits the Harris response on an already-declared image value.
pub fn emit(b: &mut FunctionBuilder, img: ValueId, h: usize, w: usize, vec: usize) -> ValueId {
    let ix = stencil(b, img, &gx_taps(), h, w, vec);
    let iy = stencil(b, img, &gy_taps(), h, w, vec);
    let ixx = b.square(ix);
    let iyy = b.square(iy);
    let ixy = b.mul(ix, iy);
    let sxx = stencil(b, ixx, &box_taps(), h, w, vec);
    let syy = stencil(b, iyy, &box_taps(), h, w, vec);
    let sxy = stencil(b, ixy, &box_taps(), h, w, vec);
    let det_a = b.mul(sxx, syy);
    let sxy2 = b.square(sxy);
    let det = b.sub(det_a, sxy2);
    let trace = b.add(sxx, syy);
    let trace2 = b.square(trace);
    let k = b.splat(HARRIS_K);
    let penal = b.mul(trace2, k);
    b.sub(det, penal)
}

/// Builds the complete benchmark: function plus input bindings.
pub fn build(cfg: &HarrisConfig) -> (Function, HashMap<String, Vec<f64>>) {
    let vec = (cfg.h * cfg.w).next_power_of_two();
    let mut b = FunctionBuilder::new("harris", vec);
    let img = b.input_cipher("image");
    let out = emit(&mut b, img, cfg.h, cfg.w, vec);
    b.output_named("response", out);
    let mut inputs = HashMap::new();
    inputs.insert("image".to_string(), synth_image(cfg.h, cfg.w, cfg.seed));
    (b.finish(), inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hecate_ir::interp::interpret;

    #[test]
    fn corners_score_higher_than_edges_and_flats() {
        let cfg = HarrisConfig {
            h: 16,
            w: 16,
            seed: 1,
        };
        let (f, ins) = build(&cfg);
        let out = &interpret(&f, &ins).unwrap()["response"];
        let at = |r: usize, c: usize| out[r * 16 + c];
        // The synthetic rectangle spans (4,4)..(12,12): its corner beats
        // both an edge midpoint and the flat interior.
        let corner = at(4, 4).abs().max(at(12, 12).abs());
        let edge = at(8, 4).abs();
        let flat = at(8, 8).abs();
        assert!(corner > edge, "corner {corner} vs edge {edge}");
        assert!(corner > flat * 2.0, "corner {corner} vs flat {flat}");
    }

    #[test]
    fn multiplicative_depth_exceeds_sobel() {
        let sob = crate::sobel::build(&crate::sobel::SobelConfig {
            h: 8,
            w: 8,
            seed: 1,
        })
        .0;
        let har = build(&HarrisConfig {
            h: 8,
            w: 8,
            seed: 1,
        })
        .0;
        // Rough proxy: Harris needs more multiplications.
        let muls = |f: &Function| {
            f.ops()
                .iter()
                .filter(|o| matches!(o, hecate_ir::Op::Mul(..)))
                .count()
        };
        assert!(muls(&har) > muls(&sob));
    }
}
